"""Shim so editable installs work offline (no `wheel` package available).

`pip install -e .` on this box falls back to the legacy setup.py develop
path; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
