"""grid-info-top: a refreshing dashboard over a fleet's self-published health.

Every monitored server publishes its own operational state twice: as
``Mds-Server-*`` attributes on ``cn=health,cn=monitor`` (GRIP — the
paper's "the service describes itself through its own protocol") and as
a JSON rollup on the ``--metrics-port`` HTTP endpoint.  This tool polls
either form across a fleet and renders one table::

    grid-info-top 127.0.0.1:2135 127.0.0.1:2136 http://127.0.0.1:9135

Plain ``host:port`` specs are polled over LDAP; ``http://`` specs hit
the ``/health`` endpoint.  ``--once`` prints a machine-readable JSON
report and exits — the CI smoke test and the E22 benchmark use it to
assert the whole fleet is healthy with live traffic numbers.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence

from ..ldap.client import LdapClient, LdapError
from ..ldap.dit import Scope
from ..net.tcp import TcpEndpoint
from ..net.transport import ConnectionClosed

__all__ = ["main", "poll_server", "poll_fleet"]

HEALTH_BASE = "cn=health,cn=monitor"

_COLUMNS = (
    ("SERVER", 24), ("HEALTH", 9), ("RPS", 8), ("P95 MS", 9),
    ("HIT%", 6), ("QUEUE", 6), ("UPTIME", 8),
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grid-info-top",
        description="Watch the self-published health of a fleet of "
        "GRIS/GIIS servers.",
    )
    parser.add_argument(
        "servers",
        nargs="+",
        metavar="SERVER",
        help="host:port (LDAP poll of cn=health,cn=monitor) or "
        "http://host:port (metrics endpoint /health)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    parser.add_argument(
        "--count",
        type=int,
        default=0,
        metavar="N",
        help="stop after N refreshes (0 = until interrupted)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="poll once, print a JSON report, and exit (for CI)",
    )
    parser.add_argument(
        "--timeout", type=float, default=5.0, help="per-server poll timeout"
    )
    return parser


def _num(value, default: Optional[float] = None) -> Optional[float]:
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


def _row(server: str, attrs: Dict[str, object]) -> Dict[str, object]:
    """Normalize an Mds-Server-* attribute map into one dashboard row."""
    low = {str(k).lower(): v for k, v in attrs.items()}
    checks = {
        key[len("mds-server-check-"):]: str(value)
        for key, value in low.items()
        if key.startswith("mds-server-check-")
    }
    return {
        "server": server,
        "id": str(low.get("mds-server-id", server)),
        "health": str(low.get("mds-server-health", "unknown")),
        "live": str(low.get("mds-server-live", "")).upper() == "TRUE",
        "ready": str(low.get("mds-server-ready", "")).upper() == "TRUE",
        "rps": _num(low.get("mds-server-rps")),
        "p95_ms": _num(low.get("mds-server-search-p95-ms")),
        "queue_depth": _num(low.get("mds-server-queue-depth")),
        "queue_saturation": _num(low.get("mds-server-queue-saturation")),
        "cache_hit_ratio": _num(low.get("mds-server-cache-hit-ratio")),
        "uptime_s": _num(low.get("mds-server-uptime-seconds")),
        "checks": checks,
        "error": None,
    }


def _poll_ldap(host: str, port: int, timeout: float) -> Dict[str, object]:
    spec = f"{host}:{port}"
    endpoint = TcpEndpoint()
    try:
        client = LdapClient(endpoint.connect((host, port)))
        try:
            result = client.search(
                HEALTH_BASE, Scope.BASE, "(objectclass=*)",
                timeout=timeout, check=False,
            )
        finally:
            client.unbind()
        if not result.entries:
            return {
                "server": spec,
                "error": "no cn=health,cn=monitor entry "
                "(is the server running with --monitor?)",
            }
        entry = result.entries[0]
        attrs = {
            attr: (values[0] if len(values) == 1 else list(values))
            for attr, values in entry.items()
        }
        return _row(spec, attrs)
    except (ConnectionClosed, LdapError, OSError) as exc:
        return {"server": spec, "error": str(exc) or type(exc).__name__}
    finally:
        endpoint.close()


def _poll_http(url: str, timeout: float) -> Dict[str, object]:
    target = url.rstrip("/")
    if not target.endswith("/health"):
        target += "/health"
    try:
        with urllib.request.urlopen(target, timeout=timeout) as resp:
            payload = json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        if exc.code != 503:  # 503 still carries the health body
            return {"server": url, "error": f"HTTP {exc.code}"}
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except (OSError, ValueError):
            return {"server": url, "error": "HTTP 503"}
    except (OSError, ValueError) as exc:
        return {"server": url, "error": str(exc) or type(exc).__name__}
    if not isinstance(payload, dict):
        return {"server": url, "error": "malformed /health payload"}
    return _row(url, payload.get("attrs") or {})


def poll_server(spec: str, timeout: float = 5.0) -> Dict[str, object]:
    """Poll one ``host:port`` or ``http://...`` server spec."""
    if spec.startswith("http://") or spec.startswith("https://"):
        return _poll_http(spec, timeout)
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        return {"server": spec, "error": "expected host:port or http://..."}
    return _poll_ldap(host, int(port), timeout)


def poll_fleet(
    specs: Sequence[str], timeout: float = 5.0
) -> List[Dict[str, object]]:
    return [poll_server(spec, timeout) for spec in specs]


def _fmt(value: Optional[float], digits: int = 1) -> str:
    if value is None:
        return "-"
    if not math.isfinite(value):
        return "inf"
    return f"{value:.{digits}f}"


def _render(rows: List[Dict[str, object]]) -> str:
    lines = ["  ".join(title.ljust(width) for title, width in _COLUMNS)]
    for row in rows:
        if row.get("error"):
            lines.append(
                f"{str(row['server'])[:24]:<24}  DOWN       {row['error']}"
            )
            continue
        hit = row.get("cache_hit_ratio")
        cells = (
            str(row["server"])[:24],
            str(row["health"]),
            _fmt(row.get("rps")),
            _fmt(row.get("p95_ms"), 2),
            _fmt(hit * 100.0 if hit is not None else None),
            _fmt(row.get("queue_depth"), 0),
            _fmt(row.get("uptime_s"), 0) + "s",
        )
        lines.append(
            "  ".join(
                str(cell).ljust(width)
                for cell, (_, width) in zip(cells, _COLUMNS)
            )
        )
    return "\n".join(lines)


def _exit_code(rows: List[Dict[str, object]]) -> int:
    if any(row.get("error") for row in rows):
        return 2
    if any(row.get("health") != "healthy" for row in rows):
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.once:
        rows = poll_fleet(args.servers, timeout=args.timeout)
        report = {
            "servers": rows,
            "fleet": {
                "size": len(rows),
                "reachable": sum(1 for r in rows if not r.get("error")),
                "healthy": sum(
                    1 for r in rows if r.get("health") == "healthy"
                ),
            },
        }
        out.write(json.dumps(report, sort_keys=True) + "\n")
        return _exit_code(rows)

    refreshes = 0
    try:
        while True:
            rows = poll_fleet(args.servers, timeout=args.timeout)
            healthy = sum(1 for r in rows if r.get("health") == "healthy")
            if out is sys.stdout and out.isatty():
                out.write("\x1b[2J\x1b[H")  # clear + home
            out.write(
                f"grid-info-top — {len(rows)} server(s), "
                f"{healthy} healthy — {time.strftime('%H:%M:%S')}\n"
            )
            out.write(_render(rows) + "\n")
            out.flush()
            refreshes += 1
            if args.count and refreshes >= args.count:
                return _exit_code(rows)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
