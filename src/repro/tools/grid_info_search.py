"""grid-info-search: query a GRIS/GIIS over TCP and print LDIF.

Mirrors the classic MDS client::

    grid-info-search -h gris.example.org -p 2135 \
        -b "hn=hostX, o=Grid" -s sub "(objectclass=loadaverage)" load5 load15
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..ldap.client import LdapClient, LdapError
from ..ldap.dit import Scope
from ..ldap.ldif import format_ldif
from ..net.tcp import TcpEndpoint
from ..net.transport import ConnectionClosed

__all__ = ["main"]

_SCOPES = {"base": Scope.BASE, "one": Scope.ONELEVEL, "sub": Scope.SUBTREE}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grid-info-search",
        description="Search a Grid information service (GRIS or GIIS).",
    )
    parser.add_argument("-H", "--host", default="127.0.0.1", help="server host")
    parser.add_argument("-p", "--port", type=int, default=2135, help="server port")
    parser.add_argument("-b", "--base", default="", help="search base DN")
    parser.add_argument(
        "-s",
        "--scope",
        choices=sorted(_SCOPES),
        default="sub",
        help="search scope",
    )
    parser.add_argument(
        "-z", "--size-limit", type=int, default=0, help="server-side size limit"
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0, help="client timeout in seconds"
    )
    parser.add_argument(
        "--credential",
        default=None,
        help="GSI credential file (JSON) for an authenticated bind",
    )
    parser.add_argument(
        "--target",
        default=None,
        help="service name to bind against (default ldap://HOST:PORT/)",
    )
    parser.add_argument("filter", nargs="?", default="(objectclass=*)")
    parser.add_argument("attrs", nargs="*", help="attributes to return (default all)")
    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    endpoint = TcpEndpoint()
    try:
        conn = endpoint.connect((args.host, args.port))
    except ConnectionClosed as exc:
        print(f"grid-info-search: cannot connect: {exc}", file=sys.stderr)
        return 2
    client = LdapClient(conn)
    if args.credential:
        import time

        from ..security.certs import CertError, credential_from_json
        from ..security.gsi import make_token

        try:
            credential = credential_from_json(open(args.credential).read())
        except (OSError, CertError) as exc:
            print(f"grid-info-search: bad credential: {exc}", file=sys.stderr)
            client.unbind()
            endpoint.close()
            return 2
        target = args.target or f"ldap://{args.host}:{args.port}/"
        token = make_token(credential, target, now=time.time())
        try:
            client.bind(mechanism="GSI", credentials=token, timeout=args.timeout)
        except LdapError as exc:
            print(f"grid-info-search: bind failed: {exc}", file=sys.stderr)
            client.unbind()
            endpoint.close()
            return 2
    try:
        result = client.search(
            args.base,
            _SCOPES[args.scope],
            args.filter,
            attrs=args.attrs,
            size_limit=args.size_limit,
            timeout=args.timeout,
            check=False,
        )
    except LdapError as exc:
        print(f"grid-info-search: {exc}", file=sys.stderr)
        return 2
    finally:
        client.unbind()
        endpoint.close()

    if result.entries:
        out.write(format_ldif(result.entries))
    for referral in result.referrals:
        out.write(f"# referral: {referral}\n")
    if not result.result.ok:
        print(f"grid-info-search: {result.result.describe()}", file=sys.stderr)
        return 1
    out.write(f"# {len(result.entries)} entries returned\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
