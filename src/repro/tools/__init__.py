"""Command-line tools: the grid-info-search / grid-info-server pair.

These mirror the Globus deployment commands (``grid-info-search`` was
how operators queried MDS): a client CLI printing LDIF and a server CLI
that runs a GRIS from a configuration file over real TCP.
"""

from .grid_info_search import main as search_main
from .grid_info_server import main as server_main

__all__ = ["search_main", "server_main"]
