"""Command-line tools: grid-info-search / grid-info-server / grid-info-trace.

These mirror the Globus deployment commands (``grid-info-search`` was
how operators queried MDS): a client CLI printing LDIF, a server CLI
that runs a GRIS from a configuration file over real TCP, and a trace
viewer that merges per-server span exports into one tree per query.
"""

from .grid_info_search import main as search_main
from .grid_info_server import main as server_main
from .grid_info_trace import main as trace_main

__all__ = ["search_main", "server_main", "trace_main"]
