"""grid-info-trace: merge span exports and render multi-server traces.

Each traced server appends one JSON line per finished span to its
``--trace-log`` file (and publishes slow trees under
``cn=slow,cn=monitor``).  This tool merges those exports — files,
live servers, or both — groups records by trace id, and renders each
trace as one tree spanning every server it touched::

    grid-info-trace giis.jsonl gris-a.jsonl gris-b.jsonl
    grid-info-trace --server giis.example:2135 --trace-id 4bf9...

    trace 4bf92f3577b34da6a3ce929d0e0e4736 (3 servers, 7 spans, 12.40ms)
    └─ ldap.search [giis:2135] 12.40ms base=o=Grid
       └─ giis.chain [giis:2135] 11.90ms fanout=2
          ├─ giis.child [giis:2135] 11.20ms (hop 2.10ms) url=ldap://a...
          │  └─ ldap.search [gris-a:2135] 9.10ms
          ...

The per-hop figure on a ``giis.child`` span is the slice of its
duration *not* accounted for by the remote server's root span — wire
plus queueing, the quantity the MDS performance studies single out.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.trace import SCHEMA_VERSION

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grid-info-trace",
        description="Render distributed trace trees from span exports.",
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="JSONL span files written via --trace-log (merged together)",
    )
    parser.add_argument(
        "--server",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="also fetch captured slow traces from this server's "
        "cn=slow,cn=monitor subtree (repeatable)",
    )
    parser.add_argument(
        "--trace-id", default=None, help="render only this trace id"
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=0,
        help="render at most N traces, newest roots first (0 = all)",
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0, help="server query timeout"
    )
    return parser


def _load_file(path: str, records: List[dict]) -> Optional[str]:
    """Append *path*'s records; returns an error string or None."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    return f"{path}:{lineno}: not JSON"
                if not isinstance(record, dict) or "trace_id" not in record:
                    return f"{path}:{lineno}: not a span record"
                if record.get("v") != SCHEMA_VERSION:
                    return (
                        f"{path}:{lineno}: span schema v{record.get('v')!r}, "
                        f"this tool reads v{SCHEMA_VERSION}"
                    )
                records.append(record)
    except OSError as exc:
        return f"cannot read {path}: {exc}"
    return None


def _load_server(address: str, timeout: float, records: List[dict]) -> Optional[str]:
    """Query one server's cn=slow subtree for span records."""
    from ..ldap.client import LdapClient, LdapError
    from ..ldap.dit import Scope
    from ..net.tcp import TcpEndpoint
    from ..net.transport import ConnectionClosed

    host, _, port = address.partition(":")
    if not port:
        port = "2135"
    try:
        port_num = int(port)
    except ValueError:
        return f"bad server address {address!r} (want HOST:PORT)"
    endpoint = TcpEndpoint()
    try:
        conn = endpoint.connect((host, port_num))
    except ConnectionClosed as exc:
        return f"cannot connect to {address}: {exc}"
    client = LdapClient(conn)
    try:
        result = client.search(
            "cn=slow,cn=monitor",
            Scope.SUBTREE,
            "(objectclass=mdsslowtrace)",
            timeout=timeout,
            check=False,
        )
    except LdapError as exc:
        return f"{address}: {exc}"
    finally:
        client.unbind()
        endpoint.close()
    if not result.result.ok:
        return f"{address}: {result.result.describe()}"
    for entry in result.entries:
        for value in entry.get("mdsspan"):
            try:
                record = json.loads(value)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "trace_id" in record:
                records.append(record)
    return None


def _dedupe(records: List[dict]) -> List[dict]:
    """Same span exported twice (file + cn=slow) collapses to one."""
    seen = set()
    out = []
    for record in records:
        key = (record["trace_id"], record.get("span_id"))
        if key in seen:
            continue
        seen.add(key)
        out.append(record)
    return out


def _ms(record: dict) -> float:
    return float(record.get("duration") or 0.0) * 1000.0


def _hop_ms(record: dict, children: List[dict]) -> Optional[float]:
    """Wire+queue time: this span's duration minus its remote children.

    Only meaningful on spans whose children ran on a *different*
    server — the gap is the cost of the hop itself.
    """
    remote = [c for c in children if c.get("server_id") != record.get("server_id")]
    if not remote:
        return None
    gap = _ms(record) - max(_ms(c) for c in remote)
    return max(gap, 0.0)


def _render_tree(
    record: dict,
    by_parent: Dict[Optional[str], List[dict]],
    out,
    prefix: str = "",
    last: bool = True,
) -> None:
    children = by_parent.get(record.get("span_id"), [])
    connector = "└─ " if last else "├─ "
    parts = [f"{record.get('name', '?')} [{record.get('server_id') or '?'}]"]
    parts.append(f"{_ms(record):.2f}ms")
    hop = _hop_ms(record, children)
    if hop is not None:
        parts.append(f"(hop {hop:.2f}ms)")
    tags = record.get("tags") or {}
    parts.extend(f"{k}={v}" for k, v in sorted(tags.items()))
    out.write(prefix + connector + " ".join(parts) + "\n")
    child_prefix = prefix + ("   " if last else "│  ")
    for i, child in enumerate(children):
        _render_tree(child, by_parent, out, child_prefix, i == len(children) - 1)


def render_traces(
    records: List[dict],
    out,
    trace_id: Optional[str] = None,
    limit: int = 0,
) -> int:
    """Render merged trace trees; returns the number rendered."""
    traces: Dict[str, List[dict]] = {}
    for record in _dedupe(records):
        traces.setdefault(record["trace_id"], []).append(record)
    if trace_id is not None:
        traces = {k: v for k, v in traces.items() if k == trace_id}

    def root_start(spans: List[dict]) -> float:
        return min(float(s.get("start") or 0.0) for s in spans)

    ordered: List[Tuple[str, List[dict]]] = sorted(
        traces.items(), key=lambda kv: root_start(kv[1]), reverse=True
    )
    if limit > 0:
        ordered = ordered[:limit]

    rendered = 0
    for tid, spans in ordered:
        span_ids = {s.get("span_id") for s in spans}
        by_parent: Dict[Optional[str], List[dict]] = {}
        roots: List[dict] = []
        for span in sorted(spans, key=lambda s: float(s.get("start") or 0.0)):
            parent = span.get("parent_span_id")
            if parent in span_ids:
                by_parent.setdefault(parent, []).append(span)
            else:
                # True roots, plus orphans whose parent was sampled out
                # or not exported — render them at top level rather than
                # dropping them silently.
                roots.append(span)
        servers = {s.get("server_id") or "?" for s in spans}
        total = max(_ms(s) for s in spans)
        out.write(
            f"trace {tid} ({len(servers)} server"
            f"{'s' if len(servers) != 1 else ''}, {len(spans)} span"
            f"{'s' if len(spans) != 1 else ''}, {total:.2f}ms)\n"
        )
        for i, root in enumerate(roots):
            _render_tree(root, by_parent, out, "", i == len(roots) - 1)
        rendered += 1
    return rendered


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if not args.files and not args.server:
        print(
            "grid-info-trace: give JSONL files and/or --server addresses",
            file=sys.stderr,
        )
        return 2
    records: List[dict] = []
    for path in args.files:
        error = _load_file(path, records)
        if error is not None:
            print(f"grid-info-trace: {error}", file=sys.stderr)
            return 2
    for address in args.server:
        error = _load_server(address, args.timeout, records)
        if error is not None:
            print(f"grid-info-trace: {error}", file=sys.stderr)
            return 2
    rendered = render_traces(records, out, args.trace_id, args.limit)
    if rendered == 0:
        print("grid-info-trace: no matching traces", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
