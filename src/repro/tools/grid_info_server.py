"""grid-info-server: run a GRIS from a configuration file over TCP.

::

    grid-info-server --config gris.json --port 2135

Starts the LDAP front end with the configured providers and, if the
config lists registrations, sustains GRRP streams (carried as LDAP Add
operations) toward those directories.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import Optional, Sequence

from ..giis.hierarchy import LdapGrrpSender, make_registrant
from ..gris.config import ConfigError, build_giis, build_gris, load_config
from ..ldap.executor import RequestExecutor
from ..ldap.server import LdapServer
from ..ldap.storage import BACKENDS, StorageSpec
from ..ldap.url import LdapUrl
from ..net import TRANSPORTS, make_endpoint
from ..net.clock import WallClock
from ..obs import (
    HealthModel,
    JsonlSink,
    MetricsHttpServer,
    MetricsRegistry,
    MonitorBackend,
    MonitoredBackend,
    SlowSpanLog,
    TimeSeriesRecorder,
    Tracer,
)

__all__ = ["main", "start_server"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grid-info-server",
        description="Run a Grid Resource Information Service (GRIS).",
    )
    parser.add_argument("--config", required=True, help="JSON configuration file")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("-p", "--port", type=int, default=2135, help="bind port (0=ephemeral)")
    parser.add_argument(
        "--advertise-host",
        default=None,
        help="hostname to advertise in registrations (default: bind address)",
    )
    parser.add_argument(
        "--monitor",
        action="store_true",
        help="serve live operational metrics under cn=monitor",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve Prometheus text exposition on http://HOST:PORT/metrics "
        "and a JSON health rollup on /health (0 = ephemeral; implies "
        "--monitor and the self-monitoring provider)",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="time-series sampling interval for windowed rates and "
        "quantiles (default 1.0)",
    )
    parser.add_argument(
        "--transport",
        choices=TRANSPORTS,
        default="reactor",
        help="real-wire transport: 'reactor' multiplexes every socket on "
        "one event-loop thread (scales to thousands of clients), "
        "'threads' spawns a reader thread per connection",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=8,
        help="search executor threads (0 = run searches inline on the "
        "reader thread, serializing each connection)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=128,
        help="max queued searches before new ones are rejected with busy(51)",
    )
    parser.add_argument(
        "--default-time-limit",
        type=float,
        default=0.0,
        help="server-side cap in seconds on any search's run time "
        "(0 = no cap; client time limits still apply)",
    )
    parser.add_argument(
        "--provider-workers",
        type=int,
        default=4,
        help="provider fan-out threads: information providers for one "
        "search are probed concurrently on this bounded pool "
        "(0 = probe sequentially on the search thread)",
    )
    parser.add_argument(
        "--stale-while-revalidate",
        type=float,
        default=0.0,
        help="serve a provider snapshot that outlived its TTL by up to "
        "this many seconds while refreshing it in the background "
        "(0 = expired snapshots always block on a refresh)",
    )
    parser.add_argument(
        "--index-attrs",
        default=None,
        metavar="ATTRS",
        help="comma-separated attributes to maintain posting-list indexes "
        "for; equality/presence searches over them skip the linear "
        "merge scan (overrides the config file's 'indexes' list)",
    )
    parser.add_argument(
        "--storage",
        choices=BACKENDS,
        default=None,
        help="durability backend for registrations and the materialized "
        "view: 'memory' loses state on exit, 'wal' appends to a "
        "write-ahead log with periodic snapshots, 'sqlite' mirrors "
        "into a single-file database (overrides the config file's "
        "'storage' object; 'wal' and 'sqlite' need --data-dir or a "
        "configured path)",
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="data directory for durable storage; restarting over the "
        "same directory replays the persisted state so the server "
        "comes up warm (implies --storage wal unless set otherwise)",
    )
    parser.add_argument(
        "--trace-log",
        default=None,
        metavar="PATH",
        help="append one JSON line per finished span to PATH "
        "(merge across servers with grid-info-trace)",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="head-based sampling probability in [0,1] applied at local "
        "root spans; children and downstream servers honor the root's "
        "decision (default 1.0)",
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="capture the whole span tree of queries whose root exceeds "
        "MS milliseconds, published under cn=slow,cn=monitor "
        "(0 = disabled)",
    )
    parser.add_argument(
        "--server-id",
        default=None,
        help="identifier stamped into exported span records "
        "(default: the listen address host:port)",
    )
    return parser


def start_server(config_path: str, host: str = "127.0.0.1", port: int = 0,
                 advertise_host: Optional[str] = None, monitor: bool = False,
                 workers: int = 8, queue_limit: int = 128,
                 default_time_limit: float = 0.0, provider_workers: int = 4,
                 stale_while_revalidate: float = 0.0,
                 index_attrs: Optional[str] = None,
                 trace_log: Optional[str] = None,
                 trace_sample_rate: Optional[float] = None,
                 slow_query_ms: Optional[float] = None,
                 server_id: Optional[str] = None,
                 transport: str = "reactor",
                 storage: Optional[str] = None,
                 data_dir: Optional[str] = None,
                 metrics_port: Optional[int] = None,
                 metrics_interval: float = 1.0):
    """Start everything; returns (endpoint, bound_port, registrants, server).

    With ``monitor=True`` one shared :class:`MetricsRegistry` is threaded
    through the transport, the GRIS, and the LDAP front end, and served
    as a GRIP-queryable ``cn=monitor`` subtree alongside the data suffix.
    Monitoring also starts a :class:`TimeSeriesRecorder` for windowed
    rates/quantiles, a :class:`HealthModel`, and a self-monitoring
    provider publishing ``Mds-Server-*`` health through the data suffix;
    ``metrics_port`` (which implies ``monitor``) additionally serves the
    Prometheus exposition over HTTP on the transport's own event loop.
    The self-monitoring handles ride on the returned server object as
    ``server.recorder``, ``server.health``, ``server.metrics_http``, and
    ``server.metrics_bound`` so the tuple shape stays unchanged.

    Tracing arguments default to the config file's ``tracing`` section
    (explicit arguments win); a tracer is built when a span log or a
    slow-query threshold is configured, and ``server_id`` falls back to
    the listen address so multi-server JSONL merges stay unambiguous.
    """
    clock = WallClock()
    config = load_config(config_path)
    if index_attrs is not None:
        config.index_attrs = [
            a.strip() for a in index_attrs.split(",") if a.strip()
        ]
    if storage is not None:
        base = config.storage or StorageSpec()
        config.storage = StorageSpec(
            backend=storage,
            path=base.path,
            fsync=base.fsync,
            snapshot_every=base.snapshot_every,
        )
    monitor = monitor or metrics_port is not None
    metrics = MetricsRegistry() if monitor else None

    tracing = config.tracing
    trace_log = trace_log if trace_log is not None else (tracing.trace_log or None)
    sample_rate = (
        trace_sample_rate if trace_sample_rate is not None else tracing.sample_rate
    )
    slow_ms = slow_query_ms if slow_query_ms is not None else tracing.slow_query_ms
    server_id = server_id if server_id is not None else (tracing.server_id or None)
    if not 0.0 <= sample_rate <= 1.0:
        raise ConfigError("--trace-sample-rate must be within [0, 1]")
    tracer = None
    slow_log = None
    if trace_log or slow_ms > 0:
        tracer = Tracer(
            clock.now,
            sample_rate=sample_rate,
            metrics=metrics,
            server_id=server_id or "",
        )
        if slow_ms > 0:
            slow_log = SlowSpanLog(slow_ms, metrics=metrics)
            tracer.add_sink(slow_log)
        if trace_log:
            tracer.add_sink(JsonlSink(trace_log))

    # The endpoint exists before the backend: a GIIS-mode server dials
    # its registered children through this same transport.
    endpoint = make_endpoint(transport, host, metrics=metrics)
    if config.giis is not None:
        core = build_giis(
            config, clock=clock, metrics=metrics,
            connector=lambda url: endpoint.connect(url.address),
            data_dir=data_dir, tracer=tracer,
        )
    else:
        core = build_gris(
            config, clock=clock, metrics=metrics,
            provider_workers=provider_workers,
            stale_while_revalidate=stale_while_revalidate,
            data_dir=data_dir, tracer=tracer,
        )
    backend = core
    monitor_backend = None
    if monitor:
        monitor_backend = MonitorBackend(
            metrics, server_name="grid-info-server", slow_log=slow_log
        )
        backend = MonitoredBackend(core, monitor_backend)
    executor = RequestExecutor(
        workers=workers,
        queue_limit=queue_limit,
        metrics=metrics,
        clock=clock,
        name="grid-info-server",
    )
    server = LdapServer(
        backend, clock=clock, name="grid-info-server", metrics=metrics,
        tracer=tracer, executor=executor, default_time_limit=default_time_limit,
    )
    bound = endpoint.listen(port, server.handle_connection)
    if tracer is not None and not tracer.server_id:
        # The default server id is the listen address, known only now.
        tracer.server_id = f"{host}:{bound}"

    server.recorder = server.health = server.metrics_http = None
    server.metrics_bound = None
    if monitor:
        recorder = TimeSeriesRecorder(
            metrics, clock, interval=metrics_interval
        )
        recorder.start()
        health = HealthModel(
            metrics, clock, recorder=recorder,
            server_id=server_id or f"{host}:{bound}",
        )
        core.enable_self_monitor(health)
        monitor_backend.health = health
        server.recorder = recorder
        server.health = health
        if metrics_port is not None:
            # Ride the transport's own loop when there is one; a private
            # loop only appears for the thread-per-connection transport.
            metrics_http = MetricsHttpServer(
                metrics, host=host,
                reactor=getattr(endpoint, "reactor", None),
                health=health, clock_now=clock.now,
            )
            server.metrics_bound = metrics_http.start(metrics_port)
            server.metrics_http = metrics_http

    registrants = []
    if config.registrations:
        sender = LdapGrrpSender(lambda url: endpoint.connect(url.address))
        service_url = LdapUrl(advertise_host or host, bound, config.suffix)
        for spec in config.registrations:
            registrant = make_registrant(
                clock,
                service_url,
                config.suffix,
                sender,
                interval=spec.interval,
                ttl=spec.ttl,
                name=spec.name,
                vo=spec.vo,
            )
            registrant.register_with(spec.directory)
            registrants.append(registrant)
    return endpoint, bound, registrants, server


def main(argv: Optional[Sequence[str]] = None, run_forever: bool = True) -> int:
    args = build_parser().parse_args(argv)
    try:
        endpoint, bound, registrants, _server = start_server(
            args.config, args.host, args.port, args.advertise_host,
            monitor=args.monitor, workers=args.workers,
            queue_limit=args.queue_limit,
            default_time_limit=args.default_time_limit,
            provider_workers=args.provider_workers,
            stale_while_revalidate=args.stale_while_revalidate,
            index_attrs=args.index_attrs,
            trace_log=args.trace_log,
            trace_sample_rate=args.trace_sample_rate,
            slow_query_ms=args.slow_query_ms,
            server_id=args.server_id,
            transport=args.transport,
            storage=args.storage,
            data_dir=args.data_dir,
            metrics_port=args.metrics_port,
            metrics_interval=args.metrics_interval,
        )
    except ConfigError as exc:
        print(f"grid-info-server: {exc}", file=sys.stderr)
        return 2
    print(f"grid-info-server: listening on ldap://{args.host}:{bound}/")
    gris_backend = getattr(_server.backend, "inner", _server.backend)
    indexed = getattr(gris_backend, "index_attrs", ())
    if indexed:
        print(f"grid-info-server: indexing attributes {', '.join(indexed)}")
    engine = getattr(gris_backend, "storage", None)
    view = getattr(gris_backend, "_view", None)
    if engine is None and view is not None:
        engine = view.storage
    if engine is not None and engine.backend_name != "memory":
        print(f"grid-info-server: durable storage ({engine.backend_name})")
        recovered = getattr(gris_backend, "replayed_registrations", 0) or getattr(
            gris_backend, "recovered_view_providers", 0
        )
        if recovered:
            print(f"grid-info-server: recovered {recovered} persisted record(s)")
    if args.monitor or args.metrics_port is not None:
        print("grid-info-server: serving live metrics under cn=monitor")
    if _server.metrics_bound is not None:
        print(
            "grid-info-server: metrics endpoint on "
            f"http://{args.host}:{_server.metrics_bound}/metrics"
        )
    if args.trace_log:
        print(f"grid-info-server: exporting trace spans to {args.trace_log}")
    if registrants:
        targets = [d for r in registrants for d in r.directories()]
        print(f"grid-info-server: registering with {', '.join(targets)}")
    if run_forever:
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            pass
        finally:
            for registrant in registrants:
                registrant.stop()
            if _server.recorder is not None:
                _server.recorder.stop()
            if _server.metrics_http is not None:
                _server.metrics_http.close()
            endpoint.close()
            _server.executor.shutdown()
            backend = getattr(_server.backend, "inner", _server.backend)
            if hasattr(backend, "shutdown"):
                backend.shutdown()  # the GRIS provider fan-out pool
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
