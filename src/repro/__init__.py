"""repro — reproduction of "Grid Information Services for Distributed
Resource Sharing" (Czajkowski, Fitzgerald, Foster, Kesselman; HPDC 2001).

The package implements the MDS-2 architecture from scratch:

* :mod:`repro.ldap` — the LDAP data model, filter query language, BER wire
  protocol, DIT store, client and extensible server (GRIP's substrate);
* :mod:`repro.net` — a deterministic discrete-event network simulator and a
  real TCP transport behind one interface;
* :mod:`repro.security` — a GSI stand-in (RSA, certificates, ACLs);
* :mod:`repro.grip` — the paper's protocols: GRRP soft-state registration
  and the failure detector built on it;
* :mod:`repro.gris` — the information-provider framework (GRIS);
* :mod:`repro.giis` — aggregate directories (GIIS), hierarchical,
  name-serving, relational, and matchmaker variants;
* :mod:`repro.services` — higher-level services (broker, replica selection,
  monitoring, troubleshooting, adaptation, naming);
* :mod:`repro.baselines` — MDS-1-style central directory and
  multicast-discovery baselines;
* :mod:`repro.testbed` — VO/workload builders used by the experiments.
"""

__version__ = "1.0.0"
