"""Application adaptation agent (paper §1, fourth scenario).

"An application adaptation agent monitors both a running application
and external resource availability and modifies application behavior
(e.g., reduces accuracy, changes algorithms) and/or its resource
consumption (e.g., migrates to other resources) if, due to changes in
resource status or application behavior, these changes are thought
likely to improve performance."

:class:`ManagedApplication` is the application model (publishes its own
``application`` entry through a provider — applications are information
sources too); :class:`AdaptationAgent` watches the app's host load and
applies a simple policy: sustained overload → try to migrate via the
broker; no better host → degrade accuracy; recovery → restore accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..gris.provider import FunctionProvider
from ..ldap.dn import DN, RDN
from ..ldap.entry import Entry
from .broker import JobRequest, Superscheduler

__all__ = ["AdaptationAction", "ManagedApplication", "AdaptationAgent"]


@dataclass(frozen=True)
class AdaptationAction:
    kind: str  # 'migrate' | 'reduce-accuracy' | 'restore-accuracy'
    detail: str
    when: float


class ManagedApplication:
    """A running application that publishes its status (§3's example
    "provider for a running application")."""

    def __init__(self, name: str, resource: str, accuracy: float = 1.0):
        self.name = name
        self.resource = resource
        self.accuracy = accuracy
        self.status = "running"
        self.progress = 0.0
        self.migrations = 0

    def provider(self) -> FunctionProvider:
        return FunctionProvider(
            f"app-{self.name}",
            lambda: [self.to_entry()],
            namespace=f"app={self.name}",
            cache_ttl=0.0,
        )

    def to_entry(self) -> Entry:
        return Entry(
            DN((RDN.single("app", self.name),)),
            objectclass="application",
            appname=self.name,
            status=self.status,
            progress=f"{self.progress:.2f}",
            resource=self.resource,
            accuracy=f"{self.accuracy:.2f}",
        )

    def migrate_to(self, resource: str) -> None:
        self.resource = resource
        self.migrations += 1


class AdaptationAgent:
    """Load-driven adaptation policy for one application."""

    def __init__(
        self,
        clock,
        application: ManagedApplication,
        broker: Superscheduler,
        load_of: Callable[[str], Optional[float]],
        overload: float = 4.0,
        comfortable: float = 1.5,
        patience: int = 2,
        min_accuracy: float = 0.25,
        on_action: Optional[Callable[[AdaptationAction], None]] = None,
    ):
        self.clock = clock
        self.application = application
        self.broker = broker
        self.load_of = load_of  # current load of a named resource
        self.overload = overload
        self.comfortable = comfortable
        self.patience = patience
        self.min_accuracy = min_accuracy
        self.on_action = on_action
        self.actions: List[AdaptationAction] = []
        self._overloaded_polls = 0

    def poll(self) -> Optional[AdaptationAction]:
        """One adaptation decision; call periodically."""
        app = self.application
        load = self.load_of(app.resource)
        if load is None:
            return None
        if load < self.overload:
            self._overloaded_polls = 0
            if load <= self.comfortable and app.accuracy < 1.0:
                app.accuracy = min(1.0, app.accuracy * 2)
                return self._act(
                    "restore-accuracy", f"load {load:.2f}; accuracy -> {app.accuracy:.2f}"
                )
            return None
        self._overloaded_polls += 1
        if self._overloaded_polls < self.patience:
            return None
        self._overloaded_polls = 0
        # Try migration first: find a machine clearly better than here.
        request = JobRequest(max_load5=self.comfortable)
        best = self.broker.select(request, top_k=1)
        if best and best[0].host != app.resource:
            target = best[0].host
            app.migrate_to(target)
            return self._act("migrate", f"load {load:.2f}; moved to {target}")
        # No better machine: degrade accuracy to shed work.
        if app.accuracy > self.min_accuracy:
            app.accuracy = max(self.min_accuracy, app.accuracy / 2)
            return self._act(
                "reduce-accuracy", f"load {load:.2f}; accuracy -> {app.accuracy:.2f}"
            )
        return None

    def _act(self, kind: str, detail: str) -> AdaptationAction:
        action = AdaptationAction(kind, detail, self.clock.now())
        self.actions.append(action)
        if self.on_action:
            self.on_action(action)
        return action
