"""Unique-name generation (paper §8).

Both approaches the paper describes:

* :class:`NamingAuthority` — "naming services responsible solely for
  generating names guaranteed to be unique within the scope that the
  naming service operates", organized hierarchically for scalability
  (delegate sub-scopes to child authorities);
* :func:`guid` — "assign names at random from a large name space, hence
  obtaining a name that is highly likely to be unique", with no
  structural information (so not usable to scope searches — pair with a
  hierarchy for that, as §8 suggests).

Plus :class:`TypeAuthority` for the §8 type-name registry ("a
convenient and extensible mechanism for defining information types").
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

__all__ = ["NamingAuthority", "guid", "TypeAuthority"]


class NamingAuthority:
    """Issues names unique within its scope; delegates sub-scopes."""

    def __init__(self, scope: str, parent: Optional["NamingAuthority"] = None):
        self.scope = scope
        self.parent = parent
        self._counter = 0
        self._issued: set = set()
        self._children: Dict[str, "NamingAuthority"] = {}

    @property
    def full_scope(self) -> str:
        if self.parent is None:
            return self.scope
        return f"{self.parent.full_scope}/{self.scope}"

    def issue(self, hint: str = "entity") -> str:
        """A fresh name, unique within this authority forever."""
        while True:
            self._counter += 1
            name = f"{self.full_scope}/{hint}-{self._counter}"
            if name not in self._issued:
                self._issued.add(name)
                return name

    def claim(self, name: str) -> bool:
        """Reserve a specific name; False if already taken."""
        full = f"{self.full_scope}/{name}"
        if full in self._issued:
            return False
        self._issued.add(full)
        return True

    def delegate(self, sub_scope: str) -> "NamingAuthority":
        """A child authority: the hierarchical organization of §8."""
        if sub_scope in self._children:
            return self._children[sub_scope]
        if not self.claim(sub_scope):
            raise ValueError(f"scope {sub_scope!r} collides with an issued name")
        child = NamingAuthority(sub_scope, parent=self)
        self._children[sub_scope] = child
        return child

    def issued_count(self) -> int:
        return len(self._issued)


def guid(rng: Optional[random.Random] = None) -> str:
    """A 128-bit random identifier (the GUID approach of §8)."""
    rng = rng or random.Random()
    return f"{rng.getrandbits(128):032x}"


class TypeAuthority:
    """Registers and resolves type names for entity descriptions (§8).

    Types here are object-class definitions; registering the same name
    with a different definition is a conflict, supporting "standard
    formats for entity descriptions" across a VO.
    """

    def __init__(self):
        self._types: Dict[str, dict] = {}

    def register(self, name: str, definition: dict) -> bool:
        """True if registered or identical; False on conflict."""
        key = name.lower()
        existing = self._types.get(key)
        if existing is None:
            self._types[key] = dict(definition)
            return True
        return existing == definition

    def resolve(self, name: str) -> Optional[dict]:
        found = self._types.get(name.lower())
        return dict(found) if found is not None else None

    def names(self) -> List[str]:
        return sorted(self._types)
