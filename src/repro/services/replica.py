"""Replica selection service (paper §1, third scenario).

"A replica selection service within a data grid responds to requests
for the 'best' copy of files that are replicated on multiple storage
systems.  Here, information sources can once again include system
configuration, instantaneous performance, and predictions, but for
storage systems and networks rather than computers."

Pieces:

* :class:`ReplicaCatalogProvider` — a GRIS provider publishing
  ``replica`` entries (logical file name → storage system);
* :class:`ReplicaSelector` — discovers the replicas of a logical file
  through the directory, then ranks them by predicted transfer time
  using NWS bandwidth forecasts between the consumer and each store
  (the non-enumerable network-pairs namespace of §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..gris.provider import FunctionProvider
from ..ldap.client import LdapClient
from ..ldap.dit import Scope
from ..ldap.dn import DN, RDN
from ..ldap.entry import Entry
from ..ldap.filter import escape_value

__all__ = ["ReplicaCatalogProvider", "ReplicaChoice", "ReplicaSelector"]


class ReplicaCatalogProvider(FunctionProvider):
    """Publishes the replica catalog as ``replica`` entries.

    The catalog maps a logical file name (LFN) to the storage hosts
    holding copies; mutate :attr:`catalog` to add/drop replicas.
    """

    def __init__(
        self,
        catalog: Optional[Dict[str, List[Tuple[str, int]]]] = None,
        namespace: str = "rc=catalog",
        cache_ttl: float = 30.0,
    ):
        self.catalog: Dict[str, List[Tuple[str, int]]] = dict(catalog or {})
        self._namespace_dn = DN.parse(namespace)
        super().__init__(
            "replica-catalog", self._read, namespace=namespace, cache_ttl=cache_ttl
        )

    def add_replica(self, lfn: str, store_host: str, size: int) -> None:
        self.catalog.setdefault(lfn, []).append((store_host, size))

    def drop_replica(self, lfn: str, store_host: str) -> None:
        self.catalog[lfn] = [
            (h, s) for h, s in self.catalog.get(lfn, []) if h != store_host
        ]

    def _read(self) -> List[Entry]:
        out = []
        for lfn, copies in sorted(self.catalog.items()):
            for host, size in copies:
                out.append(
                    Entry(
                        DN(
                            (RDN.single("replica", f"{lfn}@{host}"),)
                            + self._namespace_dn.rdns
                        ),
                        objectclass="replica",
                        lfn=lfn,
                        store=host,
                        size=size,
                    )
                )
        return out


@dataclass
class ReplicaChoice:
    """One ranked replica."""

    store_host: str
    size: int
    bandwidth: Optional[float]  # forecast, MB/s
    predicted_seconds: float

    def __repr__(self) -> str:
        bw = f"{self.bandwidth:.1f}" if self.bandwidth is not None else "?"
        return (
            f"ReplicaChoice({self.store_host}, {self.size}B, bw={bw}, "
            f"eta={self.predicted_seconds:.2f}s)"
        )


class ReplicaSelector:
    """Ranks replicas by predicted transfer time to a consumer host."""

    def __init__(
        self,
        directory: LdapClient,
        base: str,
        network_base: str,
        consumer_host: str,
    ):
        self.directory = directory
        self.base = base
        self.network_base = network_base
        self.consumer_host = consumer_host

    def replicas_of(self, lfn: str) -> List[Tuple[str, int]]:
        out = self.directory.search(
            self.base,
            Scope.SUBTREE,
            f"(&(objectclass=replica)(lfn={escape_value(lfn)}))",
            check=False,
        )
        found = []
        for entry in out.entries:
            store = entry.first("store")
            if store:
                found.append((store, int(float(entry.first("size", "0")))))
        return found

    def bandwidth_to(self, store_host: str) -> Optional[float]:
        """Forecast bandwidth store -> consumer via the network provider.

        This is a lazy GRIP query over the non-enumerable namespace:
        the filter pins both endpoints (§4.1).
        """
        out = self.directory.search(
            self.network_base,
            Scope.SUBTREE,
            f"(&(objectclass=networklink)(src={escape_value(store_host)})"
            f"(dst={escape_value(self.consumer_host)}))",
            check=False,
        )
        for entry in out.entries:
            value = entry.first("bandwidth")
            if value is not None:
                return float(value)
        return None

    def select(self, lfn: str) -> List[ReplicaChoice]:
        """All replicas of *lfn*, best (fastest predicted fetch) first."""
        choices = []
        for store, size in self.replicas_of(lfn):
            bandwidth = self.bandwidth_to(store)
            if bandwidth and bandwidth > 0:
                eta = size / (bandwidth * 1024 * 1024)
            else:
                eta = float("inf")
            choices.append(
                ReplicaChoice(
                    store_host=store,
                    size=size,
                    bandwidth=bandwidth,
                    predicted_seconds=eta,
                )
            )
        choices.sort(key=lambda c: (c.predicted_seconds, c.store_host))
        return choices

    def best(self, lfn: str) -> Optional[ReplicaChoice]:
        ranked = self.select(lfn)
        return ranked[0] if ranked else None
