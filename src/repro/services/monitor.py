"""Monitoring service (paper §6).

"In the case of monitoring, we are more often interested in how
characteristics vary over time, and so may prefer that the information
is delivered asynchronously if and when specified conditions are met:
for example, when an information value changes by a specified amount."

:class:`MonitoringService` consumes GRIP push mode (persistent-search
subscriptions) over any number of targets, maintains the latest state
per entry, records time series for watched numeric attributes, and
fires condition callbacks — change-by-delta and threshold-crossing, the
two triggers §6 names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..ldap.backend import ChangeType
from ..ldap.client import LdapClient, SubscriptionHandle
from ..ldap.dit import Scope
from ..ldap.entry import Entry
from ..ldap.filter import parse as parse_filter
from ..ldap.protocol import SearchRequest

__all__ = ["Alarm", "Watch", "MonitoringService"]


@dataclass(frozen=True)
class Alarm:
    """One fired condition."""

    dn: str
    attr: str
    value: float
    kind: str  # 'threshold' | 'delta' | 'disappeared'
    when: float


@dataclass
class Watch:
    """A condition over one numeric attribute."""

    attr: str
    threshold: Optional[float] = None  # fire when value >= threshold
    min_delta: Optional[float] = None  # fire when |change| >= min_delta

    def check(
        self, dn: str, old: Optional[float], new: float, now: float
    ) -> List[Alarm]:
        alarms = []
        if self.threshold is not None:
            crossed_up = new >= self.threshold and (old is None or old < self.threshold)
            if crossed_up:
                alarms.append(Alarm(dn, self.attr, new, "threshold", now))
        if self.min_delta is not None and old is not None:
            if abs(new - old) >= self.min_delta:
                alarms.append(Alarm(dn, self.attr, new, "delta", now))
        return alarms


class MonitoringService:
    """Aggregates push-mode GRIP streams into state + alarms."""

    def __init__(self, clock, on_alarm: Optional[Callable[[Alarm], None]] = None):
        self.clock = clock
        self.on_alarm = on_alarm
        self.watches: List[Watch] = []
        self.state: Dict[str, Entry] = {}
        self.history: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
        self.alarms: List[Alarm] = []
        self._subscriptions: List[SubscriptionHandle] = []
        self.updates_received = 0

    def add_watch(self, watch: Watch) -> None:
        self.watches.append(watch)

    def attach(
        self,
        client: LdapClient,
        base: str,
        filter_text: str = "(objectclass=*)",
        changes_only: bool = False,
    ) -> SubscriptionHandle:
        """Subscribe to one target (a GRIS or GIIS)."""
        req = SearchRequest(
            base=base, scope=Scope.SUBTREE, filter=parse_filter(filter_text)
        )
        handle = client.subscribe(req, self._on_change, changes_only=changes_only)
        self._subscriptions.append(handle)
        return handle

    def detach_all(self) -> None:
        for handle in self._subscriptions:
            handle.cancel()
        self._subscriptions.clear()

    # -- stream intake ----------------------------------------------------------

    def _on_change(self, entry: Entry, change: int) -> None:
        self.updates_received += 1
        now = self.clock.now()
        dn = str(entry.dn)
        if change == ChangeType.DELETE:
            if dn in self.state:
                del self.state[dn]
                alarm = Alarm(dn, "", 0.0, "disappeared", now)
                self._fire(alarm)
            return
        previous = self.state.get(dn)
        self.state[dn] = entry
        for watch in self.watches:
            raw = entry.first(watch.attr)
            if raw is None:
                continue
            try:
                new = float(raw)
            except ValueError:
                continue
            old = None
            if previous is not None:
                old_raw = previous.first(watch.attr)
                if old_raw is not None:
                    try:
                        old = float(old_raw)
                    except ValueError:
                        old = None
            self.history.setdefault((dn, watch.attr.lower()), []).append((now, new))
            for alarm in watch.check(dn, old, new, now):
                self._fire(alarm)

    def _fire(self, alarm: Alarm) -> None:
        self.alarms.append(alarm)
        if self.on_alarm:
            self.on_alarm(alarm)

    # -- queries ---------------------------------------------------------------

    def latest(self, dn: str) -> Optional[Entry]:
        return self.state.get(dn)

    def series(self, dn: str, attr: str) -> List[Tuple[float, float]]:
        return list(self.history.get((dn, attr.lower()), ()))

    def monitored_count(self) -> int:
        return len(self.state)
