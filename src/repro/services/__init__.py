"""Higher-level services built on GRIP/GRRP — the §1 scenarios.

Superscheduler (broker), replica selection, monitoring, troubleshooting,
application adaptation, and the §8 naming services.
"""

from .adaptation import AdaptationAction, AdaptationAgent, ManagedApplication
from .broker import Candidate, JobRequest, Superscheduler
from .monitor import Alarm, MonitoringService, Watch
from .naming import NamingAuthority, TypeAuthority, guid
from .replica import ReplicaCatalogProvider, ReplicaChoice, ReplicaSelector
from .trouble import Diagnosis, Troubleshooter

__all__ = [
    "AdaptationAction",
    "AdaptationAgent",
    "ManagedApplication",
    "Candidate",
    "JobRequest",
    "Superscheduler",
    "Alarm",
    "MonitoringService",
    "Watch",
    "NamingAuthority",
    "TypeAuthority",
    "guid",
    "ReplicaCatalogProvider",
    "ReplicaChoice",
    "ReplicaSelector",
    "Diagnosis",
    "Troubleshooter",
]
