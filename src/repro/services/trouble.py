"""Troubleshooting service (paper §1, fifth scenario).

"A troubleshooting service monitors Grid resources, looking for
anomalous behaviors such as excessive load or extended failure of
critical services.  Here, the information sources can be arbitrary; the
information that is of interest is determined by troubleshooter
heuristics and can be highly dynamic."

The heuristics implemented:

* **sustained overload** — a watched load attribute above a threshold
  for N consecutive observations (a single spike is not anomalous);
* **extended failure** — a registered service suspected by the GRRP
  failure detector for longer than a grace period;
* **flapping** — a service that oscillates between alive and suspected
  more than K times within a window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..grip.failure import FailureDetector, SuspicionEvent
from .monitor import MonitoringService

__all__ = ["Diagnosis", "Troubleshooter"]


@dataclass(frozen=True)
class Diagnosis:
    """One reported anomaly."""

    subject: str
    kind: str  # 'sustained-overload' | 'extended-failure' | 'flapping'
    detail: str
    when: float


class Troubleshooter:
    """Heuristic anomaly detection over monitoring + failure streams."""

    def __init__(
        self,
        clock,
        monitor: MonitoringService,
        detector: Optional[FailureDetector] = None,
        load_attr: str = "load5",
        overload_threshold: float = 4.0,
        overload_run: int = 3,
        failure_grace: float = 60.0,
        flap_window: float = 300.0,
        flap_count: int = 4,
        on_diagnosis: Optional[Callable[[Diagnosis], None]] = None,
    ):
        self.clock = clock
        self.monitor = monitor
        self.detector = detector
        self.load_attr = load_attr
        self.overload_threshold = overload_threshold
        self.overload_run = overload_run
        self.failure_grace = failure_grace
        self.flap_window = flap_window
        self.flap_count = flap_count
        self.on_diagnosis = on_diagnosis
        self.diagnoses: List[Diagnosis] = []
        self._overload_runs: Dict[str, int] = {}
        self._reported_overload: set = set()
        self._suspected_since: Dict[str, float] = {}
        self._reported_failure: set = set()
        self._transitions: Dict[str, List[float]] = {}
        if detector is not None:
            previous = detector.on_suspect
            detector.on_suspect = self._chain(previous)

    def _chain(self, previous):
        def handler(event: SuspicionEvent) -> None:
            if previous:
                previous(event)
            self.on_suspicion(event)

        return handler

    # -- heuristics --------------------------------------------------------------

    def poll(self) -> List[Diagnosis]:
        """Run the periodic heuristics; returns new diagnoses."""
        fresh: List[Diagnosis] = []
        fresh.extend(self._check_overload())
        fresh.extend(self._check_extended_failures())
        return fresh

    def _check_overload(self) -> List[Diagnosis]:
        fresh = []
        now = self.clock.now()
        for dn, entry in self.monitor.state.items():
            raw = entry.first(self.load_attr)
            if raw is None:
                continue
            try:
                value = float(raw)
            except ValueError:
                continue
            if value >= self.overload_threshold:
                run = self._overload_runs.get(dn, 0) + 1
                self._overload_runs[dn] = run
                if run >= self.overload_run and dn not in self._reported_overload:
                    self._reported_overload.add(dn)
                    fresh.append(
                        self._report(
                            dn,
                            "sustained-overload",
                            f"{self.load_attr}={value:.2f} for {run} samples",
                            now,
                        )
                    )
            else:
                self._overload_runs[dn] = 0
                self._reported_overload.discard(dn)
        return fresh

    def on_suspicion(self, event: SuspicionEvent) -> None:
        """Failure-detector transition intake (wired automatically)."""
        transitions = self._transitions.setdefault(event.producer, [])
        transitions.append(event.when)
        cutoff = event.when - self.flap_window
        self._transitions[event.producer] = [t for t in transitions if t >= cutoff]
        if event.suspected:
            self._suspected_since.setdefault(event.producer, event.when)
        else:
            self._suspected_since.pop(event.producer, None)
            self._reported_failure.discard(event.producer)
        if len(self._transitions[event.producer]) >= self.flap_count:
            self._report(
                event.producer,
                "flapping",
                f"{len(self._transitions[event.producer])} state changes "
                f"within {self.flap_window:.0f}s",
                event.when,
            )
            self._transitions[event.producer] = []

    def _check_extended_failures(self) -> List[Diagnosis]:
        fresh = []
        now = self.clock.now()
        for producer, since in self._suspected_since.items():
            if producer in self._reported_failure:
                continue
            if now - since >= self.failure_grace:
                self._reported_failure.add(producer)
                fresh.append(
                    self._report(
                        producer,
                        "extended-failure",
                        f"unresponsive for {now - since:.0f}s",
                        now,
                    )
                )
        return fresh

    def _report(self, subject: str, kind: str, detail: str, when: float) -> Diagnosis:
        diagnosis = Diagnosis(subject, kind, detail, when)
        self.diagnoses.append(diagnosis)
        if self.on_diagnosis:
            self.on_diagnosis(diagnosis)
        return diagnosis
