"""Superscheduler / resource broker (paper §1, second scenario).

"A superscheduler routes computational requests to the 'best' available
computer in a Grid containing multiple high-end computers, where 'best'
can encompass issues of architecture, installed software, performance,
availability, and policy."

The broker implements the §4.1 discovery→enquiry pattern: a *search*
against an aggregate directory yields a rough candidate set, then
direct *enquiry* (lookup at the authoritative provider) refreshes the
dynamic attributes before the final ranking — "following discovery, a
client can always refresh interesting information by directly
consulting the authoritative source" (§3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..ldap.client import LdapClient
from ..ldap.dit import Scope
from ..ldap.entry import Entry
from ..ldap.url import LdapUrl

__all__ = ["JobRequest", "Candidate", "Superscheduler"]


@dataclass(frozen=True)
class JobRequest:
    """What a job needs from a machine."""

    min_cpus: int = 1
    max_load5: float = 4.0
    system: Optional[str] = None  # substring of the OS description
    # Ranking weight: lower load is better; more CPUs break ties.
    load_weight: float = 1.0
    cpu_weight: float = 0.05


@dataclass
class Candidate:
    """One machine under consideration."""

    host: str
    entry: Entry
    load5: Optional[float] = None
    cpus: int = 0
    refreshed: bool = False

    def score(self, request: JobRequest) -> float:
        """Lower is better."""
        load = self.load5 if self.load5 is not None else 1e9
        return request.load_weight * load - request.cpu_weight * self.cpus


class Superscheduler:
    """Selects machines through a VO aggregate directory.

    *directory* is a connected client to the GIIS; *dial* opens clients
    to provider URLs for the refresh step (None disables refresh and the
    broker trusts the directory's possibly-stale view — the freshness/
    cost tradeoff of §3 made selectable).
    """

    def __init__(
        self,
        directory: LdapClient,
        base: str,
        dial: Optional[Callable[[LdapUrl], LdapClient]] = None,
    ):
        self.directory = directory
        self.base = base
        self.dial = dial
        self.queries = 0
        self.refreshes = 0

    # -- discovery ---------------------------------------------------------

    def discover(self, request: JobRequest) -> List[Candidate]:
        """Search the directory for machines roughly matching the request."""
        filt = f"(&(objectclass=computer)(cpucount>={request.min_cpus}))"
        self.queries += 1
        out = self.directory.search(self.base, Scope.SUBTREE, filt)
        candidates = []
        for entry in out.entries:
            host = entry.first("hn")
            if host is None:
                continue
            if request.system is not None:
                system = entry.first("system", "")
                if request.system.lower() not in system.lower():
                    continue
            candidates.append(
                Candidate(
                    host=host,
                    entry=entry,
                    cpus=int(float(entry.first("cpucount", "0"))),
                )
            )
        return candidates

    def load_of(self, candidate: Candidate) -> Optional[float]:
        """Fetch load via the directory (may be stale)."""
        self.queries += 1
        out = self.directory.search(
            str(candidate.entry.dn),
            Scope.SUBTREE,
            "(objectclass=loadaverage)",
            check=False,
        )
        for entry in out.entries:
            value = entry.first("load5")
            if value is not None:
                return float(value)
        return None

    def refresh(self, candidate: Candidate) -> None:
        """Direct enquiry at the authoritative provider (§3)."""
        if self.dial is None:
            return
        url_text = candidate.entry.first("regmeta-url") or None
        # Provider location: by MDS convention the provider of hn=X is
        # ldap://X:2135; a production broker would resolve via the
        # registration entry or a name service.
        url = LdapUrl.parse(url_text) if url_text else LdapUrl(candidate.host, 2135)
        try:
            client = self.dial(url)
            out = client.search(
                str(candidate.entry.dn),
                Scope.SUBTREE,
                "(objectclass=loadaverage)",
                check=False,
            )
        except Exception:  # noqa: BLE001 - unreachable provider: keep stale view
            return
        self.refreshes += 1
        for entry in out.entries:
            value = entry.first("load5")
            if value is not None:
                candidate.load5 = float(value)
                candidate.refreshed = True

    # -- selection ------------------------------------------------------------

    def select(
        self, request: JobRequest, refresh: bool = True, top_k: int = 1
    ) -> List[Candidate]:
        """Full brokering pass: discover, refine, rank."""
        candidates = self.discover(request)
        for candidate in candidates:
            candidate.load5 = self.load_of(candidate)
            if refresh and self.dial is not None:
                self.refresh(candidate)
        eligible = [
            c
            for c in candidates
            if c.load5 is not None and c.load5 <= request.max_load5
        ]
        eligible.sort(key=lambda c: (c.score(request), c.host))
        return eligible[:top_k]
