"""Network Weather Service substitute: measurement + adaptive forecasting.

The paper's network information provider hands queries off "to the
Network Weather Service (NWS) network performance characterization
system, which may variously access cached data or perform an
experiment" (§4.1, ref [40]).  NWS's core idea is a *bank of cheap
forecasters* run in parallel over each measurement series, always
answering with the forecaster whose past error is currently lowest.
We implement that design:

* forecasters: last value, running mean, sliding-window mean, sliding-
  window median, adaptive EWMA, AR(1);
* :class:`AdaptiveForecaster` tracks each forecaster's mean squared
  error and selects the winner per query;
* :class:`SeriesStore` holds many named series (one per network path /
  metric) and supports on-demand measurement via a probe callable —
  "perform an experiment" — when a series is empty or stale.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

__all__ = [
    "Forecaster",
    "LastValue",
    "RunningMean",
    "SlidingMean",
    "SlidingMedian",
    "Ewma",
    "Ar1",
    "AdaptiveForecaster",
    "Forecast",
    "SeriesStore",
    "default_forecasters",
]


class Forecaster:
    """One incremental predictor over a scalar series."""

    name = "abstract"

    def update(self, value: float) -> None:
        raise NotImplementedError

    def predict(self) -> Optional[float]:
        """Forecast of the next value; None until warmed up."""
        raise NotImplementedError


class LastValue(Forecaster):
    """Predicts the most recent observation (NWS LAST)."""

    name = "last"

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def update(self, value: float) -> None:
        self._last = value

    def predict(self) -> Optional[float]:
        return self._last


class RunningMean(Forecaster):
    """Predicts the mean of the whole history (NWS RUN_AVG)."""

    name = "mean"

    def __init__(self) -> None:
        self._sum = 0.0
        self._count = 0

    def update(self, value: float) -> None:
        self._sum += value
        self._count += 1

    def predict(self) -> Optional[float]:
        return self._sum / self._count if self._count else None


class SlidingMean(Forecaster):
    """Predicts the mean of the last *window* observations."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.name = f"mean{window}"
        self._window: Deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._window.append(value)

    def predict(self) -> Optional[float]:
        if not self._window:
            return None
        return sum(self._window) / len(self._window)


class SlidingMedian(Forecaster):
    """Predicts the median of the last *window* observations
    (robust to the spikes network measurements produce)."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.name = f"median{window}"
        self._window: Deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._window.append(value)

    def predict(self) -> Optional[float]:
        if not self._window:
            return None
        data = sorted(self._window)
        mid = len(data) // 2
        if len(data) % 2:
            return data[mid]
        return 0.5 * (data[mid - 1] + data[mid])


class Ewma(Forecaster):
    """Exponentially weighted moving average with gain *alpha*."""

    def __init__(self, alpha: float = 0.3):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.name = f"ewma{alpha:g}"
        self.alpha = alpha
        self._value: Optional[float] = None

    def update(self, value: float) -> None:
        if self._value is None:
            self._value = value
        else:
            self._value += self.alpha * (value - self._value)

    def predict(self) -> Optional[float]:
        return self._value


class Ar1(Forecaster):
    """Order-1 autoregressive forecaster with incremental fitting."""

    name = "ar1"

    def __init__(self) -> None:
        self._prev: Optional[float] = None
        self._n = 0
        self._sx = self._sy = self._sxx = self._sxy = 0.0
        self._last: Optional[float] = None

    def update(self, value: float) -> None:
        if self._prev is not None:
            x, y = self._prev, value
            self._n += 1
            self._sx += x
            self._sy += y
            self._sxx += x * x
            self._sxy += x * y
        self._prev = value
        self._last = value

    def predict(self) -> Optional[float]:
        if self._last is None:
            return None
        if self._n < 3:
            return self._last
        denom = self._n * self._sxx - self._sx * self._sx
        if abs(denom) < 1e-12:
            return self._last
        slope = (self._n * self._sxy - self._sx * self._sy) / denom
        intercept = (self._sy - slope * self._sx) / self._n
        return intercept + slope * self._last


def default_forecasters() -> List[Forecaster]:
    return [
        LastValue(),
        RunningMean(),
        SlidingMean(5),
        SlidingMean(20),
        SlidingMedian(5),
        SlidingMedian(20),
        Ewma(0.2),
        Ewma(0.5),
        Ar1(),
    ]


class Forecast:
    """One answer from the forecaster bank."""

    __slots__ = ("value", "method", "mse", "samples")

    def __init__(self, value: float, method: str, mse: float, samples: int):
        self.value = value
        self.method = method
        self.mse = mse
        self.samples = samples

    def __repr__(self) -> str:
        return f"Forecast({self.value:.4g} via {self.method}, mse={self.mse:.4g})"


class AdaptiveForecaster:
    """NWS-style bank: answer with the historically best forecaster."""

    def __init__(self, forecasters: Optional[Sequence[Forecaster]] = None):
        self.forecasters = list(forecasters) if forecasters else default_forecasters()
        self._sq_err: Dict[str, float] = {f.name: 0.0 for f in self.forecasters}
        self._scored = 0
        self.samples = 0

    def update(self, value: float) -> None:
        """Score every forecaster's last prediction, then absorb *value*."""
        any_scored = False
        for f in self.forecasters:
            pred = f.predict()
            if pred is not None:
                self._sq_err[f.name] += (pred - value) ** 2
                any_scored = True
            f.update(value)
        if any_scored:
            self._scored += 1
        self.samples += 1

    def mse(self, name: str) -> float:
        if self._scored == 0:
            return math.inf
        return self._sq_err[name] / self._scored

    def best(self) -> Optional[Forecaster]:
        candidates = [f for f in self.forecasters if f.predict() is not None]
        if not candidates:
            return None
        return min(candidates, key=lambda f: self.mse(f.name))

    def forecast(self) -> Optional[Forecast]:
        winner = self.best()
        if winner is None:
            return None
        value = winner.predict()
        assert value is not None
        return Forecast(value, winner.name, self.mse(winner.name), self.samples)


# A probe performs one measurement experiment for a named series.
Probe = Callable[[str], float]


class SeriesStore:
    """Named measurement series with on-demand probing.

    ``observe`` feeds passive measurements; ``forecast`` answers from
    cached state, optionally running *probe* experiments when the series
    has fewer than *min_samples* observations (the "may variously access
    cached data or perform an experiment" behaviour).
    """

    def __init__(self, probe: Optional[Probe] = None, min_samples: int = 1):
        self.probe = probe
        self.min_samples = min_samples
        self._series: Dict[str, AdaptiveForecaster] = {}
        self.probes_run = 0

    def observe(self, series: str, value: float) -> None:
        self._series.setdefault(series, AdaptiveForecaster()).update(value)

    def forecast(self, series: str) -> Optional[Forecast]:
        bank = self._series.get(series)
        if (bank is None or bank.samples < self.min_samples) and self.probe is not None:
            bank = self._series.setdefault(series, AdaptiveForecaster())
            while bank.samples < self.min_samples:
                bank.update(self.probe(series))
                self.probes_run += 1
        if bank is None:
            return None
        return bank.forecast()

    def known_series(self) -> List[str]:
        return list(self._series)

    def samples(self, series: str) -> int:
        bank = self._series.get(series)
        return bank.samples if bank else 0
