"""Storage-system information providers (§10.3: "available disk space,
total disk space, etc.") and job-queue service providers (Figure 3's
``queue=default`` service object).
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..ldap.dn import DN
from ..ldap.entry import Entry
from .provider import FunctionProvider

__all__ = [
    "FilesystemStat",
    "StorageProvider",
    "real_filesystem_stat",
    "QueueState",
    "QueueProvider",
]


# A filesystem sensor returns (free_bytes, total_bytes).
FilesystemStat = Callable[[], Tuple[int, int]]


def real_filesystem_stat(path: str) -> FilesystemStat:
    """Sensor over a real mount point (used by the examples)."""

    def stat() -> Tuple[int, int]:
        usage = shutil.disk_usage(path)
        return usage.free, usage.total

    return stat


class StorageProvider(FunctionProvider):
    """Publishes one filesystem as ``store=<name>`` under its host."""

    def __init__(
        self,
        hostname: str,
        store_name: str,
        path: str,
        stat: FilesystemStat,
        cache_ttl: float = 60.0,
        readonly: bool = False,
        base: Optional[DN | str] = None,
    ):
        self.hostname = hostname
        self.store_name = store_name
        self.path = path
        self.stat = stat
        self.readonly = readonly
        self.base = DN.of(base) if base is not None else DN.parse(f"hn={hostname}")
        super().__init__(
            name=f"storage-{hostname}-{store_name}",
            fn=self._read,
            namespace=self.base,
            cache_ttl=cache_ttl,
        )

    def _read(self) -> List[Entry]:
        free, total = self.stat()
        return [
            Entry(
                self.base.child(f"store={self.store_name}"),
                objectclass=["storage", "filesystem"],
                store=self.store_name,
                path=self.path,
                free=f"{free // (1024 * 1024)} MB",
                total=f"{total // (1024 * 1024)} MB",
                readonly=str(self.readonly).lower(),
            )
        ]


@dataclass
class QueueState:
    """Mutable state of one scheduler queue."""

    jobs: int = 0
    max_jobs: int = 100
    dispatch_type: str = "immediate"


class QueueProvider(FunctionProvider):
    """Publishes a job-queue service (Figure 3's queue object)."""

    def __init__(
        self,
        hostname: str,
        queue_name: str = "default",
        state: Optional[QueueState] = None,
        cache_ttl: float = 10.0,
        scheme: str = "gram",
        base: Optional[DN | str] = None,
    ):
        self.hostname = hostname
        self.queue_name = queue_name
        self.state = state or QueueState()
        self.scheme = scheme
        self.base = DN.of(base) if base is not None else DN.parse(f"hn={hostname}")
        super().__init__(
            name=f"queue-{hostname}-{queue_name}",
            fn=self._read,
            namespace=self.base,
            cache_ttl=cache_ttl,
        )

    def _read(self) -> List[Entry]:
        return [
            Entry(
                self.base.child(f"queue={self.queue_name}"),
                objectclass=["service", "queue"],
                queue=self.queue_name,
                url=f"{self.scheme}://{self.hostname}/{self.queue_name}",
                dispatchtype=self.state.dispatch_type,
                jobcount=self.state.jobs,
                maxjobs=self.state.max_jobs,
            )
        ]
