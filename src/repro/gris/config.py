"""Static GRIS configuration (paper §9, §10.3).

"a GRIS is configured by specifying the type of information to be
produced by a provider and the provider-defined set of routines that
implement the GRIS API.  Configuration can be done either dynamically
or statically via configuration files."

The file format is JSON (one object), mirroring the MDS grid-info.conf
role::

    {
      "suffix": "hn=myhost, o=Demo",
      "providers": [
        {"type": "static-host", "hostname": "myhost", "cpu_count": 8,
         "memory_mb": 4096, "system": "linux", "cache_ttl": 3600},
        {"type": "dynamic-host", "hostname": "myhost", "cache_ttl": 5},
        {"type": "storage", "hostname": "myhost", "store": "scratch",
         "path": "/scratch", "cache_ttl": 60},
        {"type": "queue", "hostname": "myhost", "queue": "default"},
        {"type": "ldif", "name": "site-info", "file": "site.ldif",
         "cache_ttl": 3600}
      ],
      "registrations": [
        {"directory": "ldap://giis.example:2135/o=Grid",
         "interval": 30, "ttl": 90, "name": "myhost", "vo": "DemoVO"}
      ],
      "tracing": {
        "trace_log": "/var/log/mds/myhost-spans.jsonl",
        "sample_rate": 0.1, "slow_query_ms": 250,
        "server_id": "myhost:2135"
      }
    }

``type: ldif`` providers serve a static LDIF file — the common way MDS
sites published hand-maintained information.  Provider ``base`` fields
default to "" (entries rooted at the GRIS suffix), matching the
per-machine deployment; set ``base`` explicitly for org-level GRISes.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..ldap.dn import DN
from ..ldap.ldif import parse_ldif
from ..ldap.storage import StorageError, StorageSpec, make_storage, parse_storage_spec
from ..net.clock import Clock, WallClock
from ..obs.metrics import MetricsRegistry
from .core import GrisBackend
from .host import DynamicHostProvider, HostConfig, StaticHostProvider, real_load_sensor
from .provider import FunctionProvider, InformationProvider
from .storage import QueueProvider, StorageProvider, real_filesystem_stat

__all__ = [
    "ConfigError",
    "RegistrationSpec",
    "TracingSpec",
    "GiisSpec",
    "GrisConfig",
    "load_config",
    "build_gris",
    "build_giis",
]


class ConfigError(ValueError):
    """Raised on malformed configuration files."""


@dataclass(frozen=True)
class RegistrationSpec:
    """One directory this GRIS should register with (§9 manual config)."""

    directory: str
    interval: float = 30.0
    ttl: float = 90.0
    name: str = ""
    vo: str = ""


@dataclass(frozen=True)
class TracingSpec:
    """Distributed-tracing options (the optional ``tracing`` object).

    ``trace_log`` is a JSONL span-export path, ``sample_rate`` the
    head-based sampling probability applied at local roots,
    ``slow_query_ms`` the slow-tree capture threshold (0 disables), and
    ``server_id`` the identifier stamped into exported span records
    (defaults to the listen address when started via grid-info-server).
    """

    trace_log: str = ""
    sample_rate: float = 1.0
    slow_query_ms: float = 0.0
    server_id: str = ""

    @property
    def enabled(self) -> bool:
        return bool(self.trace_log) or self.slow_query_ms > 0


@dataclass(frozen=True)
class GiisSpec:
    """The optional ``giis`` object: run the server as an aggregate
    directory (GIIS) over the configured suffix instead of a GRIS."""

    mode: str = "chain"
    vo: str = ""
    cache_ttl: float = 0.0
    registration_grace: float = 0.0


@dataclass
class GrisConfig:
    """A parsed configuration."""

    suffix: str
    providers: List[InformationProvider] = field(default_factory=list)
    registrations: List[RegistrationSpec] = field(default_factory=list)
    tracing: TracingSpec = field(default_factory=TracingSpec)
    index_attrs: List[str] = field(default_factory=list)
    storage: Optional[StorageSpec] = None
    giis: Optional[GiisSpec] = None


def _require(spec: Dict, key: str, provider_type: str):
    try:
        return spec[key]
    except KeyError:
        raise ConfigError(f"provider type {provider_type!r} requires {key!r}") from None


def _build_provider(
    spec: Dict, base_dir: pathlib.Path, load_sensor: Callable
) -> InformationProvider:
    ptype = spec.get("type")
    ttl = float(spec.get("cache_ttl", 0.0))
    base = spec.get("base", "")
    if ptype == "static-host":
        config = HostConfig(
            hostname=_require(spec, "hostname", ptype),
            system=spec.get("system", "linux"),
            os_version=spec.get("os_version", ""),
            cpu_type=spec.get("cpu_type", "x86"),
            cpu_count=int(spec.get("cpu_count", 1)),
            memory_mb=int(spec.get("memory_mb", 512)),
            architecture=spec.get("architecture", "ia32"),
        )
        return StaticHostProvider(config, cache_ttl=ttl or 3600.0, base=base)
    if ptype == "dynamic-host":
        return DynamicHostProvider(
            _require(spec, "hostname", ptype),
            load_sensor,
            cache_ttl=ttl or 15.0,
            base=base,
        )
    if ptype == "storage":
        path = _require(spec, "path", ptype)
        return StorageProvider(
            _require(spec, "hostname", ptype),
            spec.get("store", "scratch"),
            path,
            real_filesystem_stat(path),
            cache_ttl=ttl or 60.0,
            base=base,
        )
    if ptype == "queue":
        return QueueProvider(
            _require(spec, "hostname", ptype),
            spec.get("queue", "default"),
            cache_ttl=ttl or 10.0,
            base=base,
        )
    if ptype == "ldif":
        file_path = base_dir / _require(spec, "file", ptype)
        name = spec.get("name", file_path.stem)
        try:
            entries = parse_ldif(file_path.read_text())
        except OSError as exc:
            raise ConfigError(f"cannot read LDIF file {file_path}: {exc}") from exc
        return FunctionProvider(
            name,
            lambda entries=entries: entries,
            namespace=spec.get("namespace", base),
            cache_ttl=ttl or 3600.0,
        )
    raise ConfigError(f"unknown provider type {ptype!r}")


def load_config(
    path: str | pathlib.Path,
    load_sensor: Optional[Callable] = None,
) -> GrisConfig:
    """Parse a GRIS configuration file."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(data, dict) or "suffix" not in data:
        raise ConfigError(f"{path}: config must be an object with a 'suffix'")
    try:
        DN.parse(data["suffix"])
    except Exception as exc:  # noqa: BLE001
        raise ConfigError(f"{path}: bad suffix: {exc}") from exc

    sensor = load_sensor or real_load_sensor
    providers = [
        _build_provider(spec, path.parent, sensor)
        for spec in data.get("providers", [])
    ]
    registrations = []
    for spec in data.get("registrations", []):
        if "directory" not in spec:
            raise ConfigError(f"{path}: registration entry requires 'directory'")
        registrations.append(
            RegistrationSpec(
                directory=spec["directory"],
                interval=float(spec.get("interval", 30.0)),
                ttl=float(spec.get("ttl", 90.0)),
                name=spec.get("name", ""),
                vo=spec.get("vo", ""),
            )
        )
    tracing_spec = data.get("tracing", {})
    if not isinstance(tracing_spec, dict):
        raise ConfigError(f"{path}: 'tracing' must be an object")
    try:
        tracing = TracingSpec(
            trace_log=str(tracing_spec.get("trace_log", "")),
            sample_rate=float(tracing_spec.get("sample_rate", 1.0)),
            slow_query_ms=float(tracing_spec.get("slow_query_ms", 0.0)),
            server_id=str(tracing_spec.get("server_id", "")),
        )
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"{path}: bad tracing section: {exc}") from exc
    if not 0.0 <= tracing.sample_rate <= 1.0:
        raise ConfigError(f"{path}: sample_rate must be within [0, 1]")
    indexes = data.get("indexes", [])
    if not isinstance(indexes, list) or not all(
        isinstance(a, str) and a for a in indexes
    ):
        raise ConfigError(f"{path}: 'indexes' must be a list of attribute names")
    storage = None
    if "storage" in data:
        try:
            storage = parse_storage_spec(data["storage"])
        except StorageError as exc:
            raise ConfigError(f"{path}: {exc}") from exc
    giis = None
    if "giis" in data:
        giis_data = data["giis"]
        if not isinstance(giis_data, dict):
            raise ConfigError(f"{path}: 'giis' must be an object")
        mode = str(giis_data.get("mode", "chain"))
        if mode not in ("chain", "referral"):
            raise ConfigError(
                f"{path}: giis mode must be 'chain' or 'referral', not {mode!r}"
            )
        try:
            giis = GiisSpec(
                mode=mode,
                vo=str(giis_data.get("vo", "")),
                cache_ttl=float(giis_data.get("cache_ttl", 0.0)),
                registration_grace=float(giis_data.get("registration_grace", 0.0)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"{path}: bad giis section: {exc}") from exc
    return GrisConfig(
        suffix=data["suffix"],
        providers=providers,
        registrations=registrations,
        tracing=tracing,
        index_attrs=[a for a in indexes],
        storage=storage,
        giis=giis,
    )


def _make_engine(
    config: GrisConfig,
    data_dir: Optional[str],
    subdir: str,
    metrics: MetricsRegistry,
    tracer,
):
    """Instantiate the configured storage engine for one consumer.

    ``data_dir`` (the ``--data-dir`` flag) overrides the spec's path; a
    bare ``--data-dir`` with no storage object implies the WAL backend.
    """
    spec = config.storage
    if spec is None:
        if not data_dir:
            return None
        spec = StorageSpec(backend="wal")
    try:
        return make_storage(
            spec,
            data_dir,
            subdir=subdir,
            metrics=metrics,
            tracer=tracer,
            name=subdir,
        )
    except StorageError as exc:
        raise ConfigError(str(exc)) from exc


def build_gris(
    config: GrisConfig,
    clock: Optional[Clock] = None,
    metrics=None,
    provider_workers: int = 0,
    provider_queue_limit: int = 64,
    stale_while_revalidate: float = 0.0,
    data_dir: Optional[str] = None,
    tracer=None,
) -> GrisBackend:
    """Instantiate a GRIS backend from a parsed configuration.

    Pass a shared :class:`~repro.obs.metrics.MetricsRegistry` to fold
    this GRIS's counters into a process-wide ``cn=monitor`` surface.
    ``provider_workers`` > 0 probes providers concurrently on a bounded
    pool (0 keeps the deterministic inline dispatch), and
    ``stale_while_revalidate`` widens each provider's serve window by
    that many seconds: expired-but-within-window snapshots are answered
    immediately while one background refresh runs.  A non-empty
    ``indexes`` list in the config maintains a materialized view of the
    provider caches with posting lists over those attributes, letting
    equality/presence searches skip the linear merge scan.  A
    ``storage`` object (or ``data_dir``) makes that view durable: the
    server restarts warm, serving pre-crash snapshots until their TTLs
    lapse.
    """
    metrics = metrics or MetricsRegistry()
    storage = _make_engine(config, data_dir, "gris-view", metrics, tracer)
    gris = GrisBackend(
        config.suffix,
        clock=clock or WallClock(),
        metrics=metrics,
        provider_workers=provider_workers,
        provider_queue_limit=provider_queue_limit,
        stale_while_revalidate=stale_while_revalidate,
        index_attrs=config.index_attrs or None,
        storage=storage,
    )
    for provider in config.providers:
        gris.add_provider(provider)
    return gris


def build_giis(
    config: GrisConfig,
    clock: Optional[Clock] = None,
    metrics=None,
    connector=None,
    data_dir: Optional[str] = None,
    tracer=None,
    url=None,
):
    """Instantiate a GIIS backend (the ``giis`` config object).

    With a ``storage`` object (or ``data_dir``), the registration list
    survives restarts: a GIIS killed and restarted over the same data
    directory serves the same registrations immediately instead of
    waiting out a full soft-state refresh cycle.
    """
    from ..giis.core import GiisBackend

    metrics = metrics or MetricsRegistry()
    storage = _make_engine(config, data_dir, "giis-registrations", metrics, tracer)
    spec = config.giis or GiisSpec()
    return GiisBackend(
        config.suffix,
        clock or WallClock(),
        connector=connector,
        url=url,
        mode=spec.mode,
        cache_ttl=spec.cache_ttl,
        registration_grace=spec.registration_grace,
        vo_name=spec.vo,
        metrics=metrics,
        tracer=tracer,
        storage=storage,
    )
