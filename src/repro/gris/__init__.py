"""GRIS: the Grid Resource Information Service (paper §10.3).

A configurable information-provider framework: pluggable providers
(static/dynamic host, storage, queue, NWS-backed network pairs) behind
the shared LDAP server front end, with namespace-pruned dispatch,
per-provider TTL caching, and polling subscriptions.
"""

from .cache import CacheStats, ProviderCache
from .core import GrisBackend
from .host import (
    DynamicHostProvider,
    HostConfig,
    SimulatedLoadSensor,
    StaticHostProvider,
    real_load_sensor,
)
from .netpairs import NetworkPairsProvider, pair_series
from .nws import (
    AdaptiveForecaster,
    Ar1,
    Ewma,
    Forecast,
    Forecaster,
    LastValue,
    RunningMean,
    SeriesStore,
    SlidingMean,
    SlidingMedian,
    default_forecasters,
)
from .provider import FunctionProvider, InformationProvider, ProviderError, ScriptProvider
from .storage import (
    QueueProvider,
    QueueState,
    StorageProvider,
    real_filesystem_stat,
)

__all__ = [
    "CacheStats",
    "ProviderCache",
    "GrisBackend",
    "DynamicHostProvider",
    "HostConfig",
    "SimulatedLoadSensor",
    "StaticHostProvider",
    "real_load_sensor",
    "NetworkPairsProvider",
    "pair_series",
    "AdaptiveForecaster",
    "Ar1",
    "Ewma",
    "Forecast",
    "Forecaster",
    "LastValue",
    "RunningMean",
    "SeriesStore",
    "SlidingMean",
    "SlidingMedian",
    "default_forecasters",
    "FunctionProvider",
    "InformationProvider",
    "ProviderError",
    "ScriptProvider",
    "QueueProvider",
    "QueueState",
    "StorageProvider",
    "real_filesystem_stat",
]
