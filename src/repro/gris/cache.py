"""Per-provider TTL caching (paper §10.3), concurrency-safe.

"To control the intrusiveness of GRIS operation, improve response time,
and maximize deployment flexibility, each provider's results may be
cached for a configurable period of time to reduce the number of
provider invocations; this cache time-to-live (TTL) is specified
per-provider."

The MDS2 performance studies (Zhang & Schopf; Zhang, Freschl & Schopf)
show GRIS throughput collapsing under concurrent users exactly when the
cache stops absorbing provider invocations.  Since searches now run on
a multi-worker executor, this cache is a real concurrency structure:

* **Thread safety** — one lock guards the slot table; snapshots are
  immutable and swapped wholesale, so serving never holds the lock
  while copying entries.
* **Single-flight coalescing** — N concurrent misses for one provider
  trigger exactly one ``provide()``; the other N-1 callers block on the
  in-flight refresh and share its result (``gris.cache.coalesced``).
* **Stale-while-revalidate** — with a serve window configured, a snapshot
  that outlived its TTL but not ``ttl + stale_while_revalidate`` is
  served immediately while one background refresh runs on the provider
  pool (``gris.cache.revalidations``).  Without a refresh runner (the
  inline/simulator configuration) the window degrades to a plain
  blocking refresh, keeping discrete-event runs deterministic.
* **Negative caching with exponential backoff** — a failing provider is
  not re-invoked until ``backoff_base * 2^(failures-1)`` (capped at
  ``backoff_max``) has elapsed; meanwhile callers get the stale snapshot
  if one exists, or an immediate :class:`ProviderError`
  (``gris.provider.backoff_skips``).  A dead script stops eating a pool
  slot on every query.

Failure still serves the stale snapshot when available (flagged) —
unavailable sources must "not interfere with other functions" (§2.2).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..ldap.entry import Entry
from ..net.clock import Clock
from ..obs.metrics import MetricsRegistry
from .provider import InformationProvider, ProviderError

__all__ = ["CacheStats", "ProviderCache"]

# Submits a zero-argument refresh task for background execution; returns
# False when the pool refuses (saturated), in which case the cache
# refreshes inline instead.
RefreshRunner = Callable[[Callable[[], None]], bool]


class CacheStats:
    """Read view over the registry-backed cache counters.

    Kept attribute-compatible with the old ad-hoc dataclass (``hits``,
    ``misses``, ``failures``, ``stale_served``, ``hit_rate``) while the
    storage moved to :class:`~repro.obs.metrics.MetricsRegistry` so the
    same numbers surface under ``cn=monitor``.  The concurrency overhaul
    added ``coalesced``, ``revalidations``, and ``backoff_skips``.
    """

    def __init__(self, metrics: MetricsRegistry):
        self._hits = metrics.counter("gris.cache.hits")
        self._misses = metrics.counter("gris.cache.misses")
        self._failures = metrics.counter("gris.cache.failures")
        self._stale_served = metrics.counter("gris.cache.stale_served")
        self._coalesced = metrics.counter("gris.cache.coalesced")
        self._revalidations = metrics.counter("gris.cache.revalidations")
        self._backoff_skips = metrics.counter("gris.provider.backoff_skips")

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def failures(self) -> int:
        return int(self._failures.value)

    @property
    def stale_served(self) -> int:
        return int(self._stale_served.value)

    @property
    def coalesced(self) -> int:
        return int(self._coalesced.value)

    @property
    def revalidations(self) -> int:
        return int(self._revalidations.value)

    @property
    def backoff_skips(self) -> int:
        return int(self._backoff_skips.value)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class _CacheSlot:
    entries: List[Entry]
    produced_at: float


class _Flight:
    """One in-progress refresh; coalesced waiters block on ``done``."""

    __slots__ = ("done", "slot", "error")

    def __init__(self):
        self.done = threading.Event()
        self.slot: Optional[_CacheSlot] = None
        self.error: Optional[ProviderError] = None


class _ProviderState:
    """Everything the cache tracks about one provider."""

    __slots__ = ("slot", "flight", "failures", "retry_at")

    def __init__(self):
        self.slot: Optional[_CacheSlot] = None
        self.flight: Optional[_Flight] = None
        self.failures = 0
        self.retry_at = 0.0


class ProviderCache:
    """Coalescing, stale-while-revalidate TTL cache over provider snapshots."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Clock] = None,
        stale_while_revalidate: float = 0.0,
        backoff_base: float = 1.0,
        backoff_max: float = 60.0,
        refresh_runner: Optional[RefreshRunner] = None,
    ):
        self.metrics = metrics or MetricsRegistry()
        self.stats = CacheStats(self.metrics)
        self.clock = clock
        self.stale_while_revalidate = stale_while_revalidate
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._runner = refresh_runner
        self._lock = threading.Lock()
        self._states: Dict[str, _ProviderState] = {}

    def get(
        self,
        provider: InformationProvider,
        now: float,
        serve_stale_on_failure: bool = True,
    ) -> Tuple[List[Entry], float]:
        """Return (entries, produced_at), refreshing when the TTL lapsed.

        Entries are copies stamped with the production time so consumers
        can "explicitly model the currency ... of their information"
        (§2.1).  Concurrent misses coalesce onto one ``provide()``; a
        provider in failure backoff is not invoked at all.
        """
        name = provider.name
        ttl = provider.cache_ttl
        leader = False
        background = False
        with self._lock:
            state = self._states.setdefault(name, _ProviderState())
            slot = state.slot
            if slot is not None and ttl > 0 and now - slot.produced_at <= ttl:
                self.stats._hits.inc()
                return self._serve(slot, provider)
            stale_ok = (
                slot is not None
                and ttl > 0
                and self.stale_while_revalidate > 0
                and now - slot.produced_at <= ttl + self.stale_while_revalidate
            )
            if state.flight is not None:
                flight = state.flight
                if stale_ok:
                    # A refresh is already under way and the snapshot is
                    # within the serve window: answer from it now.
                    self.stats._hits.inc()
                    return self._serve(slot, provider)
                self.stats._misses.inc()
                self.stats._coalesced.inc()
            elif now < state.retry_at:
                # Negative cache: the provider failed recently; don't
                # burn a provider invocation (or a pool slot) on it.
                self.stats._misses.inc()
                self.stats._backoff_skips.inc()
                if slot is not None and serve_stale_on_failure:
                    self.stats._stale_served.inc()
                    return self._serve(slot, provider)
                raise ProviderError(
                    f"provider {name!r} backing off after "
                    f"{state.failures} consecutive failures"
                )
            else:
                flight = state.flight = _Flight()
                leader = True
                if stale_ok and self._runner is not None:
                    self.stats._hits.inc()
                    self.stats._revalidations.inc()
                    background = True
                else:
                    self.stats._misses.inc()

        if leader:
            if background:
                # Stale-while-revalidate: serve the stale snapshot right
                # away; the refresh happens off this request's path.
                if not self._runner(lambda: self._refresh(provider, flight, now)):
                    self._refresh(provider, flight, now)  # pool saturated
                return self._serve(slot, provider)
            self._refresh(provider, flight, now)
        else:
            flight.done.wait()

        if flight.error is not None:
            with self._lock:
                slot = self._states[name].slot
            if slot is not None and serve_stale_on_failure:
                self.stats._stale_served.inc()
                return self._serve(slot, provider)
            raise flight.error
        return self._serve(flight.slot, provider)

    def _refresh(
        self, provider: InformationProvider, flight: _Flight, now: float
    ) -> None:
        """Invoke ``provide()`` once and resolve *flight* (the leader path)."""
        name = provider.name
        try:
            entries = provider.provide()
        except Exception as exc:  # noqa: BLE001 - must resolve the flight
            error = (
                exc
                if isinstance(exc, ProviderError)
                else ProviderError(f"provider {name!r} failed: {exc}")
            )
            failed_at = self._now(now)
            self.stats._failures.inc()
            with self._lock:
                state = self._states.setdefault(name, _ProviderState())
                state.failures += 1
                delay = min(
                    self.backoff_max,
                    self.backoff_base * (2 ** (state.failures - 1)),
                )
                state.retry_at = failed_at + delay
                state.flight = None
            flight.error = error
            flight.done.set()
            return
        slot = _CacheSlot(entries=entries, produced_at=self._now(now))
        with self._lock:
            state = self._states.setdefault(name, _ProviderState())
            state.slot = slot
            state.failures = 0
            state.retry_at = 0.0
            state.flight = None
        flight.slot = slot
        flight.done.set()

    def _now(self, fallback: float) -> float:
        return self.clock.now() if self.clock is not None else fallback

    def _serve(
        self, slot: _CacheSlot, provider: InformationProvider
    ) -> Tuple[List[Entry], float]:
        ttl = provider.cache_ttl if provider.cache_ttl > 0 else None
        out = []
        for entry in slot.entries:
            copy = entry.copy()
            copy.stamp(now=slot.produced_at, ttl=ttl)
            out.append(copy)
        return out, slot.produced_at

    def seed(
        self, provider_name: str, entries: List[Entry], produced_at: float
    ) -> None:
        """Install a snapshot without invoking the provider (warm restart).

        Used by durable-view recovery: entries replayed from storage
        stand in for the pre-crash ``provide()`` result, stamped with
        the original production time so TTL expiry still measures real
        information age, not process uptime.  Never overwrites a slot a
        live refresh already produced.
        """
        with self._lock:
            state = self._states.setdefault(provider_name, _ProviderState())
            if state.slot is None:
                state.slot = _CacheSlot(entries=list(entries), produced_at=produced_at)

    def invalidate(self, provider_name: str) -> None:
        """Drop the snapshot and failure history; keep any in-flight refresh."""
        with self._lock:
            state = self._states.get(provider_name)
            if state is not None:
                state.slot = None
                state.failures = 0
                state.retry_at = 0.0

    def clear(self) -> None:
        with self._lock:
            for state in self._states.values():
                state.slot = None
                state.failures = 0
                state.retry_at = 0.0

    def age(self, provider_name: str, now: float) -> Optional[float]:
        with self._lock:
            state = self._states.get(provider_name)
            slot = state.slot if state is not None else None
        return None if slot is None else now - slot.produced_at

    def in_backoff(self, provider_name: str, now: float) -> bool:
        """True while the negative cache is refusing to probe *provider_name*."""
        with self._lock:
            state = self._states.get(provider_name)
            return state is not None and now < state.retry_at
