"""Per-provider TTL caching (paper §10.3).

"To control the intrusiveness of GRIS operation, improve response time,
and maximize deployment flexibility, each provider's results may be
cached for a configurable period of time to reduce the number of
provider invocations; this cache time-to-live (TTL) is specified
per-provider."

The cache stores each provider's last snapshot with its production
timestamp; :meth:`get` refreshes on expiry.  It also tolerates provider
failures by serving the stale snapshot (flagged) — unavailable sources
must "not interfere with other functions" (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ldap.entry import Entry
from ..obs.metrics import MetricsRegistry
from .provider import InformationProvider, ProviderError

__all__ = ["CacheStats", "ProviderCache"]


class CacheStats:
    """Read view over the registry-backed cache counters.

    Kept attribute-compatible with the old ad-hoc dataclass (``hits``,
    ``misses``, ``failures``, ``stale_served``, ``hit_rate``) while the
    storage moved to :class:`~repro.obs.metrics.MetricsRegistry` so the
    same numbers surface under ``cn=monitor``.
    """

    def __init__(self, metrics: MetricsRegistry):
        self._hits = metrics.counter("gris.cache.hits")
        self._misses = metrics.counter("gris.cache.misses")
        self._failures = metrics.counter("gris.cache.failures")
        self._stale_served = metrics.counter("gris.cache.stale_served")

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def failures(self) -> int:
        return int(self._failures.value)

    @property
    def stale_served(self) -> int:
        return int(self._stale_served.value)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _CacheSlot:
    entries: List[Entry]
    produced_at: float


class ProviderCache:
    """TTL cache over provider snapshots."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self._slots: Dict[str, _CacheSlot] = {}
        self.metrics = metrics or MetricsRegistry()
        self.stats = CacheStats(self.metrics)

    def get(
        self,
        provider: InformationProvider,
        now: float,
        serve_stale_on_failure: bool = True,
    ) -> Tuple[List[Entry], float]:
        """Return (entries, produced_at), refreshing when the TTL lapsed.

        Entries are copies stamped with the production time so consumers
        can "explicitly model the currency ... of their information"
        (§2.1).
        """
        slot = self._slots.get(provider.name)
        if (
            slot is not None
            and provider.cache_ttl > 0
            and now - slot.produced_at <= provider.cache_ttl
        ):
            self.stats._hits.inc()
            return self._serve(slot, provider)
        self.stats._misses.inc()
        try:
            entries = provider.provide()
        except ProviderError:
            self.stats._failures.inc()
            if slot is not None and serve_stale_on_failure:
                self.stats._stale_served.inc()
                return self._serve(slot, provider)
            raise
        slot = _CacheSlot(entries=entries, produced_at=now)
        self._slots[provider.name] = slot
        return self._serve(slot, provider)

    def _serve(
        self, slot: _CacheSlot, provider: InformationProvider
    ) -> Tuple[List[Entry], float]:
        ttl = provider.cache_ttl if provider.cache_ttl > 0 else None
        out = []
        for entry in slot.entries:
            copy = entry.copy()
            copy.stamp(now=slot.produced_at, ttl=ttl)
            out.append(copy)
        return out, slot.produced_at

    def invalidate(self, provider_name: str) -> None:
        self._slots.pop(provider_name, None)

    def clear(self) -> None:
        self._slots.clear()

    def age(self, provider_name: str, now: float) -> Optional[float]:
        slot = self._slots.get(provider_name)
        return None if slot is None else now - slot.produced_at
