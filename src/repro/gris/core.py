"""The GRIS backend: MDS-2's configurable information provider (§10.3).

"GRIS authenticates and parses each incoming GRIP request and then
dispatches those requests to one or more 'local' information providers,
depending [on] the type of information named in the request.  Results
are then merged back to the client.  To efficiently prune search
processing, a specific provider's results are only considered if the
provider's namespace intersects the query scope."

This backend plugs into the :class:`~repro.ldap.server.LdapServer`
front end (which owns authentication and authoritative result
filtering, §10.1/§10.3) and adds:

* namespace-pruned dispatch to registered providers;
* per-provider TTL caching (:mod:`repro.gris.cache`);
* merge of provider snapshots into one view;
* robustness: a failing provider is skipped, not fatal (§2.2);
* polling subscriptions, so persistent search works over providers that
  only expose snapshots (MDS-2.1 lacked push; we implement it as the
  planned extension).
"""

from __future__ import annotations

import functools
import threading
from typing import Dict, Iterable, List, Optional

from ..ldap.backend import (
    Backend,
    ChangeCallback,
    ChangeType,
    RequestContext,
    SearchOutcome,
    Subscription,
    _in_scope,
)
from ..ldap.dit import DIT, DitError, Scope
from ..ldap.dn import DN, RDN
from ..ldap.entry import Entry
from ..ldap.executor import RequestExecutor
from ..ldap.filter import compile_filter
from ..ldap.protocol import LdapResult, ResultCode, SearchRequest
from ..ldap.storage import StorageEngine
from ..net.clock import Clock, TimerHandle
from ..obs.metrics import MetricsRegistry
from .cache import ProviderCache
from .provider import FunctionProvider, InformationProvider, ProviderError

__all__ = ["GrisBackend"]

# Object class of the per-provider bookkeeping entries a durable view
# stores alongside the mirrored snapshots (see _sync_view).
_VIEW_META_CLASS = "grisviewmeta"


def _view_marker_dn(provider_name: str) -> DN:
    """Where provider *provider_name*'s view-metadata entry lives.

    A top-level branch separate from the GRIS suffix, so markers never
    collide with (or leak into) the mirrored provider namespace.
    """
    return DN((RDN.single("gris-view-provider", provider_name),))


class GrisBackend(Backend):
    """A Grid Resource Information Service backend."""

    def __init__(
        self,
        suffix: DN | str,
        clock: Clock,
        poll_interval: float = 5.0,
        metrics: Optional[MetricsRegistry] = None,
        provider_workers: int = 0,
        provider_queue_limit: int = 64,
        stale_while_revalidate: float = 0.0,
        index_attrs: Optional[Iterable[str]] = None,
        storage: Optional[StorageEngine] = None,
    ):
        self.suffix = DN.of(suffix)
        self.clock = clock
        self.poll_interval = poll_interval
        self.metrics = metrics or MetricsRegistry()
        # Bounded provider pool (§10.3 fan-out).  workers=0 keeps probes
        # inline on the calling thread, which the discrete-event
        # simulator needs for determinism; workers>0 makes a cold
        # collect cost max(provider latency) instead of the sum.
        self._pool = RequestExecutor(
            workers=provider_workers,
            queue_limit=provider_queue_limit,
            metrics=self.metrics,
            clock=clock,
            name="gris-provider",
            metric_prefix="gris.executor",
        )
        self.cache = ProviderCache(
            self.metrics,
            clock=clock,
            stale_while_revalidate=stale_while_revalidate,
            refresh_runner=None if self._pool.inline else self._pool.submit,
        )
        self._providers: Dict[str, InformationProvider] = {}
        self._suffix_entry: Optional[Entry] = None
        self._subs: Dict[int, "_PollingSubscription"] = {}
        self._next_sub = 0
        self._provider_errors = self.metrics.counter("gris.provider.errors")
        self._dispatches = self.metrics.counter("gris.provider.dispatches")
        self._pruned = self.metrics.counter("gris.provider.pruned")
        self._cancelled_collects = self.metrics.counter("gris.collect.cancelled")
        self._collect_seconds = self.metrics.histogram("gris.collect.seconds")
        self.metrics.gauge_fn("gris.providers", lambda: len(self._providers))
        self.metrics.gauge_fn("gris.subscriptions", lambda: len(self._subs))
        # Materialized view: cached provider snapshots mirrored into an
        # indexed DIT so plannable filters probe posting lists instead
        # of filter-matching every merged entry.  Providers are assumed
        # to own disjoint namespaces (as the merge in _collect already
        # assumes).  None = linear matching, the historical behavior.
        self._view: Optional[DIT] = None
        self._view_lock = threading.Lock()
        self._view_versions: Dict[str, float] = {}
        self._view_dns: Dict[str, List[DN]] = {}
        self.index_attrs: tuple = tuple(index_attrs or ())
        self.recovered_view_providers = 0
        if self.index_attrs or storage is not None:
            self._view = DIT(
                index_attrs=self.index_attrs,
                metrics=self.metrics,
                name="gris-view",
                storage=storage,
            )
            if storage is not None:
                self._recover_view()
        self._search_indexed = self.metrics.counter("gris.search.indexed")
        self._search_scanned = self.metrics.counter("gris.search.scanned")

    def shutdown(self, wait: bool = True) -> None:
        """Stop the provider pool threads and flush durable view state."""
        self._pool.shutdown(wait=wait)
        if self._view is not None:
            self._view.storage.close()

    @property
    def provider_errors(self) -> int:
        """Compatibility view over the registry-backed error counter."""
        return int(self._provider_errors.value)

    # -- configuration ("dynamically or statically", §10.3) -------------------

    def add_provider(self, provider: InformationProvider) -> None:
        if provider.name in self._providers:
            raise ValueError(f"duplicate provider {provider.name!r}")
        self._providers[provider.name] = provider
        # Live cache-age gauge per provider: consumers of cn=monitor can
        # judge snapshot currency (§2.1) without probing the provider.
        name = provider.name
        self.metrics.gauge_fn(
            "gris.cache.age",
            lambda: self.cache.age(name, self.clock.now()) or 0.0,
            labels={"provider": name},
        )

    def enable_self_monitor(self, health, cache_ttl: float = 1.0) -> None:
        """Register the internal self-provider (§6 meta-monitoring).

        The server becomes one of its own information sources: an
        in-process provider owning the ``mds-server-name=<id>`` branch
        under the suffix, publishing the ``Mds-Server-*`` health rollup
        from *health* (an :class:`~repro.obs.health.HealthModel`).  The
        entries flow through the ordinary provider cache and chaining
        paths, so a monitoring GIIS aggregates fleet health with plain
        GRIP — no side channel.  *cache_ttl* bounds how often the rollup
        is recomputed under query load.
        """
        server_id = health.server_id or "gris"
        namespace = DN((RDN.single("mds-server-name", server_id),))
        self.add_provider(
            FunctionProvider(
                "mds-self-monitor",
                lambda: [health.entry(namespace)],
                namespace=namespace,
                cache_ttl=cache_ttl,
            )
        )

    def remove_provider(self, name: str) -> None:
        if self._providers.pop(name, None) is not None:
            # Drop the per-provider cache-age gauge registered by
            # add_provider, or cn=monitor keeps serving the ghost.
            self.metrics.unregister("gris.cache.age", labels={"provider": name})
        self.cache.invalidate(name)
        self._drop_view(name)

    # -- materialized view -------------------------------------------------------

    def _drop_view(self, name: str) -> None:
        if self._view is None:
            return
        with self._view_lock:
            self._view_versions.pop(name, None)
            for dn in sorted(self._view_dns.pop(name, ()), key=len, reverse=True):
                try:
                    self._view.delete(dn)
                except DitError:
                    pass  # shared glue ancestor: another provider's child
            try:
                self._view.delete(_view_marker_dn(name))
            except DitError:
                pass  # never synced (or volatile view without markers)

    def _sync_view(self, name: str, version: float, entries: List[Entry]) -> None:
        """Mirror one provider's cache snapshot into the view DIT.

        ``version`` is the snapshot's produced_at stamp from the
        provider cache: one sync per refresh, no matter how many
        searches serve that snapshot.
        """
        if self._view is None:
            return
        with self._view_lock:
            if self._view_versions.get(name) == version:
                return
            for dn in sorted(self._view_dns.get(name, ()), key=len, reverse=True):
                try:
                    self._view.delete(dn)
                except DitError:
                    pass
            stored: List[DN] = []
            for entry in sorted(entries, key=lambda e: len(e.dn)):
                self._view.add(entry, replace=True)
                stored.append(entry.dn)
            self._view_dns[name] = stored
            self._view_versions[name] = version
            # Bookkeeping marker: with a durable engine underneath, the
            # (version, stored-DNs) pair must survive restart alongside
            # the mirrored entries, or recovery could not tell which
            # snapshots the persisted view corresponds to.
            marker = Entry(
                _view_marker_dn(name),
                attrs={
                    "gris-view-provider": name,
                    "objectclass": [_VIEW_META_CLASS],
                    "viewversion": repr(version),
                    "viewdn": [str(dn) for dn in stored],
                },
            )
            self._view.replace(marker)

    def _recover_view(self) -> None:
        """Warm restart: rebuild view bookkeeping from replayed markers.

        Each marker entry yields the provider's snapshot version and the
        DNs it mirrored; those entries (un-rebased back to the
        provider's own namespace) seed the provider cache at the
        original production time, so planned searches after a restart
        serve exactly the pre-crash results until TTLs lapse and the
        normal refresh cycle takes over — §2.1 information currency is
        preserved because the stamps still reflect when the data was
        actually produced.
        """
        strip = len(self.suffix.rdns)
        for entry in self._view.dump():
            if not entry.is_a(_VIEW_META_CLASS):
                continue
            name = entry.first("gris-view-provider")
            if not name:
                continue
            try:
                version = float(entry.first("viewversion", ""))
                dns = [DN.of(s) for s in entry.get("viewdn")]
            except ValueError:
                continue  # malformed marker: provider re-probes cold
            self._view_versions[name] = version
            self._view_dns[name] = dns
            snapshot: List[Entry] = []
            for dn in dns:
                try:
                    stored = self._view.get(dn)
                except DitError:
                    continue
                relative = (
                    DN(stored.dn.rdns[: len(stored.dn.rdns) - strip])
                    if strip
                    else stored.dn
                )
                snapshot.append(stored.with_dn(relative))
            self.cache.seed(name, snapshot, version)
            self.recovered_view_providers += 1

    def _view_candidates(self, req: SearchRequest, info: Dict) -> Optional[set]:
        """Candidate DNs for this collect, or None to match linearly.

        Falls back whenever (a) no view is configured, (b) any provider
        answered per-request (its entries bypass the cache and thus the
        view), (c) a concurrent refresh moved the view past the snapshot
        versions this collect served (candidates could miss DNs present
        in the merged dict), or (d) the filter is not index-answerable.
        """
        if self._view is None or info.get("direct"):
            return None
        with self._view_lock:
            versions = info.get("versions", {})
            for name, version in versions.items():
                if self._view_versions.get(name) != version:
                    return None
            return self._view.candidates(req.filter)

    def providers(self) -> List[InformationProvider]:
        return list(self._providers.values())

    def set_suffix_entry(self, entry: Entry) -> None:
        """The entry published at the GRIS suffix itself."""
        self._suffix_entry = entry.with_dn(self.suffix)

    def _observe_provider(
        self, provider: InformationProvider, started: float, span, failed: bool = False
    ) -> None:
        elapsed = self.clock.now() - started
        self.metrics.histogram(
            "gris.provider.seconds", labels={"provider": provider.name}
        ).observe(elapsed)
        if span is not None:
            if failed:
                span.tag("failed", True)
            span.finish()

    # -- namespace math ---------------------------------------------------------

    def provider_base(self, provider: InformationProvider) -> DN:
        """Absolute DN of the subtree *provider* serves."""
        return DN(provider.namespace.rdns + self.suffix.rdns)

    def _intersects(self, provider: InformationProvider, req: SearchRequest) -> bool:
        """Conservative namespace/scope intersection test (§10.3 pruning).

        May admit a provider whose entries all fall outside the scope —
        generic scope filtering removes them — but never prunes one that
        could contribute.
        """
        base = req.base_dn()
        pbase = self.provider_base(provider)
        if req.scope == Scope.BASE:
            return base.is_within(pbase)
        return pbase.is_within(base) or base.is_within(pbase)

    # -- search ------------------------------------------------------------------

    def naming_contexts(self):
        return [str(self.suffix)]

    def _search_impl(self, req: SearchRequest, ctx: RequestContext) -> SearchOutcome:
        try:
            base = req.base_dn()
        except Exception:
            return SearchOutcome(
                result=LdapResult(ResultCode.PROTOCOL_ERROR, message="bad base DN")
            )
        if not (base.is_within(self.suffix) or self.suffix.is_within(base)):
            return SearchOutcome(
                result=LdapResult(
                    ResultCode.NO_SUCH_OBJECT, matched_dn=str(self.suffix)
                )
            )
        trace = getattr(ctx, "trace", None)
        span = trace.child("gris.collect") if trace is not None else None
        info: Dict = {"direct": False, "versions": {}}
        entries = self._collect(req, trace=span, token=ctx.token, info=info)
        if span is not None:
            span.tag("entries", len(entries)).finish()
        candidates = (
            self._view_candidates(req, info) if req.scope != Scope.BASE else None
        )
        match = compile_filter(req.filter)
        if candidates is not None:
            self._search_indexed.inc()
            in_scope = []
            # The suffix entry never enters the view (it is not a cached
            # provider snapshot): check it linearly, then the candidates.
            suffix_entry = entries.get(self.suffix)
            if (
                suffix_entry is not None
                and _in_scope(suffix_entry.dn, base, req.scope)
                and match(suffix_entry)
            ):
                in_scope.append(suffix_entry)
            for dn in candidates:
                if dn == self.suffix:
                    continue
                entry = entries.get(dn)
                if entry is None:
                    continue  # stale posting: not part of this collect
                if _in_scope(entry.dn, base, req.scope) and match(entry):
                    in_scope.append(entry)
        else:
            self._search_scanned.inc()
            in_scope = [
                e
                for e in entries.values()
                if _in_scope(e.dn, base, req.scope) and match(e)
            ]
        if req.scope == Scope.BASE and not in_scope:
            return SearchOutcome(
                result=LdapResult(ResultCode.NO_SUCH_OBJECT, matched_dn=req.base)
            )
        in_scope.sort(key=lambda e: e.dn.sort_key)
        return SearchOutcome(entries=in_scope)

    def _collect(
        self, req: SearchRequest, trace=None, token=None, info: Optional[Dict] = None
    ) -> Dict[DN, Entry]:
        """Gather the merged view relevant to *req* from all providers.

        Namespace-pruned providers are probed concurrently on the
        provider pool when it has workers (query latency is the max of
        the provider latencies, not the sum); inline mode probes them
        sequentially, which keeps the simulator deterministic.  Results
        merge in registration order either way, so the merged view does
        not depend on probe completion order.

        A cancelled *token* aborts the fan-out: the requester is gone
        (Abandon, disconnect) or past its time limit, so outstanding
        probes are wasted work.  The partial merge is returned; the
        front end discards it.
        """
        now = self.clock.now()
        merged: Dict[DN, Entry] = {}
        if self._suffix_entry is not None:
            merged[self.suffix] = self._suffix_entry.copy()
        eligible: List[InformationProvider] = []
        for provider in self._providers.values():
            if self._intersects(provider, req):
                eligible.append(provider)
            else:
                self._pruned.inc()
        if self._pool.inline or len(eligible) <= 1:
            results = self._probe_serial(eligible, req, now, trace, token, info)
        else:
            results = self._probe_parallel(eligible, req, now, trace, token, info)
        for entries in results:
            if not entries:
                continue
            for entry in entries:
                # First provider to name a DN wins; providers are expected
                # to own disjoint namespaces.
                merged.setdefault(entry.dn, entry)
        self._collect_seconds.observe(self.clock.now() - now)
        return merged

    def _probe_one(
        self,
        provider: InformationProvider,
        req: SearchRequest,
        now,
        trace,
        token,
        info: Optional[Dict] = None,
    ) -> Optional[List[Entry]]:
        """Probe one provider; absolute entries, or None (failed/cancelled)."""
        if token is not None and token.cancelled:
            return None
        self._dispatches.inc()
        span = (
            trace.child("gris.provider", provider=provider.name)
            if trace is not None
            else None
        )
        started = self.clock.now()
        direct = provider.search(req, self.suffix)
        if direct is not None:
            self._observe_provider(provider, started, span)
            if info is not None:
                # Filter-aware providers answer outside the cache; the
                # materialized view cannot vouch for those entries.
                info["direct"] = True
            return list(direct)
        try:
            entries, produced_at = self.cache.get(provider, now)
        except ProviderError:
            self._provider_errors.inc()
            self._observe_provider(provider, started, span, failed=True)
            return None  # robustness: skip the failed source (§2.2)
        self._observe_provider(provider, started, span)
        rebased = [
            entry.with_dn(DN(entry.dn.rdns + self.suffix.rdns)) for entry in entries
        ]
        if info is not None:
            info["versions"][provider.name] = produced_at
        self._sync_view(provider.name, produced_at, rebased)
        return rebased

    def _probe_serial(
        self, eligible: List[InformationProvider], req, now, trace, token, info=None
    ) -> List[Optional[List[Entry]]]:
        results: List[Optional[List[Entry]]] = []
        for provider in eligible:
            if token is not None and token.cancelled:
                self._cancelled_collects.inc()
                break
            results.append(self._probe_one(provider, req, now, trace, token, info))
        return results

    def _probe_parallel(
        self, eligible: List[InformationProvider], req, now, trace, token, info=None
    ) -> List[Optional[List[Entry]]]:
        results: List[Optional[List[Entry]]] = [None] * len(eligible)
        remaining = [len(eligible)]
        lock = threading.Lock()
        done = threading.Event()

        def probe_at(index: int, provider: InformationProvider) -> None:
            out = None
            try:
                out = self._probe_one(provider, req, now, trace, token, info)
            finally:
                with lock:
                    results[index] = out
                    remaining[0] -= 1
                    if remaining[0] == 0:
                        done.set()

        if token is not None:
            # Abandon/deadline releases the wait below immediately;
            # outstanding probes see the cancelled token and no-op.
            token.on_cancel(done.set)
        for index, provider in enumerate(eligible):
            if token is not None and token.cancelled:
                break
            if not self._pool.submit(functools.partial(probe_at, index, provider)):
                probe_at(index, provider)  # pool saturated: probe here
        done.wait()
        with lock:
            snapshot = list(results)
        if token is not None and token.cancelled:
            self._cancelled_collects.inc()
        return snapshot

    def snapshot(self, req: Optional[SearchRequest] = None) -> List[Entry]:
        """The full merged view (diagnostics and polling subscriptions)."""
        req = req or SearchRequest(base=str(self.suffix), scope=Scope.SUBTREE)
        return list(self._collect(req).values())

    # -- polling subscriptions ------------------------------------------------------

    def subscribe(
        self,
        req: SearchRequest,
        ctx: RequestContext,
        push: ChangeCallback,
        change_types: int = ChangeType.ALL,
    ) -> Subscription:
        self._next_sub += 1
        key = self._next_sub
        sub = _PollingSubscription(self, req, push, change_types)
        self._subs[key] = sub
        sub.start()

        def cancel() -> None:
            inner = self._subs.pop(key, None)
            if inner is not None:
                inner.stop()

        return Subscription(cancel)

    def subscription_count(self) -> int:
        return len(self._subs)


class _PollingSubscription:
    """Diffs successive GRIS snapshots into change notifications."""

    def __init__(
        self,
        backend: GrisBackend,
        req: SearchRequest,
        push: ChangeCallback,
        change_types: int,
    ):
        self.backend = backend
        self.req = req
        self.push = push
        self.change_types = change_types
        self._timer: Optional[TimerHandle] = None
        self._last: Dict[DN, Entry] = self._matching()

    def _matching(self) -> Dict[DN, Entry]:
        base = self.req.base_dn()
        match = compile_filter(self.req.filter)
        out: Dict[DN, Entry] = {}
        for dn, entry in self.backend._collect(self.req).items():
            if _in_scope(dn, base, self.req.scope) and match(entry):
                out[dn] = entry
        return out

    def start(self) -> None:
        self._timer = self.backend.clock.call_later(
            self.backend.poll_interval, self._tick
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        current = self._matching()
        previous, self._last = self._last, current
        for dn, entry in current.items():
            if dn not in previous:
                if self.change_types & ChangeType.ADD:
                    self.push(entry.copy(), ChangeType.ADD)
            elif not _same_payload(previous[dn], entry):
                if self.change_types & ChangeType.MODIFY:
                    self.push(entry.copy(), ChangeType.MODIFY)
        for dn, entry in previous.items():
            if dn not in current and self.change_types & ChangeType.DELETE:
                self.push(entry.copy(), ChangeType.DELETE)
        self.start()


def _same_payload(a: Entry, b: Entry) -> bool:
    """Entry equality ignoring the currency-metadata stamps."""
    strip = ("mds-timestamp", "mds-validto")
    ca, cb = a.copy(), b.copy()
    for attr in strip:
        ca.remove_attr(attr)
        cb.remove_attr(attr)
    return ca == cb
