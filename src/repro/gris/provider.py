"""The information-provider API (paper §10.3).

"The GRIS communicates with an information provider via a well-defined
API.  We have implemented two variants of this API": shell scripts
invoked per request, and loadable modules running inside the server with
RAM-persistent state.  Both variants are modelled here:

* :class:`FunctionProvider` — the *module* style: an in-process callable
  returning entries, zero invocation overhead, may keep state;
* :class:`ScriptProvider` — the *script* style: a callable standing in
  for a forked shell script, producing LDIF text that the framework
  parses, with an accounted per-invocation cost (process creation).

A provider owns a namespace (a subtree below the GRIS suffix).  It
either materializes that subtree on demand (:meth:`provide`) or — for
non-enumerable namespaces like network-pair forecasts (§4.1) — answers
scoped searches directly (:meth:`search`).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence

from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.ldif import parse_ldif
from ..ldap.protocol import SearchRequest

__all__ = ["ProviderError", "InformationProvider", "FunctionProvider", "ScriptProvider"]


class ProviderError(Exception):
    """Raised when a provider cannot produce its information."""


class InformationProvider:
    """Base class: one pluggable information source.

    *namespace* is the DN of the subtree this provider serves, relative
    to the GRIS suffix (empty DN = the whole suffix).  *cache_ttl* is
    the §10.3 per-provider cache time-to-live: "the appropriate value
    depends greatly on both the dynamism of the modeled resource and
    the cost of the provider mechanism."
    """

    def __init__(self, name: str, namespace: DN | str = "", cache_ttl: float = 0.0):
        self.name = name
        self.namespace = DN.of(namespace)
        self.cache_ttl = cache_ttl
        self.invocations = 0
        # Providers are now invoked from the parallel collect pool, so
        # invocation/cost accounting must not lose updates across threads.
        self._stats_lock = threading.Lock()

    def provide(self) -> List[Entry]:
        """Produce the full current snapshot of this provider's subtree.

        DNs are relative to the GRIS suffix.  Called through the cache.
        """
        raise NotImplementedError

    def search(self, req: SearchRequest, suffix: DN) -> Optional[List[Entry]]:
        """Directly answer a scoped search (non-enumerable namespaces).

        Return None to fall back to :meth:`provide` + generic filtering.
        *req.base* is absolute; *suffix* is the GRIS suffix.
        """
        return None

    def _invoked(self) -> None:
        with self._stats_lock:
            self.invocations += 1


class FunctionProvider(InformationProvider):
    """Module-style provider: wraps a callable returning entries."""

    def __init__(
        self,
        name: str,
        fn: Callable[[], Sequence[Entry]],
        namespace: DN | str = "",
        cache_ttl: float = 0.0,
    ):
        super().__init__(name, namespace, cache_ttl)
        self._fn = fn

    def provide(self) -> List[Entry]:
        self._invoked()
        try:
            return [e.copy() for e in self._fn()]
        except ProviderError:
            raise
        except Exception as exc:  # noqa: BLE001 - provider faults are data faults
            raise ProviderError(f"provider {self.name!r} failed: {exc}") from exc


class ScriptProvider(InformationProvider):
    """Script-style provider: produces LDIF text, parsed per invocation.

    *cost* models the per-invocation overhead ("the overhead of
    server-side process creation") that module providers avoid; the
    caching benchmark (E7) charges it per cache miss.
    """

    def __init__(
        self,
        name: str,
        script: Callable[[], str],
        namespace: DN | str = "",
        cache_ttl: float = 0.0,
        cost: float = 0.0,
    ):
        super().__init__(name, namespace, cache_ttl)
        self._script = script
        self.cost = cost
        self.total_cost = 0.0

    def provide(self) -> List[Entry]:
        self._invoked()
        with self._stats_lock:
            self.total_cost += self.cost
        try:
            text = self._script()
        except Exception as exc:  # noqa: BLE001
            raise ProviderError(f"script provider {self.name!r} failed: {exc}") from exc
        try:
            return parse_ldif(text)
        except Exception as exc:  # noqa: BLE001
            raise ProviderError(
                f"script provider {self.name!r} produced bad LDIF: {exc}"
            ) from exc
