"""Host information providers: static configuration and dynamic load.

The MDS-2 release ships "information sources for static host information
(operating system version, CPU type, number of processors, etc.) [and]
dynamic host information (load average, queue entries, etc.)" (§10.3).

* :class:`StaticHostProvider` — machine configuration, long cache TTL;
* :class:`DynamicHostProvider` — load averages from a pluggable sensor,
  short cache TTL;
* :class:`SimulatedLoadSensor` — a mean-reverting stochastic load
  process for the simulator, so benches exercise realistic dynamics;
* :func:`real_load_sensor` — reads the actual ``os.getloadavg`` when the
  examples run on a real machine.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..ldap.dn import DN
from ..ldap.entry import Entry
from .provider import FunctionProvider

__all__ = [
    "HostConfig",
    "StaticHostProvider",
    "LoadSensor",
    "SimulatedLoadSensor",
    "real_load_sensor",
    "DynamicHostProvider",
]


@dataclass(frozen=True)
class HostConfig:
    """Static description of one compute resource."""

    hostname: str
    system: str = "linux"
    os_version: str = "2.4"
    cpu_type: str = "x86"
    cpu_count: int = 1
    memory_mb: int = 512
    architecture: str = "ia32"

    def to_entry(self) -> Entry:
        return Entry(
            DN.root().child(f"hn={self.hostname}"),
            objectclass="computer",
            hn=self.hostname,
            system=self.system,
            osversion=self.os_version,
            cputype=self.cpu_type,
            cpucount=self.cpu_count,
            memorysize=f"{self.memory_mb} MB",
            architecture=self.architecture,
        )


class StaticHostProvider(FunctionProvider):
    """Static host information: changes only on reconfiguration.

    *base* is where the computer entry sits relative to the GRIS suffix:
    the default ``hn=<host>`` suits an org-level GRIS serving many
    machines; pass ``""`` when the GRIS suffix *is* the host entry
    (per-machine GRIS, the common MDS deployment).
    """

    def __init__(
        self,
        config: HostConfig,
        cache_ttl: float = 3600.0,
        base: Optional[DN | str] = None,
    ):
        self.config = config
        self.base = DN.of(base) if base is not None else DN.parse(f"hn={config.hostname}")
        super().__init__(
            name=f"static-host-{config.hostname}",
            fn=self._read,
            namespace=self.base,
            cache_ttl=cache_ttl,
        )

    def _read(self) -> List[Entry]:
        return [self.config.to_entry().with_dn(self.base)]


# A load sensor returns (load1, load5, load15).
LoadSensor = Callable[[], Tuple[float, float, float]]


class SimulatedLoadSensor:
    """Mean-reverting random-walk load process.

    Each sample pulls toward *mean* with rate *reversion* plus Gaussian
    noise — a cheap Ornstein-Uhlenbeck analogue that produces the load
    dynamics the idle-multicomputer and broker experiments need.  The
    5- and 15-minute figures are EWMAs of the 1-minute value.
    """

    def __init__(
        self,
        rng: random.Random,
        mean: float = 1.0,
        noise: float = 0.3,
        reversion: float = 0.2,
        initial: Optional[float] = None,
    ):
        self.rng = rng
        self.mean = mean
        self.noise = noise
        self.reversion = reversion
        self.load1 = initial if initial is not None else max(0.0, mean)
        self.load5 = self.load1
        self.load15 = self.load1

    def __call__(self) -> Tuple[float, float, float]:
        pull = self.reversion * (self.mean - self.load1)
        self.load1 = max(0.0, self.load1 + pull + self.rng.gauss(0.0, self.noise))
        self.load5 += (self.load1 - self.load5) * 0.2
        self.load15 += (self.load1 - self.load15) * 0.0667
        return (self.load1, self.load5, self.load15)

    def set_mean(self, mean: float) -> None:
        """Shift the regime (e.g. a job arrives / departs)."""
        self.mean = mean


def real_load_sensor() -> Tuple[float, float, float]:
    """The host's actual load averages (used by the examples)."""
    try:
        return os.getloadavg()
    except (OSError, AttributeError):
        return (0.0, 0.0, 0.0)


class DynamicHostProvider(FunctionProvider):
    """Dynamic host information: load averages under ``perf=load``."""

    def __init__(
        self,
        hostname: str,
        sensor: LoadSensor,
        cache_ttl: float = 15.0,
        period: int = 10,
        base: Optional[DN | str] = None,
    ):
        self.hostname = hostname
        self.sensor = sensor
        self.period = period
        self.base = DN.of(base) if base is not None else DN.parse(f"hn={hostname}")
        super().__init__(
            name=f"dynamic-host-{hostname}",
            fn=self._read,
            namespace=self.base,
            cache_ttl=cache_ttl,
        )

    def _read(self) -> List[Entry]:
        load1, load5, load15 = self.sensor()
        return [
            Entry(
                self.base.child("perf=loadavg"),
                objectclass=["perf", "loadaverage"],
                perf="loadavg",
                period=self.period,
                load1=f"{load1:.2f}",
                load5=f"{load5:.2f}",
                load15=f"{load15:.2f}",
            )
        ]
