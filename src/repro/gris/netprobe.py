"""Active network measurement on the simulated network.

The paper's NWS provider "may variously access cached data or perform
an experiment" (§4.1).  :mod:`repro.gris.nws` covers the cached path;
this module performs the experiments: echo-based RTT probes and
timed-transfer bandwidth probes between simulator nodes, feeding
measurement series that the forecaster bank then models.

Wire an :class:`EchoResponder` onto any node that should be probeable,
then drive a :class:`NetworkProber` from the measuring node.  Probes are
asynchronous (datagram round trips on the event loop); lost probes are
recorded as timeouts, not hangs.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..net.clock import Clock
from ..net.simnet import SimNode
from ..net.transport import Address
from .nws import SeriesStore

__all__ = ["ECHO_PORT", "EchoResponder", "NetworkProber"]

ECHO_PORT = 7  # where else


class EchoResponder:
    """Answers probe datagrams: echoes payloads back to the sender."""

    def __init__(self, node: SimNode, port: int = ECHO_PORT, reply_port: int = 1007):
        self.node = node
        self.port = port
        self.reply_port = reply_port
        self.echoes = 0
        node.on_datagram(port, self._on_probe)

    def _on_probe(self, source: Address, payload: bytes) -> None:
        self.echoes += 1
        self.node.send_datagram((source[0], self.reply_port), payload)


class NetworkProber:
    """Measures RTT (and derived bandwidth) to echo-equipped peers.

    Measurements land in two :class:`~repro.gris.nws.SeriesStore`\\ s
    keyed ``lat:<src>-><dst>`` (seconds, one-way estimate = RTT/2) and
    ``bw:<src>-><dst>`` (MB/s from a timed payload transfer), ready for
    the :class:`~repro.gris.netpairs.NetworkPairsProvider`.
    """

    def __init__(
        self,
        node: SimNode,
        clock: Clock,
        latency_store: Optional[SeriesStore] = None,
        bandwidth_store: Optional[SeriesStore] = None,
        echo_port: int = ECHO_PORT,
        reply_port: int = 1007,
        timeout: float = 5.0,
        bulk_bytes: int = 64 * 1024,
    ):
        self.node = node
        self.clock = clock
        self.latency = latency_store if latency_store is not None else SeriesStore()
        self.bandwidth = bandwidth_store if bandwidth_store is not None else SeriesStore()
        self.echo_port = echo_port
        self.reply_port = reply_port
        self.timeout = timeout
        self.bulk_bytes = bulk_bytes
        self._next_id = 0
        self._pending: Dict[int, tuple] = {}
        self.probes_sent = 0
        self.probes_lost = 0
        node.on_datagram(reply_port, self._on_reply)

    def probe(
        self, dst: str, on_done: Optional[Callable[[Optional[float]], None]] = None
    ) -> None:
        """One RTT probe toward *dst*; result (seconds or None) via callback."""
        self._launch(dst, b"", "lat", on_done)

    def probe_bandwidth(
        self, dst: str, on_done: Optional[Callable[[Optional[float]], None]] = None
    ) -> None:
        """One bulk-transfer probe; bandwidth in MB/s via callback."""
        self._launch(dst, b"\x00" * self.bulk_bytes, "bw", on_done)

    def _launch(self, dst: str, padding: bytes, kind: str, on_done) -> None:
        self._next_id += 1
        probe_id = self._next_id
        started = self.clock.now()
        self.probes_sent += 1
        timer = self.clock.call_later(
            self.timeout, lambda: self._timed_out(probe_id)
        )
        self._pending[probe_id] = (dst, started, kind, on_done, timer)
        payload = probe_id.to_bytes(8, "big") + padding
        self.node.send_datagram((dst, self.echo_port), payload)

    def _on_reply(self, source: Address, payload: bytes) -> None:
        if len(payload) < 8:
            return
        probe_id = int.from_bytes(payload[:8], "big")
        pending = self._pending.pop(probe_id, None)
        if pending is None:
            return  # late reply after timeout
        dst, started, kind, on_done, timer = pending
        timer.cancel()
        rtt = self.clock.now() - started
        if kind == "lat":
            value = rtt / 2.0
            self.latency.observe(f"lat:{self.node.host}->{dst}", value)
        else:
            # bulk bytes crossed the path twice (there and back)
            transferred = 2.0 * (len(payload) - 8)
            value = (transferred / rtt) / (1024 * 1024) if rtt > 0 else 0.0
            self.bandwidth.observe(f"bw:{self.node.host}->{dst}", value)
        if on_done:
            on_done(value)

    def _timed_out(self, probe_id: int) -> None:
        pending = self._pending.pop(probe_id, None)
        if pending is None:
            return
        self.probes_lost += 1
        _dst, _started, _kind, on_done, _timer = pending
        if on_done:
            on_done(None)

    def survey(self, dsts, period: float, rounds: int) -> None:
        """Schedule periodic probes of every destination."""
        for r in range(rounds):
            for dst in dsts:
                self.clock.call_later(r * period, lambda d=dst: self.probe(d))
                self.clock.call_later(
                    r * period + period / 2.0,
                    lambda d=dst: self.probe_bandwidth(d),
                )
