"""Non-enumerable namespace provider: network-pair forecasts (§4.1).

"A provider can represent an infinite parametric name space, generating
elements of this space lazily in response to direct queries.  For
example, we have constructed ... an information provider that allows
users to request bandwidth information for entities corresponding to
network links connecting specified endpoints. ... Information providers
that support queries on nonenumerable namespaces might signal an error
and/or return partial results for searches that use too wide a scope."

Entries live at ``link=<src>:<dst>`` below the provider's namespace.
A query must pin down the pair, either by naming the entry (BASE
search) or by equality filters on ``src`` and ``dst``; wider searches
return only the already-materialized links (partial results) — and
none at all when the provider is configured strict, in which case the
merge layer simply sees nothing from it.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..ldap.dn import DN, RDN
from ..ldap.entry import Entry
from ..ldap.filter import And, Equality, Filter
from ..ldap.protocol import SearchRequest
from .nws import SeriesStore
from .provider import InformationProvider

__all__ = ["NetworkPairsProvider", "pair_series"]


def pair_series(src: str, dst: str, metric: str) -> str:
    return f"{metric}:{src}->{dst}"


def _equality_constraints(filt: Filter) -> dict:
    """Extract attr->value equality constraints from a conjunction."""
    out: dict = {}
    if isinstance(filt, Equality):
        out[filt.attr.lower()] = filt.value
    elif isinstance(filt, And):
        for clause in filt.clauses:
            out.update(_equality_constraints(clause))
    return out


class NetworkPairsProvider(InformationProvider):
    """Lazy bandwidth/latency entries for endpoint pairs."""

    def __init__(
        self,
        bandwidth_store: SeriesStore,
        latency_store: Optional[SeriesStore] = None,
        namespace: DN | str = "nw=links",
        strict: bool = False,
    ):
        super().__init__("network-pairs", namespace, cache_ttl=0.0)
        self.bandwidth = bandwidth_store
        self.latency = latency_store
        self.strict = strict
        self._materialized: Set[Tuple[str, str]] = set()
        self.lazy_hits = 0

    # The namespace is infinite: provide() cannot enumerate it, so only
    # already-materialized links are snapshot-able.
    def provide(self) -> List[Entry]:
        self._invoked()
        return [
            e
            for pair in sorted(self._materialized)
            if (e := self._link_entry(*pair)) is not None
        ]

    def search(self, req: SearchRequest, suffix: DN) -> Optional[List[Entry]]:
        self._invoked()
        base = req.base_dn()
        ns = DN(self.namespace.rdns + suffix.rdns)
        pair = self._pair_from_base(base, ns)
        if pair is None:
            pair = self._pair_from_filter(req.filter)
        if pair is not None:
            self.lazy_hits += 1
            self._materialized.add(pair)
            entry = self._link_entry(*pair)
            if entry is None:
                return []
            return [entry.with_dn(DN(entry.dn.rdns + suffix.rdns))]
        # Too wide a scope for an infinite namespace.
        if self.strict:
            return []
        out = []
        for src, dst in sorted(self._materialized):
            entry = self._link_entry(src, dst)
            if entry is not None:
                out.append(entry.with_dn(DN(entry.dn.rdns + suffix.rdns)))
        return out

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _pair_from_base(base: DN, ns: DN) -> Optional[Tuple[str, str]]:
        """A BASE-style query naming ``link=src:dst`` directly."""
        if not base.is_descendant_of(ns):
            return None
        rel = base.relative_to(ns)
        if len(rel) != 1 or rel[0].attr.lower() != "link":
            return None
        value = rel[0].value
        if ":" not in value:
            return None
        src, dst = value.split(":", 1)
        return (src, dst) if src and dst else None

    @staticmethod
    def _pair_from_filter(filt: Filter) -> Optional[Tuple[str, str]]:
        """Equality constraints pinning both endpoints."""
        constraints = _equality_constraints(filt)
        src, dst = constraints.get("src"), constraints.get("dst")
        if src and dst:
            return (src, dst)
        return None

    def _link_entry(self, src: str, dst: str) -> Optional[Entry]:
        bw = self.bandwidth.forecast(pair_series(src, dst, "bw"))
        if bw is None:
            return None
        entry = Entry(
            DN((RDN.single("link", f"{src}:{dst}"),) + self.namespace.rdns),
            objectclass="networklink",
            src=src,
            dst=dst,
            bandwidth=f"{bw.value:.3f}",
            forecastmethod=bw.method,
            measured=bw.samples,
        )
        if self.latency is not None:
            lat = self.latency.forecast(pair_series(src, dst, "lat"))
            if lat is not None:
                entry.put("latency", f"{lat.value:.6f}")
        return entry
