"""Distributed substrate: clocks, discrete-event simulation, transports.

One :class:`~repro.net.transport.Endpoint` interface with three
implementations — a deterministic simulator (:mod:`repro.net.simnet`)
for the partition/loss experiments, and two real TCP/UDP transports
proving the wire protocol is real: thread-per-connection
(:mod:`repro.net.tcp`) and a single-threaded selector reactor
(:mod:`repro.net.reactor`) for high client counts.
"""

from typing import Optional

from .clock import Clock, TimerHandle, WallClock
from .links import LAN, LOCAL, WAN, LinkModel
from .reactor import Reactor, ReactorConnection, ReactorEndpoint
from .sim import SimulationError, Simulator
from .simnet import SimConnection, SimNetwork, SimNode
from .tcp import TcpConnection, TcpEndpoint
from .transport import (
    Address,
    Connection,
    ConnectionClosed,
    ConnectionHandler,
    Endpoint,
    TransportError,
)

__all__ = [
    "Clock",
    "TimerHandle",
    "WallClock",
    "LAN",
    "LOCAL",
    "WAN",
    "LinkModel",
    "SimulationError",
    "Simulator",
    "SimConnection",
    "SimNetwork",
    "SimNode",
    "TcpConnection",
    "TcpEndpoint",
    "Reactor",
    "ReactorConnection",
    "ReactorEndpoint",
    "Address",
    "Connection",
    "ConnectionClosed",
    "ConnectionHandler",
    "Endpoint",
    "TransportError",
    "TRANSPORTS",
    "make_endpoint",
]

# Real-wire transport registry, keyed by the --transport flag values.
TRANSPORTS = ("reactor", "threads")


def make_endpoint(
    transport: str = "reactor",
    host: str = "127.0.0.1",
    metrics: Optional[object] = None,
):
    """Build a real-wire endpoint by transport name.

    ``"reactor"`` multiplexes every socket on one event-loop thread
    (scales to thousands of clients); ``"threads"`` spawns a reader
    thread per connection (simplest, fine for a handful of peers).
    Both speak the identical framing, so they interoperate freely.
    """
    if transport in ("reactor", "event-loop", "selector"):
        return ReactorEndpoint(host, metrics=metrics)
    if transport in ("threads", "thread", "tcp"):
        return TcpEndpoint(host, metrics=metrics)
    raise ValueError(
        f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
    )
