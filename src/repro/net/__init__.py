"""Distributed substrate: clocks, discrete-event simulation, transports.

One :class:`~repro.net.transport.Endpoint` interface with two
implementations — a deterministic simulator (:mod:`repro.net.simnet`)
for the partition/loss experiments, and real TCP/UDP
(:mod:`repro.net.tcp`) proving the wire protocol is real.
"""

from .clock import Clock, TimerHandle, WallClock
from .links import LAN, LOCAL, WAN, LinkModel
from .sim import SimulationError, Simulator
from .simnet import SimConnection, SimNetwork, SimNode
from .tcp import TcpConnection, TcpEndpoint
from .transport import (
    Address,
    Connection,
    ConnectionClosed,
    ConnectionHandler,
    Endpoint,
    TransportError,
)

__all__ = [
    "Clock",
    "TimerHandle",
    "WallClock",
    "LAN",
    "LOCAL",
    "WAN",
    "LinkModel",
    "SimulationError",
    "Simulator",
    "SimConnection",
    "SimNetwork",
    "SimNode",
    "TcpConnection",
    "TcpEndpoint",
    "Address",
    "Connection",
    "ConnectionClosed",
    "ConnectionHandler",
    "Endpoint",
    "TransportError",
]
