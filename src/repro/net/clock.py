"""Clock abstraction: simulated vs. wall time.

Every time-dependent component (soft-state registries, caches, refresh
loops, failure detectors) takes a :class:`Clock` so the same code runs
deterministically on the discrete-event simulator and in real time over
TCP.  This is the key to reproducing Figures 1 and 4 exactly.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Callable

__all__ = ["Clock", "WallClock", "TimerHandle"]


class TimerHandle:
    """Cancellation handle for a scheduled callback."""

    __slots__ = ("_cancel", "cancelled")

    def __init__(self, cancel: Callable[[], None]):
        self._cancel = cancel
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._cancel()


class Clock:
    """Interface: current time plus delayed-callback scheduling."""

    def now(self) -> float:
        raise NotImplementedError

    def call_later(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        raise NotImplementedError


class WallClock(Clock):
    """Real time via :mod:`time` and :class:`threading.Timer`."""

    def now(self) -> float:
        return _time.monotonic()

    def call_later(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        timer = threading.Timer(max(0.0, delay), fn)
        timer.daemon = True
        timer.start()
        return TimerHandle(timer.cancel)

    def sleep(self, seconds: float) -> None:
        _time.sleep(seconds)
