"""Event-loop TCP transport: one thread multiplexing every socket.

The thread-per-connection transport (:mod:`repro.net.tcp`) spends one
OS thread per connection on blocked ``recv`` calls, which caps a server
at a few hundred concurrent clients — exactly the multi-user regime
where the MDS performance studies measured the original implementation
falling over.  This module rebuilds the real-wire path on a selector
reactor: a single loop thread owns *all* sockets (listeners, stream
connections, datagram sockets) and dispatches readiness events, so the
per-client cost is one file descriptor and a few hundred bytes of
buffer state instead of a thread.

The interface is byte-identical to :mod:`repro.net.tcp`: the same
4-byte length framing, the same :class:`~repro.net.transport.Connection`
and ``Endpoint`` contracts, the same metric names — servers and clients
cannot tell which transport they are speaking over.  The deterministic
simulator path (:mod:`repro.net.simnet`) is untouched.

Threading rules:

* ``send`` is callable from any thread.  When the output buffer is
  empty it writes straight to the non-blocking socket from the calling
  thread (the hot path — no loop-thread round trip); a short write
  buffers the remainder and arms write interest on the loop.
* Receive callbacks run on the loop thread, serialized per connection
  in arrival order.  They must not block: an
  :class:`~repro.ldap.executor.RequestExecutor` with workers is the
  intended place for slow work (see ``grid-info-server --workers``).
  In particular, the blocking client wrappers (``LdapClient.search``
  and friends) must never be invoked from a reactor callback — they
  would wait on a response only the blocked loop could deliver.
* Selector registration changes happen only on the loop thread, posted
  via :meth:`Reactor.call` and a self-pipe wakeup.
"""

from __future__ import annotations

import collections
import logging
import selectors
import socket
import threading
import weakref
from typing import Callable, Deque, Dict, List, Optional

from ..obs.metrics import MetricsRegistry
from .tcp import _HEADER, MAX_FRAME
from .transport import (
    Address,
    Connection,
    ConnectionClosed,
    ConnectionHandler,
    TransportError,
)

__all__ = ["Reactor", "ReactorConnection", "ReactorEndpoint"]

log = logging.getLogger(__name__)

_READ = selectors.EVENT_READ
_WRITE = selectors.EVENT_WRITE
_RECV_CHUNK = 128 * 1024
# Per-readiness-event work bounds.  The selector is level-triggered, so
# stopping early never loses data — the socket shows up again on the
# next select — but the bounds keep one firehose peer from starving
# every other connection on the loop.
_RECV_BURST = 32
_ACCEPT_BURST = 64


class Reactor:
    """A selector event loop on one daemon thread.

    Owns fd registration and readiness dispatch.  ``data`` for every
    registered fd is a ``callback(mask)`` invoked on the loop thread.
    Other threads interact only through :meth:`call`, which posts a
    closure to the loop and wakes it via a socketpair self-pipe.
    """

    def __init__(
        self, metrics: Optional[MetricsRegistry] = None, name: str = "reactor"
    ):
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, _READ, self._on_wakeup)
        self._calls: Deque[Callable[[], None]] = collections.deque()
        self._lock = threading.Lock()
        self._stopped = False
        self._metrics = metrics
        self._cb_errors = (
            metrics.counter("reactor.callback_errors")
            if metrics is not None
            else None
        )
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    # -- cross-thread entry points ------------------------------------------

    def call(self, fn: Callable[[], None]) -> bool:
        """Run *fn* on the loop thread; False if the reactor is stopped."""
        with self._lock:
            if self._stopped:
                return False
            self._calls.append(fn)
        self._wake()
        return True

    def stop(self) -> None:
        """Stop the loop; joins the loop thread when called from outside it."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        self._wake()
        if threading.current_thread() is not self._thread:
            self._thread.join(timeout=5.0)

    @property
    def stopped(self) -> bool:
        return self._stopped

    # -- loop-thread-only selector surface ----------------------------------

    def register(self, sock, events: int, callback: Callable[[int], None]) -> None:
        self._selector.register(sock, events, callback)

    def modify(self, sock, events: int, callback: Callable[[int], None]) -> None:
        self._selector.modify(sock, events, callback)

    def unregister(self, sock) -> None:
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass  # never registered, or already gone

    # -- internals -----------------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except OSError:
            pass  # loop already tearing down, or pipe full (still wakes)

    def _on_wakeup(self, mask: int) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except OSError:
            pass

    def _count_error(self, context: str) -> None:
        log.exception("reactor: error in %s", context)
        if self._cb_errors is not None:
            self._cb_errors.inc()

    def _run(self) -> None:
        try:
            while True:
                try:
                    events = self._selector.select(timeout=5.0)
                except OSError:
                    events = []
                for key, mask in events:
                    try:
                        key.data(mask)
                    except Exception:  # noqa: BLE001 - never kill the loop
                        self._count_error("readiness callback")
                while True:
                    with self._lock:
                        if not self._calls:
                            break
                        fn = self._calls.popleft()
                    try:
                        fn()
                    except Exception:  # noqa: BLE001 - never kill the loop
                        self._count_error("posted call")
                if self._stopped:
                    break
        finally:
            for key in list(self._selector.get_map().values()):
                if key.fileobj is self._wake_r:
                    continue
                try:
                    key.fileobj.close()
                except OSError:
                    pass
            self._selector.close()
            self._wake_r.close()
            self._wake_w.close()


class ReactorConnection:
    """A framed TCP connection multiplexed on a :class:`Reactor`.

    Same wire format and :class:`~repro.net.transport.Connection`
    semantics as :class:`~repro.net.tcp.TcpConnection`, without the
    reader thread: reads are dispatched by the loop, writes go direct
    from the sender when the socket has room.
    """

    def __init__(
        self,
        reactor: Reactor,
        sock: socket.socket,
        metrics: Optional[MetricsRegistry] = None,
    ):
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not a TCP socket (socketpair in tests)
        self._reactor = reactor
        self._sock = sock
        self._metrics = metrics
        if metrics is not None:
            # Same metric names as the threaded transport, so dashboards
            # aggregate traffic regardless of which transport carried it.
            self._frames_in = metrics.counter("tcp.frames.received")
            self._bytes_in = metrics.counter("tcp.bytes.received")
            self._frames_out = metrics.counter("tcp.frames.sent")
            self._bytes_out = metrics.counter("tcp.bytes.sent")
        # Outbound: chunks pending write, socket writes serialized by
        # _out_lock (both the optimistic sender path and the loop's
        # flush take it).
        self._out: Deque[memoryview] = collections.deque()
        self._out_lock = threading.Lock()
        self._write_armed = False
        # Inbound: frame reassembly state, loop thread only.
        self._rbuf = bytearray()
        self._receiver: Optional[Callable[[bytes], None]] = None
        self._close_handler: Optional[Callable[[], None]] = None
        self._inbox: List[bytes] = []
        self._closed = False
        self._state_lock = threading.Lock()
        # Serializes delivery to the receiver callback exactly like
        # TcpConnection: the loop's frame dispatch and set_receiver's
        # backlog drain both take it, preserving arrival order.  RLock,
        # because a callback may itself swap the receiver.
        self._deliver_lock = threading.RLock()
        self._local: Address = sock.getsockname()[:2]
        self._peer: Address = sock.getpeername()[:2]
        self._registered = False
        if not reactor.call(self._register):
            # Reactor already stopped: nothing will ever read this.
            self._mark_closed()

    # -- Connection interface ------------------------------------------------

    @property
    def peer(self) -> Address:
        return self._peer

    @property
    def local(self) -> Address:
        return self._local

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, message: bytes) -> None:
        if len(message) > MAX_FRAME:
            raise TransportError(
                f"frame of {len(message)} bytes exceeds {MAX_FRAME}"
            )
        if self._closed:
            raise ConnectionClosed(f"connection to {self._peer} closed")
        data = _HEADER.pack(len(message)) + message
        need_arm = False
        try:
            with self._out_lock:
                if self._closed:
                    raise ConnectionClosed(f"connection to {self._peer} closed")
                if not self._out:
                    # Hot path: the buffer is empty, so ordering allows
                    # writing from this thread without a loop round trip.
                    try:
                        sent = self._sock.send(data)
                    except (BlockingIOError, InterruptedError):
                        sent = 0
                    if sent < len(data):
                        self._out.append(memoryview(data)[sent:])
                        need_arm = not self._write_armed
                        self._write_armed = True
                else:
                    self._out.append(memoryview(data))
                    need_arm = not self._write_armed
                    self._write_armed = True
        except OSError as exc:
            self._mark_closed()
            raise ConnectionClosed(str(exc)) from exc
        if need_arm:
            self._reactor.call(self._arm_write)
        if self._metrics is not None:
            self._frames_out.inc()
            self._bytes_out.inc(len(message))

    def set_receiver(self, callback: Callable[[bytes], None]) -> None:
        with self._deliver_lock:
            with self._state_lock:
                self._receiver = callback
                backlog, self._inbox = self._inbox, []
            for message in backlog:
                callback(message)

    def set_close_handler(self, callback: Callable[[], None]) -> None:
        fire = False
        with self._state_lock:
            self._close_handler = callback
            fire = self._closed
        if fire:
            callback()

    def close(self) -> None:
        self._mark_closed()

    # -- loop-thread handlers -------------------------------------------------

    def _register(self) -> None:
        if self._closed:
            try:
                self._sock.close()
            except OSError:
                pass
            return
        self._reactor.register(self._sock, _READ, self._on_events)
        self._registered = True
        with self._out_lock:
            if self._out:
                self._write_armed = True
                armed = True
            else:
                armed = False
        if armed:
            self._arm_write()

    def _arm_write(self) -> None:
        if self._closed or not self._registered:
            return
        try:
            self._reactor.modify(self._sock, _READ | _WRITE, self._on_events)
        except (KeyError, ValueError, OSError):
            pass  # unregistered by a concurrent close

    def _on_events(self, mask: int) -> None:
        if mask & _WRITE:
            self._on_writable()
        if not self._closed and mask & _READ:
            self._on_readable()

    def _on_writable(self) -> None:
        try:
            with self._out_lock:
                while self._out:
                    chunk = self._out[0]
                    sent = self._sock.send(chunk)
                    if sent < len(chunk):
                        self._out[0] = chunk[sent:]
                        return
                    self._out.popleft()
                self._write_armed = False
                try:
                    self._reactor.modify(self._sock, _READ, self._on_events)
                except (KeyError, ValueError, OSError):
                    pass
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._mark_closed()

    def _on_readable(self) -> None:
        try:
            for _ in range(_RECV_BURST):
                chunk = self._sock.recv(_RECV_CHUNK)
                if not chunk:
                    self._drain_rbuf()
                    self._mark_closed()
                    return
                self._ingest(chunk)
                if self._closed or len(chunk) < _RECV_CHUNK:
                    return
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._mark_closed()

    def _ingest(self, chunk: bytes) -> None:
        """Extract frames from one recv'd chunk, loop thread only.

        When reassembly state is empty and the chunk holds complete
        frames — the common case for request/response traffic — each
        payload is delivered as a zero-copy :class:`memoryview` slice of
        the chunk, with no intermediate buffer append.  Only a partial
        trailing frame (or a pre-existing partial frame) goes through
        the ``_rbuf`` reassembly path.
        """
        if self._rbuf:
            self._rbuf += chunk
            self._drain_rbuf()
            return
        view = memoryview(chunk)
        total = len(chunk)
        offset = 0
        while total - offset >= _HEADER.size:
            (length,) = _HEADER.unpack_from(view, offset)
            if length > MAX_FRAME:
                self._mark_closed()
                return
            end = offset + _HEADER.size + length
            if end > total:
                break
            self._deliver(view[offset + _HEADER.size : end], length)
            offset = end
        if offset < total:
            self._rbuf += view[offset:]

    def _drain_rbuf(self) -> None:
        buf = self._rbuf
        while True:
            if len(buf) < _HEADER.size:
                return
            (length,) = _HEADER.unpack_from(buf)
            if length > MAX_FRAME:
                self._mark_closed()
                return
            end = _HEADER.size + length
            if len(buf) < end:
                return
            payload = bytes(buf[_HEADER.size:end])
            del buf[:end]
            self._deliver(payload, length)

    def _deliver(self, payload: "bytes | memoryview", length: int) -> None:
        if self._metrics is not None:
            self._frames_in.inc()
            self._bytes_in.inc(length)
        with self._deliver_lock:
            with self._state_lock:
                receiver = self._receiver
                if receiver is None:
                    # A view would alias a buffer we are about to reuse;
                    # backlogged frames must own their bytes.
                    self._inbox.append(bytes(payload))
                    return
            receiver(payload)

    # -- teardown ------------------------------------------------------------

    def _mark_closed(self) -> None:
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            handler = self._close_handler
        if not self._reactor.call(self._teardown):
            self._teardown()  # reactor stopped: the loop cannot race us
        if handler:
            handler()

    def _teardown(self) -> None:
        if self._registered:
            self._reactor.unregister(self._sock)
            self._registered = False
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class ReactorEndpoint:
    """Endpoint whose sockets are all multiplexed on one event loop.

    Drop-in for :class:`~repro.net.tcp.TcpEndpoint` — same constructor
    shape, same Endpoint protocol, same framing on the wire — but
    ``listen``/``connect`` cost a registration instead of a thread, so
    thousands of concurrent connections are one loop's bookkeeping.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        metrics: Optional[MetricsRegistry] = None,
        reactor: Optional[Reactor] = None,
        listen_backlog: int = 1024,
    ):
        self.host = host
        self.metrics = metrics
        self._reactor = reactor if reactor is not None else Reactor(metrics=metrics)
        self._owns_reactor = reactor is None
        self._listen_backlog = listen_backlog
        self._servers: List[socket.socket] = []
        self._udp_socks: Dict[int, socket.socket] = {}
        self._udp_send_lock = threading.Lock()
        self._udp_send: Optional[socket.socket] = None
        self._closing = False
        self._conns: "weakref.WeakSet[ReactorConnection]" = weakref.WeakSet()

    @property
    def reactor(self) -> Reactor:
        return self._reactor

    @property
    def address(self) -> Address:
        return (self.host, 0)

    def _track(self, conn: ReactorConnection) -> ReactorConnection:
        self._conns.add(conn)
        return conn

    def listen(self, port: int, handler: ConnectionHandler) -> int:
        """Start a TCP listener; returns the bound port (for port=0)."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, port))
        server.listen(self._listen_backlog)
        server.setblocking(False)
        bound = server.getsockname()[1]
        self._servers.append(server)

        def on_accept(mask: int) -> None:
            for _ in range(_ACCEPT_BURST):
                try:
                    sock, _addr = server.accept()
                except (BlockingIOError, InterruptedError):
                    return
                except OSError:
                    return  # listener closed
                if self._closing:
                    try:
                        sock.close()
                    except OSError:
                        pass
                    return
                if self.metrics is not None:
                    self.metrics.counter("tcp.connections.accepted").inc()
                try:
                    conn = self._track(
                        ReactorConnection(self._reactor, sock, metrics=self.metrics)
                    )
                except OSError:
                    # Peer reset before we could even wrap the socket.
                    try:
                        sock.close()
                    except OSError:
                        pass
                    continue
                # One bad handshake must not stop the listener: count it,
                # drop the connection, keep accepting (same policy as the
                # threaded transport).
                try:
                    handler(conn)
                except Exception:  # noqa: BLE001 - handler bug, not ours
                    log.exception("reactor: connection handler failed")
                    if self.metrics is not None:
                        self.metrics.counter("tcp.accept.handler_errors").inc()
                    conn.close()

        self._reactor.call(
            lambda: self._reactor.register(server, _READ, on_accept)
        )
        return bound

    def connect(self, remote: Address) -> Connection:
        if self._closing:
            raise ConnectionClosed("endpoint is closed")
        try:
            sock = socket.create_connection(remote, timeout=5.0)
        except OSError as exc:
            raise ConnectionClosed(f"cannot connect to {remote}: {exc}") from exc
        if self.metrics is not None:
            self.metrics.counter("tcp.connections.dialed").inc()
        return self._track(
            ReactorConnection(self._reactor, sock, metrics=self.metrics)
        )

    # -- datagrams ----------------------------------------------------------

    def on_datagram(
        self, port: int, handler: Callable[[Address, bytes], None]
    ) -> int:
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, port))
        sock.setblocking(False)
        bound = sock.getsockname()[1]
        self._udp_socks[bound] = sock

        def on_read(mask: int) -> None:
            for _ in range(_ACCEPT_BURST):
                try:
                    payload, addr = sock.recvfrom(65536)
                except (BlockingIOError, InterruptedError):
                    return
                except OSError:
                    return
                try:
                    handler(addr[:2], payload)
                except Exception:  # noqa: BLE001 - handler bug, not ours
                    log.exception("reactor: datagram handler failed")
                    if self.metrics is not None:
                        self.metrics.counter("tcp.accept.handler_errors").inc()

        self._reactor.call(lambda: self._reactor.register(sock, _READ, on_read))
        return bound

    def send_datagram(self, remote: Address, payload: bytes) -> None:
        # UDP sendto on an unconnected socket never blocks meaningfully;
        # doing it from the caller keeps datagrams off the loop thread.
        with self._udp_send_lock:
            if self._closing:
                return  # a closed endpoint must not resurrect the socket
            if self._udp_send is None:
                self._udp_send = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                self._udp_send.sendto(payload, remote)
            except OSError:
                pass  # datagrams are fire-and-forget

    def close(self) -> None:
        self._closing = True

        def shutdown_listeners() -> None:
            for server in self._servers:
                self._reactor.unregister(server)
                try:
                    server.close()
                except OSError:
                    pass
            for sock in self._udp_socks.values():
                self._reactor.unregister(sock)
                try:
                    sock.close()
                except OSError:
                    pass

        if not self._reactor.call(shutdown_listeners):
            shutdown_listeners()
        for conn in list(self._conns):
            conn.close()
        with self._udp_send_lock:
            if self._udp_send is not None:
                try:
                    self._udp_send.close()
                except OSError:
                    pass
                self._udp_send = None
        if self._owns_reactor:
            self._reactor.stop()
