"""Real TCP/UDP transport implementing the same Endpoint interface.

Messages are framed with a 4-byte big-endian length prefix so the
message-preserving :class:`~repro.net.transport.Connection` contract
holds over a byte stream.  Datagrams map onto UDP.  This transport backs
the integration tests and the protocol-engine benchmark (E12), proving
the LDAP/GRIP/GRRP stack speaks a real wire protocol, not just simulated
function calls.
"""

from __future__ import annotations

import logging
import socket
import struct
import threading
import weakref
from typing import Callable, Dict, List, Optional

from ..obs.metrics import MetricsRegistry
from .transport import (
    Address,
    Connection,
    ConnectionClosed,
    ConnectionHandler,
    TransportError,
)

__all__ = ["TcpConnection", "TcpEndpoint", "MAX_FRAME"]

log = logging.getLogger(__name__)

_HEADER = struct.Struct("!I")
MAX_FRAME = 64 * 1024 * 1024  # defensive bound on frame size


def _send_frame(sock: socket.socket, message: bytes) -> None:
    if len(message) > MAX_FRAME:
        raise TransportError(f"frame of {len(message)} bytes exceeds {MAX_FRAME}")
    sock.sendall(_HEADER.pack(len(message)) + message)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


class TcpConnection:
    """A framed TCP connection with a reader thread."""

    def __init__(
        self, sock: socket.socket, metrics: Optional[MetricsRegistry] = None
    ):
        # Request/response exchanges are many small frames; Nagle +
        # delayed ACK would add ~40ms to every multi-message response.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        # Serializes delivery to the receiver callback: the reader thread
        # and set_receiver's backlog drain both take it, so messages are
        # handed over strictly in arrival order (see set_receiver).
        # RLock, because a callback may itself swap the receiver.
        self._deliver_lock = threading.RLock()
        self._metrics = metrics
        if metrics is not None:
            self._frames_in = metrics.counter("tcp.frames.received")
            self._bytes_in = metrics.counter("tcp.bytes.received")
            self._frames_out = metrics.counter("tcp.frames.sent")
            self._bytes_out = metrics.counter("tcp.bytes.sent")
        self._receiver: Optional[Callable[[bytes], None]] = None
        self._close_handler: Optional[Callable[[], None]] = None
        self._inbox: List[bytes] = []
        self._closed = False
        self._local: Address = sock.getsockname()[:2]
        self._peer: Address = sock.getpeername()[:2]
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    @property
    def peer(self) -> Address:
        return self._peer

    @property
    def local(self) -> Address:
        return self._local

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, message: bytes) -> None:
        if self._closed:
            raise ConnectionClosed(f"connection to {self._peer} closed")
        try:
            with self._send_lock:
                _send_frame(self._sock, message)
        except OSError as exc:
            self._mark_closed()
            raise ConnectionClosed(str(exc)) from exc
        if self._metrics is not None:
            self._frames_out.inc()
            self._bytes_out.inc(len(message))

    def set_receiver(self, callback: Callable[[bytes], None]) -> None:
        # The backlog drain must be serialized against the reader thread:
        # draining outside the lock would let the reader deliver a newer
        # frame directly to the callback while older backlog frames are
        # still in flight here, violating the in-order message contract.
        # _deliver_lock (not _state_lock) carries the callback calls so a
        # receiver that closes the connection cannot deadlock on state.
        with self._deliver_lock:
            with self._state_lock:
                self._receiver = callback
                backlog, self._inbox = self._inbox, []
            for message in backlog:
                callback(message)

    def set_close_handler(self, callback: Callable[[], None]) -> None:
        fire = False
        with self._state_lock:
            self._close_handler = callback
            fire = self._closed
        if fire:
            callback()

    def close(self) -> None:
        self._mark_closed()

    def _mark_closed(self) -> None:
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            handler = self._close_handler
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        if handler:
            handler()

    def _read_loop(self) -> None:
        try:
            while True:
                header = _recv_exact(self._sock, _HEADER.size)
                if header is None:
                    break
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME:
                    break
                payload = _recv_exact(self._sock, length)
                if payload is None:
                    break
                if self._metrics is not None:
                    self._frames_in.inc()
                    self._bytes_in.inc(len(payload))
                with self._deliver_lock:
                    with self._state_lock:
                        receiver = self._receiver
                        if receiver is None:
                            self._inbox.append(payload)
                            continue
                    receiver(payload)
        except OSError:
            pass
        finally:
            self._mark_closed()


class TcpEndpoint:
    """Endpoint over the loopback (or any) interface."""

    def __init__(
        self, host: str = "127.0.0.1", metrics: Optional[MetricsRegistry] = None
    ):
        self.host = host
        self.metrics = metrics
        self._servers: List[socket.socket] = []
        self._udp_socks: Dict[int, socket.socket] = {}
        self._udp_send_lock = threading.Lock()
        self._udp_send: Optional[socket.socket] = None
        self._closing = False
        self._bound_ports: Dict[int, int] = {}
        # Every connection this endpoint accepted or dialed, so close()
        # can propagate: each connection's close handler fires, letting
        # servers cancel in-flight work and clients fail pending ops
        # instead of leaking reader threads past endpoint shutdown.
        # Weak, so a connection both sides forgot can be collected.
        self._conns: "weakref.WeakSet[TcpConnection]" = weakref.WeakSet()

    def _track(self, conn: "TcpConnection") -> "TcpConnection":
        self._conns.add(conn)
        return conn

    @property
    def address(self) -> Address:
        return (self.host, 0)

    def listen(self, port: int, handler: ConnectionHandler) -> int:
        """Start a TCP listener; returns the bound port (for port=0)."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, port))
        server.listen(64)
        bound = server.getsockname()[1]
        self._servers.append(server)

        def accept_loop() -> None:
            while not self._closing:
                try:
                    sock, _addr = server.accept()
                except OSError:
                    break
                if self.metrics is not None:
                    self.metrics.counter("tcp.connections.accepted").inc()
                try:
                    conn = self._track(TcpConnection(sock, metrics=self.metrics))
                except OSError:
                    # Peer reset before we could even wrap the socket.
                    try:
                        sock.close()
                    except OSError:
                        pass
                    continue
                # One bad handshake must not kill the accept loop for
                # every future client: count it, drop the connection,
                # keep listening.
                try:
                    handler(conn)
                except Exception:  # noqa: BLE001 - handler bug, not ours
                    log.exception("tcp: connection handler failed")
                    if self.metrics is not None:
                        self.metrics.counter("tcp.accept.handler_errors").inc()
                    conn.close()

        threading.Thread(target=accept_loop, daemon=True).start()
        return bound

    def connect(self, remote: Address) -> Connection:
        try:
            sock = socket.create_connection(remote, timeout=5.0)
            sock.settimeout(None)
        except OSError as exc:
            raise ConnectionClosed(f"cannot connect to {remote}: {exc}") from exc
        if self.metrics is not None:
            self.metrics.counter("tcp.connections.dialed").inc()
        return self._track(TcpConnection(sock, metrics=self.metrics))

    # -- datagrams ----------------------------------------------------------

    def on_datagram(
        self, port: int, handler: Callable[[Address, bytes], None]
    ) -> int:
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, port))
        bound = sock.getsockname()[1]
        self._udp_socks[bound] = sock

        def read_loop() -> None:
            while not self._closing:
                try:
                    payload, addr = sock.recvfrom(65536)
                except OSError:
                    break
                handler(addr[:2], payload)

        threading.Thread(target=read_loop, daemon=True).start()
        return bound

    def send_datagram(self, remote: Address, payload: bytes) -> None:
        # The _closing check lives under the same lock that guards the
        # lazy socket creation: a sender racing close() can neither be
        # handed a just-closed socket nor resurrect a new one on a dead
        # endpoint.
        with self._udp_send_lock:
            if self._closing:
                return
            if self._udp_send is None:
                self._udp_send = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                self._udp_send.sendto(payload, remote)
            except OSError:
                pass  # datagrams are fire-and-forget

    def close(self) -> None:
        self._closing = True
        for server in self._servers:
            try:
                server.close()
            except OSError:
                pass
        for conn in list(self._conns):
            conn.close()
        for sock in self._udp_socks.values():
            try:
                sock.close()
            except OSError:
                pass
        with self._udp_send_lock:
            if self._udp_send is not None:
                try:
                    self._udp_send.close()
                except OSError:
                    pass
                self._udp_send = None
