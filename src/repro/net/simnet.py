"""Simulated network: nodes, connections, datagrams, partitions.

Implements the :class:`~repro.net.transport.Endpoint` interface on top of
the discrete-event engine.  Supports exactly the failure phenomena the
paper reasons about:

* per-path latency/jitter/loss (:class:`~repro.net.links.LinkModel`);
* network partitions — Figure 1's VO-B "should operate as two disjoint
  fragments" and Figure 4's divergent directories;
* node crashes (a crashed node accepts and delivers nothing);
* scoped multicast, used by the SLP/SDS-style discovery baseline to model
  "multicast does not cross organizational boundaries" (§11.2).

Connections are reliable, ordered and message-preserving while the path
is usable: loss shows up as retransmission delay, not as message drops.
When the path dies (partition, link down, crash) in-flight and future
sends fail and both halves observe a close — compactly modelling a TCP
reset.  Datagrams are unreliable: loss silently drops them.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Set, Tuple

from .links import LAN, LinkModel
from .sim import Simulator
from .transport import (
    Address,
    Connection,
    ConnectionClosed,
    ConnectionHandler,
    TransportError,
)

__all__ = ["SimNetwork", "SimNode", "SimConnection"]

_EPHEMERAL_START = 49152


class SimConnection:
    """One half of a simulated reliable connection."""

    def __init__(
        self,
        net: "SimNetwork",
        local: Address,
        peer: Address,
    ):
        self._net = net
        self._local = local
        self._peer_addr = peer
        self._receiver: Optional[Callable[[bytes], None]] = None
        self._close_handler: Optional[Callable[[], None]] = None
        self._inbox: List[bytes] = []
        self._closed = False
        self._earliest_delivery = 0.0
        self.peer_half: Optional["SimConnection"] = None
        self.bytes_sent = 0
        self.messages_sent = 0

    # -- Connection interface ---------------------------------------------

    @property
    def peer(self) -> Address:
        return self._peer_addr

    @property
    def local(self) -> Address:
        return self._local

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, message: bytes) -> None:
        if self._closed:
            raise ConnectionClosed(f"connection {self._local}->{self._peer_addr} closed")
        net, sim = self._net, self._net.sim
        if not net.path_usable(self._local[0], self._peer_addr[0]):
            # Path died under us: model a TCP reset for both ends.
            self._fail_pair()
            raise ConnectionClosed(
                f"path {self._local[0]}->{self._peer_addr[0]} unusable"
            )
        link = net.link_between(self._local[0], self._peer_addr[0])
        delay = link.delay(sim.rng, len(message))
        # Reliable transport: loss costs retransmissions (extra delay),
        # never reordering or drops.
        while link.loss and sim.rng.random() < link.loss:
            delay += link.delay(sim.rng, len(message))
        when = max(sim.now() + delay, self._earliest_delivery)
        self._earliest_delivery = when + 1e-9
        peer = self.peer_half
        self.bytes_sent += len(message)
        self.messages_sent += 1
        net.stats.messages += 1
        net.stats.bytes += len(message)

        def deliver() -> None:
            if peer is None or peer._closed:
                return
            if not net.path_usable(self._local[0], self._peer_addr[0]):
                self._fail_pair()
                return
            peer._dispatch(message)

        sim.call_at(when, deliver)

    def set_receiver(self, callback: Callable[[bytes], None]) -> None:
        self._receiver = callback
        while self._inbox:
            callback(self._inbox.pop(0))

    def set_close_handler(self, callback: Callable[[], None]) -> None:
        self._close_handler = callback
        if self._closed:
            callback()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        peer = self.peer_half
        if peer is not None and not peer._closed:
            # Peer observes the close after one propagation delay.
            link = self._net.link_between(self._local[0], self._peer_addr[0])
            self._net.sim.call_later(link.latency, peer._on_peer_close)
        if self._close_handler:
            self._close_handler()

    # -- internals -----------------------------------------------------------

    def _dispatch(self, message: bytes) -> None:
        if self._closed:
            return
        if self._receiver is not None:
            self._receiver(message)
        else:
            self._inbox.append(message)

    def _on_peer_close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._close_handler:
            self._close_handler()

    def _fail_pair(self) -> None:
        for half in (self, self.peer_half):
            if half is not None and not half._closed:
                half._closed = True
                if half._close_handler:
                    half._close_handler()


class SimNode:
    """A simulated host attached to the network."""

    def __init__(self, net: "SimNetwork", host: str, site: Optional[str] = None):
        self._net = net
        self.host = host
        self.site = site or host
        self.alive = True
        self._listeners: Dict[int, ConnectionHandler] = {}
        self._datagram_handlers: Dict[int, Callable[[Address, bytes], None]] = {}
        self._multicast: Dict[Tuple[str, int], Callable[[Address, bytes], None]] = {}
        self._ephemeral = itertools.count(_EPHEMERAL_START)

    @property
    def address(self) -> Address:
        return (self.host, 0)

    def crash(self) -> None:
        """The node stops accepting and delivering everything."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    # -- connections -----------------------------------------------------------

    def listen(self, port: int, handler: ConnectionHandler) -> None:
        if port in self._listeners:
            raise TransportError(f"{self.host}:{port} already listening")
        self._listeners[port] = handler

    def stop_listening(self, port: int) -> None:
        self._listeners.pop(port, None)

    def connect(self, remote: Address) -> Connection:
        if not self.alive:
            raise TransportError(f"{self.host} is down")
        rhost, rport = remote
        target = self._net.node(rhost)
        if (
            not target.alive
            or not self._net.path_usable(self.host, rhost)
            or rport not in target._listeners
        ):
            raise ConnectionClosed(f"cannot connect {self.host} -> {rhost}:{rport}")
        local = (self.host, next(self._ephemeral))
        a = SimConnection(self._net, local, remote)
        b = SimConnection(self._net, remote, local)
        a.peer_half, b.peer_half = b, a
        target._listeners[rport](b)
        return a

    # -- datagrams -----------------------------------------------------------

    def on_datagram(self, port: int, handler: Callable[[Address, bytes], None]) -> None:
        self._datagram_handlers[port] = handler

    def send_datagram(self, remote: Address, payload: bytes) -> None:
        if not self.alive:
            return
        net, sim = self._net, self._net.sim
        rhost, rport = remote
        net.stats.datagrams += 1
        if not net.path_usable(self.host, rhost):
            return
        link = net.link_between(self.host, rhost)
        if not link.delivers(sim.rng):
            net.stats.datagrams_lost += 1
            return
        src = (self.host, 0)

        def deliver() -> None:
            target = net.node(rhost)
            if not target.alive or not net.path_usable(self.host, rhost):
                return
            handler = target._datagram_handlers.get(rport)
            if handler is not None:
                handler(src, payload)

        sim.call_later(link.delay(sim.rng, len(payload)), deliver)

    # -- multicast -------------------------------------------------------------

    def join_multicast(
        self, group: str, port: int, handler: Callable[[Address, bytes], None]
    ) -> None:
        self._multicast[(group, port)] = handler
        self._net._multicast_members.setdefault((group, port), set()).add(self.host)

    def leave_multicast(self, group: str, port: int) -> None:
        self._multicast.pop((group, port), None)
        members = self._net._multicast_members.get((group, port))
        if members:
            members.discard(self.host)

    def send_multicast(
        self, group: str, port: int, payload: bytes, scope: str = "site"
    ) -> int:
        """Send to all reachable members; returns the number targeted.

        ``scope='site'`` models link-local/administratively-scoped
        multicast: only members at the same site receive it (§11.2's
        reason multicast discovery fails across VOs).
        """
        if not self.alive:
            return 0
        net = self._net
        targeted = 0
        for member in net._multicast_members.get((group, port), ()):
            if member == self.host:
                continue
            other = net.node(member)
            if scope == "site" and other.site != self.site:
                continue
            targeted += 1
            self.send_datagram_multi(member, group, port, payload)
        return targeted

    def send_datagram_multi(
        self, rhost: str, group: str, port: int, payload: bytes
    ) -> None:
        net, sim = self._net, self._net.sim
        if not net.path_usable(self.host, rhost):
            return
        link = net.link_between(self.host, rhost)
        net.stats.datagrams += 1
        if not link.delivers(sim.rng):
            net.stats.datagrams_lost += 1
            return
        src = (self.host, 0)

        def deliver() -> None:
            target = net.node(rhost)
            if not target.alive or not net.path_usable(self.host, rhost):
                return
            handler = target._multicast.get((group, port))
            if handler is not None:
                handler(src, payload)

        sim.call_later(link.delay(sim.rng, len(payload)), deliver)


class _Stats:
    def __init__(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.datagrams = 0
        self.datagrams_lost = 0


class SimNetwork:
    """The set of nodes, links and the current partition map."""

    def __init__(self, sim: Simulator, default_link: Optional[LinkModel] = None):
        self.sim = sim
        self.default_link = default_link or LAN.copy()
        self._nodes: Dict[str, SimNode] = {}
        self._links: Dict[Tuple[str, str], LinkModel] = {}
        self._groups: Optional[Dict[str, int]] = None
        self._multicast_members: Dict[Tuple[str, int], Set[str]] = {}
        self.stats = _Stats()

    # -- topology --------------------------------------------------------------

    def add_node(self, host: str, site: Optional[str] = None) -> SimNode:
        if host in self._nodes:
            raise TransportError(f"duplicate host {host}")
        node = SimNode(self, host, site)
        self._nodes[host] = node
        return node

    def node(self, host: str) -> SimNode:
        try:
            return self._nodes[host]
        except KeyError:
            raise TransportError(f"unknown host {host}") from None

    def hosts(self) -> List[str]:
        return list(self._nodes)

    def set_link(self, a: str, b: str, link: LinkModel, symmetric: bool = True) -> None:
        self._links[(a, b)] = link
        if symmetric:
            self._links[(b, a)] = link

    def link_between(self, a: str, b: str) -> LinkModel:
        if a == b:
            return LinkModel(latency=1e-6)
        return self._links.get((a, b), self.default_link)

    # -- partitions ------------------------------------------------------------

    def partition(self, *groups: List[str]) -> None:
        """Split the network: hosts in different groups cannot talk.

        Hosts not named in any group form one additional implicit group
        together.
        """
        mapping: Dict[str, int] = {}
        for idx, group in enumerate(groups):
            for host in group:
                if host in mapping:
                    raise TransportError(f"{host} appears in two partition groups")
                mapping[host] = idx
        implicit = len(groups)
        for host in self._nodes:
            mapping.setdefault(host, implicit)
        self._groups = mapping

    def heal(self) -> None:
        """Remove the partition: full connectivity restored."""
        self._groups = None

    def partitioned(self) -> bool:
        return self._groups is not None

    def path_usable(self, a: str, b: str) -> bool:
        """Can a message flow from *a* to *b* right now?"""
        na, nb = self._nodes.get(a), self._nodes.get(b)
        if na is None or nb is None or not na.alive or not nb.alive:
            return False
        if a == b:
            return True
        if not self.link_between(a, b).up:
            return False
        if self._groups is not None and self._groups[a] != self._groups[b]:
            return False
        return True
