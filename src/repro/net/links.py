"""Link models: latency, jitter, loss, and administrative state.

Each simulated message delivery samples one :class:`LinkModel`.  Loss is
Bernoulli per message; latency is base + uniform jitter; a link that is
administratively ``down`` (or crosses a partition boundary — see
:mod:`repro.net.simnet`) delivers nothing.  These are the knobs the
Figure 4 and §4.3 experiments sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["LinkModel", "LOCAL", "LAN", "WAN"]


@dataclass
class LinkModel:
    """Per-message delivery characteristics of a network path."""

    latency: float = 0.001
    jitter: float = 0.0
    loss: float = 0.0
    bandwidth: Optional[float] = None  # bytes/second; None = infinite
    up: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss {self.loss} not in [0, 1]")
        if self.latency < 0 or self.jitter < 0:
            raise ValueError("latency/jitter must be non-negative")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def delivers(self, rng: random.Random) -> bool:
        """Sample whether one message survives the link."""
        if not self.up:
            return False
        return self.loss == 0.0 or rng.random() >= self.loss

    def delay(self, rng: random.Random, nbytes: int = 0) -> float:
        """Sample one-way delay for a message of *nbytes*."""
        d = self.latency
        if self.jitter:
            d += rng.random() * self.jitter
        if self.bandwidth is not None and nbytes:
            d += nbytes / self.bandwidth
        return d

    def copy(self) -> "LinkModel":
        return LinkModel(self.latency, self.jitter, self.loss, self.bandwidth, self.up)


# Convenience presets used throughout the testbed.
LOCAL = LinkModel(latency=0.0001, jitter=0.0)
LAN = LinkModel(latency=0.0005, jitter=0.0002)
WAN = LinkModel(latency=0.040, jitter=0.010, loss=0.01)
