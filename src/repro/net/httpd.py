"""A minimal HTTP/1.0 responder multiplexed on a :class:`Reactor`.

The Prometheus exposition endpoint (:mod:`repro.obs.expo`) needs plain
HTTP, but the reactor's stream connections speak the 4-byte
length-framed LDAP wire format — so this module registers its own raw
sockets on the same event loop: accept, buffer until the header
terminator, dispatch one GET, write the response, close.  One loop
thread therefore carries both the LDAP service traffic and its metrics
scrapes, which is the point: no extra thread pool appears just because
the server is being watched.

Deliberately tiny: GET only, one request per connection
(``Connection: close``), bounded request size, no keep-alive, no TLS.
Handlers run on the loop thread and must be fast — rendering a metrics
page qualifies; anything slower does not belong here.
"""

from __future__ import annotations

import socket
from selectors import EVENT_READ as _READ, EVENT_WRITE as _WRITE
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # import at runtime would close an obs<->net cycle
    from .reactor import Reactor

__all__ = ["HttpListener"]

_MAX_REQUEST = 16 * 1024

# path -> (status, content_type, body)
HttpHandler = Callable[[str], Tuple[int, str, bytes]]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


def _response(status: int, content_type: str, body: bytes) -> bytes:
    reason = _REASONS.get(status, "OK")
    head = (
        f"HTTP/1.0 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


class _HttpConn:
    """Per-connection state machine, loop thread only."""

    __slots__ = ("listener", "sock", "rbuf", "wbuf", "responded")

    def __init__(self, listener: "HttpListener", sock: socket.socket):
        self.listener = listener
        self.sock = sock
        self.rbuf = bytearray()
        self.wbuf = b""
        self.responded = False

    def on_events(self, mask: int) -> None:
        if mask & _WRITE:
            self._flush()
        if mask & _READ and not self.responded:
            self._read()

    def _read(self) -> None:
        try:
            chunk = self.sock.recv(8192)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self.close()
            return
        if not chunk:
            self.close()
            return
        self.rbuf += chunk
        if len(self.rbuf) > _MAX_REQUEST:
            self._respond(_response(400, "text/plain", b"request too large\n"))
            return
        if b"\r\n\r\n" in self.rbuf or b"\n\n" in self.rbuf:
            self._dispatch()

    def _dispatch(self) -> None:
        line = bytes(self.rbuf.split(b"\r\n", 1)[0].split(b"\n", 1)[0])
        parts = line.split()
        if len(parts) < 2:
            self._respond(_response(400, "text/plain", b"bad request line\n"))
            return
        method, target = parts[0].decode("latin-1"), parts[1].decode("latin-1")
        if method != "GET":
            self._respond(
                _response(405, "text/plain", b"only GET is served here\n")
            )
            return
        path = target.split("?", 1)[0]
        try:
            status, content_type, body = self.listener.handler(path)
        except Exception:  # noqa: BLE001 - a handler bug is a 500, not a dead loop
            status, content_type, body = (
                500,
                "text/plain",
                b"internal error\n",
            )
        self._respond(_response(status, content_type, body))

    def _respond(self, payload: bytes) -> None:
        self.responded = True
        self.wbuf = payload
        self._flush()

    def _flush(self) -> None:
        if not self.wbuf:
            return
        try:
            sent = self.sock.send(self.wbuf)
        except (BlockingIOError, InterruptedError):
            sent = 0
        except OSError:
            self.close()
            return
        self.wbuf = self.wbuf[sent:]
        reactor = self.listener.reactor
        if self.wbuf:
            try:
                reactor.modify(self.sock, _READ | _WRITE, self.on_events)
            except (KeyError, ValueError, OSError):
                pass
        elif self.responded:
            self.close()

    def close(self) -> None:
        self.listener._forget(self)
        self.listener.reactor.unregister(self.sock)
        try:
            self.sock.close()
        except OSError:
            pass


class HttpListener:
    """One HTTP listening socket plus its live connections on a reactor."""

    def __init__(
        self,
        reactor: "Reactor",
        handler: HttpHandler,
        host: str = "127.0.0.1",
    ):
        self.reactor = reactor
        self.handler = handler
        self.host = host
        self._server: Optional[socket.socket] = None
        self._conns: Dict[int, _HttpConn] = {}
        self._closed = False

    def listen(self, port: int = 0) -> int:
        """Bind and start accepting; returns the bound port."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, port))
        server.listen(64)
        server.setblocking(False)
        self._server = server
        bound = server.getsockname()[1]
        if not self.reactor.call(
            lambda: self.reactor.register(server, _READ, self._on_accept)
        ):
            server.close()
            raise RuntimeError("reactor is stopped")
        return bound

    def _on_accept(self, mask: int) -> None:
        for _ in range(16):
            try:
                sock, _addr = self._server.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed
            if self._closed:
                try:
                    sock.close()
                except OSError:
                    pass
                return
            sock.setblocking(False)
            conn = _HttpConn(self, sock)
            self._conns[id(conn)] = conn
            self.reactor.register(sock, _READ, conn.on_events)

    def _forget(self, conn: _HttpConn) -> None:
        self._conns.pop(id(conn), None)

    def close(self) -> None:
        self._closed = True

        def teardown() -> None:
            if self._server is not None:
                self.reactor.unregister(self._server)
                try:
                    self._server.close()
                except OSError:
                    pass
            for conn in list(self._conns.values()):
                conn.close()

        if not self.reactor.call(teardown):
            teardown()
