"""Transport interfaces shared by the simulator and real TCP.

Two delivery styles, mirroring the paper's protocol split:

* :class:`Connection` — reliable, ordered, message-preserving channels
  carrying GRIP (LDAP) request/response exchanges;
* datagrams — unreliable one-shot messages, the transport GRRP "is
  designed to run over" (§4.3).  Nodes expose ``send_datagram`` and a
  registered datagram handler.

Servers implement :class:`ConnectionHandler`; the same handler object
serves simulated and TCP endpoints.
"""

from __future__ import annotations

from typing import Callable, Protocol, Tuple

__all__ = [
    "Address",
    "TransportError",
    "ConnectionClosed",
    "Connection",
    "ConnectionHandler",
    "Endpoint",
]

Address = Tuple[str, int]


class TransportError(Exception):
    """Base class for transport failures."""


class ConnectionClosed(TransportError):
    """The peer (or the network) closed the connection."""


class Connection(Protocol):
    """A bidirectional, ordered, message-preserving channel."""

    @property
    def peer(self) -> Address: ...

    @property
    def local(self) -> Address: ...

    def send(self, message: bytes) -> None:
        """Queue one message for delivery to the peer."""

    def set_receiver(self, callback: Callable[[bytes], None]) -> None:
        """Install the inbound-message callback.

        The payload is bytes-like: transports may hand over a zero-copy
        :class:`memoryview` of the receive buffer instead of ``bytes``.
        Callbacks that retain the payload past their own return must
        copy it (``bytes(payload)``); decoding it in place is safe.
        """

    def set_close_handler(self, callback: Callable[[], None]) -> None:
        """Install a callback fired once when the connection dies."""

    def close(self) -> None: ...

    @property
    def closed(self) -> bool: ...


class ConnectionHandler(Protocol):
    """Server-side acceptor: invoked once per inbound connection."""

    def __call__(self, conn: Connection) -> None: ...


class Endpoint(Protocol):
    """A network attachment point (simulated node or TCP stack wrapper).

    Provides client connects, server listeners, and unreliable datagrams.
    """

    @property
    def address(self) -> Address: ...

    def connect(self, remote: Address) -> Connection: ...

    def listen(self, port: int, handler: ConnectionHandler) -> None: ...

    def send_datagram(self, remote: Address, payload: bytes) -> None: ...

    def on_datagram(
        self, port: int, handler: Callable[[Address, bytes], None]
    ) -> None: ...
