"""Deterministic discrete-event simulation engine.

A classic event-heap simulator: callbacks scheduled at future virtual
times, executed in time order (FIFO among equal times).  All randomness
flows from one seeded :class:`random.Random`, so every experiment in the
benchmark suite replays identically given the same seed — the property
that makes the Figure 1/4 partition and loss experiments reproducible.

The engine doubles as a :class:`~repro.net.clock.Clock`, so protocol
components are oblivious to whether they run here or on the wall clock.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, List, Optional, Tuple

from .clock import Clock, TimerHandle

__all__ = ["SimulationError", "Simulator"]


class SimulationError(RuntimeError):
    """Raised on misuse of the engine (e.g. scheduling in the past)."""


class Simulator(Clock):
    """Discrete-event engine and simulated clock."""

    def __init__(self, seed: int = 0):
        self._time = 0.0
        self._seq = itertools.count()
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._cancelled: set[int] = set()
        self.rng = random.Random(seed)
        self.events_run = 0

    # -- Clock interface -----------------------------------------------------

    def now(self) -> float:
        return self._time

    def call_later(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        seq = next(self._seq)
        heapq.heappush(self._heap, (self._time + delay, seq, fn))
        return TimerHandle(lambda: self._cancelled.add(seq))

    def call_at(self, when: float, fn: Callable[[], None]) -> TimerHandle:
        return self.call_later(when - self._time, fn)

    # -- execution -------------------------------------------------------------

    def step(self) -> bool:
        """Run the next event; returns False when the heap is empty."""
        while self._heap:
            when, seq, fn = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self._time = when
            fn()
            self.events_run += 1
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain."""
        for _ in range(max_events):
            if not self.step():
                return
        raise SimulationError(f"exceeded {max_events} events; runaway simulation?")

    def run_until(self, when: float, max_events: int = 10_000_000) -> None:
        """Run all events scheduled strictly before or at *when*, then
        advance the clock to *when*."""
        if when < self._time:
            raise SimulationError(f"cannot run backwards to {when}")
        for _ in range(max_events):
            if not self._heap:
                break
            next_when = self._next_pending_time()
            if next_when is None or next_when > when:
                break
            self.step()
        else:
            raise SimulationError(f"exceeded {max_events} events before t={when}")
        self._time = when

    def run_for(self, duration: float) -> None:
        self.run_until(self._time + duration)

    def _next_pending_time(self) -> Optional[float]:
        while self._heap:
            when, seq, _ = self._heap[0]
            if seq in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(seq)
                continue
            return when
        return None

    def pending(self) -> int:
        return sum(1 for _, seq, _ in self._heap if seq not in self._cancelled)
