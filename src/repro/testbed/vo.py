"""Testbed: deploy GRIS/GIIS services on the simulated network.

Builds the virtual-organization scenes of Figures 1, 2, 4 and 5: hosts
running GRIS information providers, GIIS aggregate directories
(optionally replicated), GRRP registration streams over either
transport, and clients anywhere on the network.  Everything is driven
by one seeded :class:`~repro.net.sim.Simulator`, so experiments replay
deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..giis.core import GiisBackend
from ..giis.hierarchy import (
    GRRP_DATAGRAM_PORT,
    DatagramGrrpSender,
    LdapGrrpSender,
    make_registrant,
)
from ..grip.registration import Registrant
from ..gris.core import GrisBackend
from ..gris.host import (
    DynamicHostProvider,
    HostConfig,
    SimulatedLoadSensor,
    StaticHostProvider,
)
from ..gris.provider import InformationProvider
from ..gris.storage import QueueProvider, StorageProvider
from ..ldap.backend import Backend
from ..ldap.client import LdapClient
from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.server import LdapServer
from ..ldap.url import LdapUrl
from ..net.links import LinkModel
from ..net.sim import Simulator
from ..net.simnet import SimNetwork, SimNode
from ..security.acl import AccessPolicy
from ..security.sasl import Authenticator

__all__ = ["LDAP_PORT", "Deployment", "GridTestbed"]

LDAP_PORT = 2135  # the historical MDS port


@dataclass
class Deployment:
    """One service (GRIS or GIIS) running on a testbed host."""

    host: str
    node: SimNode
    backend: Backend
    server: LdapServer
    url: LdapUrl
    suffix: DN
    registrants: List[Registrant] = field(default_factory=list)

    def stop_registrations(self) -> None:
        for registrant in self.registrants:
            registrant.stop()


class GridTestbed:
    """A simulated grid: network + services + clients."""

    def __init__(
        self,
        seed: int = 0,
        default_link: Optional[LinkModel] = None,
    ):
        self.sim = Simulator(seed=seed)
        self.net = SimNetwork(self.sim, default_link=default_link)
        self.rng = random.Random(seed ^ 0x5EED)
        self.deployments: Dict[str, Deployment] = {}

    # -- nodes -----------------------------------------------------------------

    def host(self, name: str, site: Optional[str] = None) -> SimNode:
        try:
            return self.net.node(name)
        except Exception:
            return self.net.add_node(name, site=site)

    def connector_from(self, host: str) -> Callable[[LdapUrl], object]:
        """A Connector dialing service URLs from *host*."""
        node = self.host(host)
        return lambda url: node.connect((url.host, url.port))

    # -- GRIS ------------------------------------------------------------------

    def add_gris(
        self,
        host: str,
        suffix: DN | str,
        providers: Sequence[InformationProvider] = (),
        site: Optional[str] = None,
        port: int = LDAP_PORT,
        policy: Optional[AccessPolicy] = None,
        authenticator: Optional[Authenticator] = None,
        suffix_entry: Optional[Entry] = None,
        tracer=None,
        index_attrs=None,
    ) -> Deployment:
        node = self.host(host, site)
        backend = GrisBackend(suffix, clock=self.sim, index_attrs=index_attrs)
        for provider in providers:
            backend.add_provider(provider)
        if suffix_entry is not None:
            backend.set_suffix_entry(suffix_entry)
        server = LdapServer(
            backend,
            clock=self.sim,
            policy=policy,
            authenticator=authenticator,
            name=f"gris-{host}",
            tracer=tracer,
        )
        node.listen(port, server.handle_connection)
        deployment = Deployment(
            host=host,
            node=node,
            backend=backend,
            server=server,
            url=LdapUrl(host, port),
            suffix=DN.of(suffix),
        )
        self.deployments[f"{host}:{port}"] = deployment
        return deployment

    def standard_gris(
        self,
        host: str,
        suffix: DN | str,
        cpu_count: int = 4,
        load_mean: float = 1.0,
        site: Optional[str] = None,
        load_ttl: float = 15.0,
        **kwargs,
    ) -> Deployment:
        """A GRIS with the standard MDS provider set for one machine."""
        sensor = SimulatedLoadSensor(
            random.Random(self.rng.getrandbits(32)), mean=load_mean
        )
        # The GRIS suffix is the host's own entry (the per-machine MDS
        # deployment), so every provider is rooted at base "".
        providers = [
            StaticHostProvider(HostConfig(host, cpu_count=cpu_count), base=""),
            DynamicHostProvider(host, sensor, cache_ttl=load_ttl, base=""),
            StorageProvider(
                host,
                "scratch",
                f"/disks/{host}",
                lambda: (10 * 1024**3, 20 * 1024**3),
                base="",
            ),
            QueueProvider(host, base=""),
        ]
        deployment = self.add_gris(host, suffix, providers, site=site, **kwargs)
        deployment.sensor = sensor  # type: ignore[attr-defined]
        return deployment

    # -- GIIS ------------------------------------------------------------------

    def add_giis(
        self,
        host: str,
        suffix: DN | str,
        site: Optional[str] = None,
        port: int = LDAP_PORT,
        mode: str = "chain",
        vo_name: str = "",
        registration_grace: float = 0.0,
        purge_interval: Optional[float] = 10.0,
        child_timeout: float = 5.0,
        cache_ttl: float = 0.0,
        accept=None,
        policy: Optional[AccessPolicy] = None,
        authenticator: Optional[Authenticator] = None,
        datagram_grrp: bool = True,
        credential=None,
        tracer=None,
        **backend_kwargs,
    ) -> Deployment:
        node = self.host(host, site)
        url = LdapUrl(host, port, DN.of(suffix))
        backend = GiisBackend(
            suffix=suffix,
            clock=self.sim,
            connector=self.connector_from(host),
            url=url,
            mode=mode,
            vo_name=vo_name or host,
            registration_grace=registration_grace,
            purge_interval=purge_interval,
            child_timeout=child_timeout,
            cache_ttl=cache_ttl,
            accept=accept,
            credential=credential,
            tracer=tracer,
            **backend_kwargs,
        )
        if purge_interval is not None:
            backend.registry.start()
        server = LdapServer(
            backend,
            clock=self.sim,
            policy=policy,
            authenticator=authenticator,
            name=f"giis-{host}",
            tracer=tracer,
        )
        node.listen(port, server.handle_connection)
        if datagram_grrp:
            node.on_datagram(GRRP_DATAGRAM_PORT, backend.handle_grrp_datagram)
        deployment = Deployment(
            host=host,
            node=node,
            backend=backend,
            server=server,
            url=url,
            suffix=DN.of(suffix),
        )
        self.deployments[f"{host}:{port}"] = deployment
        return deployment

    # -- registration ------------------------------------------------------------

    def register(
        self,
        child: Deployment,
        parent: Deployment,
        interval: float = 30.0,
        ttl: float = 90.0,
        transport: str = "ldap",
        name: str = "",
        vo: str = "",
        jitter: float = 0.0,
    ) -> Registrant:
        """Start a GRRP refresh stream child -> parent directory."""
        if transport == "ldap":
            send = LdapGrrpSender(self.connector_from(child.host))
            directory = str(parent.url)
        elif transport == "datagram":
            send = DatagramGrrpSender(child.node)
            directory = parent.host
        else:
            raise ValueError(f"unknown GRRP transport {transport!r}")
        registrant = make_registrant(
            self.sim,
            child.url,
            child.suffix,
            send,
            interval=interval,
            ttl=ttl,
            name=name or child.host,
            vo=vo,
            jitter=jitter,
            rng=random.Random(self.rng.getrandbits(32)),
        )
        registrant.register_with(directory)
        child.registrants.append(registrant)
        return registrant

    # -- clients ----------------------------------------------------------------

    def client(self, from_host: str, service: Deployment | LdapUrl) -> LdapClient:
        """A blocking-capable LDAP client driven by the simulator."""
        url = service.url if isinstance(service, Deployment) else service
        node = self.host(from_host)
        conn = node.connect((url.host, url.port))
        return LdapClient(conn, driver=self.sim.step)

    def run(self, duration: float) -> None:
        self.sim.run_for(duration)
