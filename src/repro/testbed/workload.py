"""Synthetic workload generators for the experiments.

Query mixes, resource churn, and load-regime changes — the knobs the
benchmark sweeps turn.  All randomness comes from seeded generators so
runs replay exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..ldap.dit import Scope
from ..ldap.filter import parse as parse_filter
from ..ldap.protocol import SearchRequest

__all__ = ["QueryMix", "ChurnProcess", "poisson_arrivals"]


@dataclass
class QueryMix:
    """Random discovery queries over a host population.

    Mirrors the §1 scenarios: broker-style qualitative searches
    (load/cpu thresholds), name lookups of specific hosts, and broad
    inventory sweeps.
    """

    rng: random.Random
    hosts: Sequence[str]
    base: str = ""

    def lookup(self) -> SearchRequest:
        host = self.rng.choice(list(self.hosts))
        return SearchRequest(
            base=self.base,
            scope=Scope.SUBTREE,
            filter=parse_filter(f"(hn={host})"),
        )

    def broker_query(self) -> SearchRequest:
        load = self.rng.choice(["0.5", "1.0", "2.0", "4.0"])
        cpus = self.rng.choice([1, 2, 4, 8])
        return SearchRequest(
            base=self.base,
            scope=Scope.SUBTREE,
            filter=parse_filter(
                f"(&(objectclass=computer)(cpucount>={cpus}))"
            )
            if self.rng.random() < 0.5
            else parse_filter(
                f"(&(objectclass=loadaverage)(load5<={load}))"
            ),
        )

    def inventory(self) -> SearchRequest:
        return SearchRequest(
            base=self.base,
            scope=Scope.SUBTREE,
            filter=parse_filter("(objectclass=computer)"),
        )

    def next_query(self) -> SearchRequest:
        roll = self.rng.random()
        if roll < 0.4:
            return self.lookup()
        if roll < 0.8:
            return self.broker_query()
        return self.inventory()


class ChurnProcess:
    """Drives providers joining and leaving a VO over time.

    Each tick either starts a stopped registrant or stops a running one,
    exercising the soft-state machinery the way "highly dynamic"
    VO membership (§1) does.
    """

    def __init__(
        self,
        clock,
        registrants,  # list of (Registrant, directory address)
        rng: random.Random,
        interval: float = 30.0,
        leave_probability: float = 0.5,
        silent_leave_probability: float = 0.5,
    ):
        self.clock = clock
        self.registrants = list(registrants)
        self.rng = rng
        self.interval = interval
        self.leave_probability = leave_probability
        self.silent_leave_probability = silent_leave_probability
        self._timer = None
        self.joins = 0
        self.leaves = 0

    def start(self) -> None:
        self._schedule()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _schedule(self) -> None:
        delay = self.rng.expovariate(1.0 / self.interval)
        self._timer = self.clock.call_later(delay, self._tick)

    def _tick(self) -> None:
        registrant, directory = self.rng.choice(self.registrants)
        if directory in registrant.directories():
            if self.rng.random() < self.leave_probability:
                # Silent leaves (crashes) exercise expiry; polite leaves
                # exercise explicit unregister.
                notify = self.rng.random() >= self.silent_leave_probability
                registrant.deregister_from(directory, notify=notify)
                self.leaves += 1
        else:
            registrant.register_with(directory)
            self.joins += 1
        self._schedule()


def poisson_arrivals(
    clock,
    rate: float,
    action: Callable[[], None],
    rng: random.Random,
    until: Optional[float] = None,
) -> Callable[[], None]:
    """Schedule *action* as a Poisson process; returns a stop function."""
    stopped = {"flag": False}

    def arrive() -> None:
        if stopped["flag"]:
            return
        if until is not None and clock.now() >= until:
            return
        action()
        schedule()

    def schedule() -> None:
        clock.call_later(rng.expovariate(rate), arrive)

    schedule()

    def stop() -> None:
        stopped["flag"] = True

    return stop
