"""Measurement helpers for the experiments.

Latency is measured in *virtual* time: a blocking client call driven by
the simulator advances the clock by exactly the protocol's propagation
and processing delays, so ``sim.now()`` before/after a call is the
query's true latency in the modelled network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["Series", "LatencyTimer", "StalenessProbe", "fmt_row", "fmt_table"]


@dataclass
class Series:
    """A sample accumulator with the summary stats the reports print."""

    name: str = ""
    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else math.nan

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else math.nan

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else math.nan

    @property
    def stddev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values) / (len(self.values) - 1))

    def percentile(self, p: float) -> float:
        if not self.values:
            return math.nan
        data = sorted(self.values)
        k = (len(data) - 1) * p / 100.0
        lo, hi = int(math.floor(k)), int(math.ceil(k))
        if lo == hi:
            return data[lo]
        return data[lo] + (data[hi] - data[lo]) * (k - lo)

    @property
    def median(self) -> float:
        return self.percentile(50)


class LatencyTimer:
    """Times blocks of virtual (or wall) time against a clock."""

    def __init__(self, clock, series: Optional[Series] = None):
        self.clock = clock
        self.series = series or Series()
        self._start: Optional[float] = None

    def __enter__(self) -> "LatencyTimer":
        self._start = self.clock.now()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.series.add(self.clock.now() - self._start)
        self._start = None


class StalenessProbe:
    """Compares delivered information timestamps against 'now'.

    Staleness of an entry is ``now - mds-timestamp`` — how old the
    delivered state is, the §2.1 currency question.
    """

    def __init__(self, clock):
        self.clock = clock
        self.series = Series("staleness")

    def observe_entry(self, entry) -> Optional[float]:
        ts = entry.timestamp()
        if ts is None:
            return None
        staleness = self.clock.now() - ts
        self.series.add(staleness)
        return staleness

    def observe_entries(self, entries) -> None:
        for entry in entries:
            self.observe_entry(entry)


def fmt_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    out = []
    for cell, width in zip(cells, widths):
        text = f"{cell:.4g}" if isinstance(cell, float) else str(cell)
        out.append(text.rjust(width))
    return "  ".join(out)


def fmt_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table (the bench harness report format)."""
    widths = [len(h) for h in headers]
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for i, cell in enumerate(row):
            text = f"{cell:.4g}" if isinstance(cell, float) else str(cell)
            cells.append(text)
            widths[i] = max(widths[i], len(text))
        rendered.append(cells)
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for cells in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)
