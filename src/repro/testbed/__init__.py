"""Testbed: VO deployment, workloads, and measurement for experiments."""

from .metrics import LatencyTimer, Series, StalenessProbe, fmt_table
from .vo import LDAP_PORT, Deployment, GridTestbed
from .workload import ChurnProcess, QueryMix, poisson_arrivals

__all__ = [
    "LatencyTimer",
    "Series",
    "StalenessProbe",
    "fmt_table",
    "LDAP_PORT",
    "Deployment",
    "GridTestbed",
    "ChurnProcess",
    "QueryMix",
    "poisson_arrivals",
]
