"""The soft-state registration table (receiver side of GRRP).

"State established at a remote location by a notification ... may
eventually be discarded unless refreshed by a stream of subsequent
notifications" (§4.3).  The registry holds one record per service URL,
refreshed by register messages, dropped by unregister messages or by
expiry.  "After some time without a refresh, the directory can assume
the provider has become unavailable, and purge knowledge of it."

Expiry combines the message's own validity interval with the registry's
*grace factor*: a record is purged once ``now`` exceeds
``valid_until + grace * ttl``.  Sweeping is both lazy (every read checks
expiry) and, when :meth:`start` is called, periodic — the timer path is
what gives observers "timely awareness of when failures have occurred"
(§2.2) via the ``on_expire`` callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..ldap.dn import DN
from ..net.clock import Clock, TimerHandle
from ..obs.metrics import MetricsRegistry
from .messages import GrrpMessage, NotificationType

__all__ = ["Registration", "SoftStateRegistry"]


@dataclass
class Registration:
    """One live soft-state record."""

    message: GrrpMessage
    first_seen: float
    last_seen: float
    refresh_count: int = 0
    source_identity: Optional[str] = None

    def __post_init__(self):
        # Parsed-DN cache for metadata['suffix'], keyed by message
        # identity so a refresh that swaps the message re-parses once.
        self._suffix_for: Optional[GrrpMessage] = None
        self._suffix_dn: Optional[DN] = None

    @property
    def service_url(self) -> str:
        return self.message.service_url

    @property
    def suffix_dn(self) -> DN:
        """The advertised namespace as a DN, parsed once per intake.

        GIIS query routing compares this against every query's base; a
        VO with hundreds of members cannot afford re-parsing the suffix
        string per registration per query.
        """
        message = self.message
        if self._suffix_for is not message:
            self._suffix_dn = DN.parse(message.metadata.get("suffix", ""))
            self._suffix_for = message
        return self._suffix_dn

    def _prime_suffix(self) -> None:
        """Parse eagerly at intake; malformed suffixes surface at query time."""
        try:
            self.suffix_dn
        except Exception:  # noqa: BLE001 - keep intake resilient
            self._suffix_for = None

    def expires_at(self, grace: float) -> float:
        return self.message.valid_until + grace * self.message.ttl


class SoftStateRegistry:
    """Receiver-side GRRP state, usable standalone or inside a GIIS."""

    def __init__(
        self,
        clock: Clock,
        grace: float = 0.0,
        purge_interval: Optional[float] = None,
        on_register: Optional[Callable[[Registration], None]] = None,
        on_expire: Optional[Callable[[Registration], None]] = None,
        on_unregister: Optional[Callable[[Registration], None]] = None,
        accept: Optional[Callable[[GrrpMessage, Optional[str]], bool]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.clock = clock
        self.grace = grace
        self.purge_interval = purge_interval
        self.on_register = on_register
        self.on_expire = on_expire
        self.on_unregister = on_unregister
        # Membership control (§2.3): administrators "will want to control
        # membership, defining a policy under which information providers
        # can contribute to a VO".
        self.accept = accept
        self._records: Dict[str, Registration] = {}
        self._timer: Optional[TimerHandle] = None
        # Accept/reject/expire rates live on the metrics registry so a
        # cn=monitor subtree can publish soft-state churn; the stats_*
        # attributes below remain as read-only compatibility views.
        self.metrics = metrics or MetricsRegistry()
        self._accepted = self.metrics.counter("grrp.accepted")
        self._rejected = self.metrics.counter("grrp.rejected")
        self._expired_c = self.metrics.counter("grrp.expired")
        self._refreshed = self.metrics.counter("grrp.refreshed")
        self._unregistered = self.metrics.counter("grrp.unregistered")
        self._rebirths = self.metrics.counter("grrp.rebirths")
        self.metrics.gauge_fn("grrp.registrations.active", lambda: len(self._live()))

    def _live(self) -> List[Registration]:
        """Unexpired records without the sweeping side effect."""
        now = self.clock.now()
        return [r for r in self._records.values() if not self._expired(r, now)]

    # Compatibility views over the registry-backed counters.

    @property
    def stats_accepted(self) -> int:
        return int(self._accepted.value)

    @property
    def stats_rejected(self) -> int:
        return int(self._rejected.value)

    @property
    def stats_expired(self) -> int:
        return int(self._expired_c.value)

    # -- intake ----------------------------------------------------------------

    def apply(
        self, message: GrrpMessage, source_identity: Optional[str] = None
    ) -> bool:
        """Apply one GRRP message; returns True if it changed state."""
        now = self.clock.now()
        if self.accept is not None and not self.accept(message, source_identity):
            self._rejected.inc()
            return False
        if message.notification_type == NotificationType.UNREGISTER:
            record = self._records.pop(message.service_url, None)
            if record is not None:
                self._unregistered.inc()
                if self.on_unregister:
                    self.on_unregister(record)
            return record is not None
        if message.notification_type == NotificationType.INVITE:
            # Invitations are not state; the caller routes them to the
            # invited party (see Registrant.handle_invitation).
            return False
        if message.valid_until < now:
            # Arrived already dead (clock skew or extreme delay).
            self._rejected.inc()
            return False
        self._accepted.inc()
        existing = self._records.get(message.service_url)
        if existing is not None and self._expired(existing, now):
            # Death-and-rebirth: the old record already expired but the
            # sweeper has not run yet.  Treating this REGISTER as an
            # in-place refresh would hide the transition from observers
            # — on_expire/on_register must both fire so GIIS indexes and
            # subscriptions see the provider die and come back.
            self._drop_expired(message.service_url, existing)
            self._rebirths.inc()
            existing = None
        if existing is None:
            record = Registration(
                message=message,
                first_seen=now,
                last_seen=now,
                source_identity=source_identity,
            )
            record._prime_suffix()
            self._records[message.service_url] = record
            if self.on_register:
                self.on_register(record)
        else:
            existing.message = message
            existing.last_seen = now
            existing.refresh_count += 1
            existing.source_identity = source_identity or existing.source_identity
            existing._prime_suffix()
            self._refreshed.inc()
        return True

    # -- queries ---------------------------------------------------------------

    def _expired(self, record: Registration, now: float) -> bool:
        return now > record.expires_at(self.grace)

    def active(self) -> List[Registration]:
        """Live registrations, sweeping expired ones as a side effect."""
        self.sweep()
        return list(self._records.values())

    def active_urls(self) -> List[str]:
        return [r.service_url for r in self.active()]

    def lookup(self, service_url: str) -> Optional[Registration]:
        record = self._records.get(service_url)
        if record is None:
            return None
        if self._expired(record, self.clock.now()):
            self._drop_expired(service_url, record)
            return None
        return record

    def is_registered(self, service_url: str) -> bool:
        return self.lookup(service_url) is not None

    def __len__(self) -> int:
        self.sweep()
        return len(self._records)

    # -- expiry ----------------------------------------------------------------

    def sweep(self) -> int:
        """Purge expired records; returns how many were dropped."""
        now = self.clock.now()
        dead = [url for url, r in self._records.items() if self._expired(r, now)]
        for url in dead:
            self._drop_expired(url, self._records[url])
        return len(dead)

    def _drop_expired(self, url: str, record: Registration) -> None:
        self._records.pop(url, None)
        self._expired_c.inc()
        if self.on_expire:
            self.on_expire(record)

    def start(self) -> None:
        """Begin periodic sweeping (for timely failure awareness)."""
        if self.purge_interval is None:
            raise ValueError("no purge_interval configured")
        self._schedule()

    def _schedule(self) -> None:
        def tick() -> None:
            self.sweep()
            self._schedule()

        self._timer = self.clock.call_later(self.purge_interval, tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
