"""Unreliable failure detection over GRRP streams (§4.3, refs [7, 33]).

"GRRP provides a discoverer with an unreliable failure detector.  A
discoverer can decide at a certain point (e.g., after a certain amount
of time has passed without a registration message being received from a
producer) that the producer has failed or become inaccessible. ...
There is thus a tradeoff to be made, when choosing the criteria used to
decide that a producer has failed, between likelihood of an erroneous
decision and timeliness of failure detection."

:class:`FailureDetector` consumes heartbeat observations (registration
arrivals) and classifies each producer as alive or suspected based on a
timeout.  It records the events needed to *measure* the §4.3 tradeoff:
detection latency for true failures and false-suspicion counts for live
producers under packet loss — the subject of benchmark E6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..net.clock import Clock, TimerHandle

__all__ = ["SuspicionEvent", "FailureDetector"]


@dataclass(frozen=True)
class SuspicionEvent:
    """One transition of a producer's perceived state."""

    producer: str
    when: float
    suspected: bool  # True: alive->suspected; False: suspected->alive
    silence: float  # seconds since last heartbeat at transition time


@dataclass
class _ProducerState:
    last_heartbeat: float
    suspected: bool = False
    heartbeats: int = 0


class FailureDetector:
    """Timeout-based unreliable failure detector.

    *timeout* is the silence threshold after which a producer is
    suspected.  Decisions "can be erroneous, as the missing registration
    messages may have been sent but discarded by a lossy network
    connection" — a later heartbeat revokes the suspicion and the
    episode is counted as a false suspicion.
    """

    def __init__(
        self,
        clock: Clock,
        timeout: float,
        on_suspect: Optional[Callable[[SuspicionEvent], None]] = None,
        check_interval: Optional[float] = None,
    ):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.clock = clock
        self.timeout = timeout
        self.on_suspect = on_suspect
        self.check_interval = check_interval or timeout / 4
        self._producers: Dict[str, _ProducerState] = {}
        self._timer: Optional[TimerHandle] = None
        self.events: List[SuspicionEvent] = []

    # -- observations ---------------------------------------------------------

    def heartbeat(self, producer: str) -> None:
        """Record a registration arrival from *producer*."""
        now = self.clock.now()
        state = self._producers.get(producer)
        if state is None:
            self._producers[producer] = _ProducerState(last_heartbeat=now, heartbeats=1)
            return
        silence = now - state.last_heartbeat
        state.last_heartbeat = now
        state.heartbeats += 1
        if state.suspected:
            state.suspected = False
            self._record(producer, now, suspected=False, silence=silence)

    def forget(self, producer: str) -> None:
        """Stop monitoring (e.g. after an explicit unregister)."""
        self._producers.pop(producer, None)

    # -- classification --------------------------------------------------------

    def check(self) -> List[str]:
        """Evaluate all producers; returns newly suspected ones."""
        now = self.clock.now()
        fresh: List[str] = []
        for producer, state in self._producers.items():
            silence = now - state.last_heartbeat
            if not state.suspected and silence > self.timeout:
                state.suspected = True
                fresh.append(producer)
                self._record(producer, now, suspected=True, silence=silence)
        return fresh

    def is_suspect(self, producer: str) -> bool:
        state = self._producers.get(producer)
        if state is None:
            return True  # never heard of: indistinguishable from failed
        silence = self.clock.now() - state.last_heartbeat
        if silence > self.timeout and not state.suspected:
            state.suspected = True
            self._record(producer, self.clock.now(), suspected=True, silence=silence)
        return state.suspected

    def alive(self) -> List[str]:
        self.check()
        return [p for p, s in self._producers.items() if not s.suspected]

    def monitored(self) -> List[str]:
        return list(self._producers)

    # -- periodic checking -------------------------------------------------------

    def start(self) -> None:
        self._schedule()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _schedule(self) -> None:
        def tick() -> None:
            self.check()
            self._schedule()

        self._timer = self.clock.call_later(self.check_interval, tick)

    def _record(self, producer: str, when: float, suspected: bool, silence: float) -> None:
        event = SuspicionEvent(producer, when, suspected, silence)
        self.events.append(event)
        if self.on_suspect:
            self.on_suspect(event)

    # -- experiment accounting (bench E6) ------------------------------------------

    def false_suspicions(self) -> int:
        """Suspicions later revoked by a heartbeat (erroneous decisions)."""
        return sum(1 for e in self.events if not e.suspected)

    def suspicion_count(self) -> int:
        return sum(1 for e in self.events if e.suspected)

    def detection_latency(self, producer: str, failed_at: float) -> Optional[float]:
        """Time from the real failure to the (final) suspicion event."""
        for event in self.events:
            if event.producer == producer and event.suspected and event.when >= failed_at:
                return event.when - failed_at
        return None
