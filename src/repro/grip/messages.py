"""GRRP message format (paper §4.3, [18]).

"Each GRRP message contains the name of the service that is being
described (i.e., a URL to which GRIP messages can be directed), the
type of notification message, and timestamps that determine the
interval over which the notification should be considered to hold."

Two encodings, because "the GRRP definition does not specify the
underlying transport":

* compact JSON bytes for the unreliable datagram transport;
* an LDAP entry (objectclass ``giisregistration``) so registrations can
  be "mapped onto LDAP add operations and then carried via the normal
  LDAP protocol", exactly as MDS-2.1 does (§10.1).

Messages may be GSI-signed (§7) via :func:`repro.security.gsi.sign_message`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict

from ..ldap.dn import DN, RDN
from ..ldap.entry import Entry

__all__ = ["GrrpError", "NotificationType", "GrrpMessage", "registration_dn"]


class GrrpError(ValueError):
    """Raised on malformed GRRP messages."""


class NotificationType:
    """The kinds of GRRP notification (§10.4: registration and invitation)."""

    REGISTER = "register"
    UNREGISTER = "unregister"
    INVITE = "invite"

    ALL = (REGISTER, UNREGISTER, INVITE)


def registration_dn(service_url: str, suffix: DN | str = "") -> DN:
    """Where a registration entry lives in a directory's namespace."""
    # RDN.single escapes the URL's '=', ',' and '/' characters properly.
    return DN.of(suffix).child(RDN.single("regid", service_url))


@dataclass(frozen=True)
class GrrpMessage:
    """One soft-state notification."""

    service_url: str
    notification_type: str = NotificationType.REGISTER
    timestamp: float = 0.0
    valid_until: float = 0.0
    # Free-form descriptive metadata: the suffix a provider serves, its
    # object classes, the VO it is registering into, etc.
    metadata: Dict[str, str] = field(default_factory=dict)
    # W3C-traceparent-style context ("00-<trace>-<span>-<flags>") set on
    # REGISTERs caused by an invitation, so the directory's intake span
    # can be parented on the invite that triggered it.  Empty = untraced.
    trace_context: str = ""

    def __post_init__(self) -> None:
        if self.notification_type not in NotificationType.ALL:
            raise GrrpError(f"unknown notification type {self.notification_type!r}")
        if not self.service_url:
            raise GrrpError("GRRP message must name a service URL")

    @property
    def ttl(self) -> float:
        return max(0.0, self.valid_until - self.timestamp)

    def is_valid_at(self, now: float) -> bool:
        """Within the interval the notification 'should be considered to hold'."""
        return self.timestamp <= now <= self.valid_until

    def refreshed(self, now: float) -> "GrrpMessage":
        """The same notification re-stamped for a refresh send."""
        return replace(self, timestamp=now, valid_until=now + self.ttl)

    # -- datagram encoding ----------------------------------------------------

    def to_bytes(self) -> bytes:
        payload = {
            "url": self.service_url,
            "type": self.notification_type,
            "ts": self.timestamp,
            "until": self.valid_until,
            "meta": self.metadata,
        }
        if self.trace_context:
            payload["tracectx"] = self.trace_context
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "GrrpMessage":
        try:
            data = json.loads(raw.decode("utf-8"))
            return cls(
                service_url=str(data["url"]),
                notification_type=str(data["type"]),
                timestamp=float(data["ts"]),
                valid_until=float(data["until"]),
                metadata={str(k): str(v) for k, v in data.get("meta", {}).items()},
                trace_context=str(data.get("tracectx", "")),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise GrrpError(f"malformed GRRP datagram: {exc}") from exc

    # -- LDAP-entry encoding (the MDS-2.1 transport) ----------------------------

    def to_entry(self, suffix: DN | str = "") -> Entry:
        entry = Entry(
            registration_dn(self.service_url, suffix),
            objectclass=["service", "giisregistration"],
            url=self.service_url,
            notificationtype=self.notification_type,
            ttl=repr(self.ttl),
        )
        entry.put("mds-timestamp", repr(self.timestamp))
        entry.put("mds-validto", repr(self.valid_until))
        if self.trace_context:
            entry.put("mds-tracecontext", self.trace_context)
        for key, value in self.metadata.items():
            entry.put(f"regmeta-{key}", value)
        return entry

    @classmethod
    def from_entry(cls, entry: Entry) -> "GrrpMessage":
        url = entry.first("url")
        if url is None:
            raise GrrpError(f"{entry.dn}: registration entry lacks url")
        try:
            timestamp = float(entry.first("mds-timestamp", "0"))
            valid_until = float(entry.first("mds-validto", "0"))
        except ValueError as exc:
            raise GrrpError(f"{entry.dn}: bad timestamps") from exc
        metadata = {}
        for attr, values in entry.items():
            if attr.lower().startswith("regmeta-"):
                metadata[attr[len("regmeta-") :]] = values[0]
        return cls(
            service_url=url,
            notification_type=entry.first(
                "notificationtype", NotificationType.REGISTER
            ),
            timestamp=timestamp,
            valid_until=valid_until,
            metadata=metadata,
            trace_context=entry.first("mds-tracecontext", ""),
        )

    @classmethod
    def is_registration_entry(cls, entry: Entry) -> bool:
        return entry.is_a("giisregistration")
