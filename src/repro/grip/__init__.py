"""The paper's protocols: GRRP soft-state registration and what rides on it.

GRIP itself *is* LDAP (implemented in :mod:`repro.ldap`); this package
holds the registration protocol — message format, sender streams,
receiver soft-state table, invitation — and the unreliable failure
detector §4.3 derives from registration streams.
"""

from .failure import FailureDetector, SuspicionEvent
from .messages import GrrpError, GrrpMessage, NotificationType, registration_dn
from .registration import Inviter, Registrant, SendFn
from .registry import Registration, SoftStateRegistry

__all__ = [
    "FailureDetector",
    "SuspicionEvent",
    "GrrpError",
    "GrrpMessage",
    "NotificationType",
    "registration_dn",
    "Inviter",
    "Registrant",
    "SendFn",
    "Registration",
    "SoftStateRegistry",
]
