"""The sender side of GRRP: registrants and invitations.

"Under the direction of local and VO-specific policies, an information
provider determines the directory(s) with which it will register.  The
provider then sustains a stream of registration messages to each
directory." (§4.3)

A :class:`Registrant` owns that stream for one provider: it re-stamps
and re-sends the registration on a fixed interval (with optional jitter
to avoid synchronized bursts), over any transport expressed as a send
callable — a simulator datagram, a UDP socket, or an LDAP Add carried by
a client connection.  Lost sends are fine; soft state absorbs them.

Invitation (§10.4): "a GRIS is asked to join by the aggregate directory
service ... If a GRIS agrees to join, it turns around and uses GRRP to
register itself with the specified aggregate directory in a
fault-tolerant manner."  :meth:`Registrant.handle_invitation` implements
the turn-around.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..net.clock import Clock, TimerHandle
from ..obs.trace import format_traceparent
from .messages import GrrpMessage, NotificationType

__all__ = ["SendFn", "Registrant", "Inviter"]

# A transport hook: deliver one encoded GRRP message toward a directory
# named by an opaque address string.  Must never raise on loss.
SendFn = Callable[[str, GrrpMessage], None]


class Registrant:
    """Sustains soft-state registration streams for one service.

    *interval* is the refresh period; *ttl* the per-message validity.
    The classic configuration sets ``ttl = k * interval`` for small k so
    that k consecutive losses are needed before a directory wrongly
    purges the provider (the tradeoff §4.3 discusses).
    """

    def __init__(
        self,
        clock: Clock,
        service_url: str,
        send: SendFn,
        interval: float = 30.0,
        ttl: float = 90.0,
        jitter: float = 0.0,
        metadata: Optional[Dict[str, str]] = None,
        rng: Optional[random.Random] = None,
        accept_invitation: Optional[Callable[[str, GrrpMessage], bool]] = None,
    ):
        if interval <= 0 or ttl <= 0:
            raise ValueError("interval and ttl must be positive")
        self.clock = clock
        self.service_url = service_url
        self.send = send
        self.interval = interval
        self.ttl = ttl
        self.jitter = jitter
        self.metadata = dict(metadata or {})
        self.rng = rng or random.Random()
        # Policy hook: "information providers may wish to assert policy
        # over which VOs they are prepared to join" (§2.3).
        self.accept_invitation = accept_invitation
        self._targets: Dict[str, TimerHandle] = {}
        # directory -> traceparent string of the invitation that caused
        # the stream; consumed by the first turn-around REGISTER so the
        # directory's intake correlates with the invite, then dropped
        # (steady-state refreshes are not part of that trace).
        self._invite_context: Dict[str, str] = {}
        self.sends = 0

    # -- registration streams -----------------------------------------------

    def register_with(self, directory: str, immediately: bool = True) -> None:
        """Start (or keep) a refresh stream toward *directory*."""
        if directory in self._targets:
            return
        self._targets[directory] = _NOOP_TIMER
        if immediately:
            self._refresh(directory)
        else:
            self._schedule(directory)

    def deregister_from(self, directory: str, notify: bool = True) -> None:
        """Stop the stream; optionally send an explicit unregister.

        Soft state makes the explicit message an optimization, not a
        requirement ("no reliable de-notify protocol message is
        required") — if it is lost, expiry cleans up.
        """
        timer = self._targets.pop(directory, None)
        if timer is not None:
            timer.cancel()
        if notify:
            now = self.clock.now()
            self.send(
                directory,
                GrrpMessage(
                    service_url=self.service_url,
                    notification_type=NotificationType.UNREGISTER,
                    timestamp=now,
                    valid_until=now,
                    metadata=self.metadata,
                ),
            )
            self.sends += 1

    def stop(self) -> None:
        for directory in list(self._targets):
            self.deregister_from(directory, notify=False)

    def directories(self) -> List[str]:
        return list(self._targets)

    def _refresh(self, directory: str) -> None:
        if directory not in self._targets:
            return
        now = self.clock.now()
        message = GrrpMessage(
            service_url=self.service_url,
            notification_type=NotificationType.REGISTER,
            timestamp=now,
            valid_until=now + self.ttl,
            metadata=self.metadata,
            trace_context=self._invite_context.pop(directory, ""),
        )
        self.send(directory, message)
        self.sends += 1
        self._schedule(directory)

    def _schedule(self, directory: str) -> None:
        delay = self.interval
        if self.jitter:
            delay += self.rng.uniform(-self.jitter, self.jitter)
            delay = max(delay, self.interval * 0.1)
        self._targets[directory] = self.clock.call_later(
            delay, lambda: self._refresh(directory)
        )

    # -- invitation ---------------------------------------------------------

    def handle_invitation(self, directory: str, message: GrrpMessage) -> bool:
        """An aggregate directory asked us to join; maybe turn around."""
        if message.notification_type != NotificationType.INVITE:
            return False
        if self.accept_invitation is not None and not self.accept_invitation(
            directory, message
        ):
            return False
        if message.trace_context and directory not in self._targets:
            self._invite_context[directory] = message.trace_context
        self.register_with(directory)
        return True


class _NoopTimer:
    def cancel(self) -> None:
        pass


_NOOP_TIMER = _NoopTimer()


class Inviter:
    """Directory-side invitation sender (§10.4's invite mode).

    A GIIS — "or perhaps a third party" — uses this to ask providers to
    join a VO.  The invitation names the directory to register with in
    its metadata.
    """

    def __init__(self, clock: Clock, directory_url: str, send: SendFn):
        self.clock = clock
        self.directory_url = directory_url
        self.send = send

    def invite(
        self, provider: str, ttl: float = 300.0, vo: str = "", trace=None
    ) -> None:
        now = self.clock.now()
        metadata = {"directory": self.directory_url}
        if vo:
            metadata["vo"] = vo
        trace_context = ""
        if trace is not None:
            trace_context = format_traceparent(
                trace.trace_id, trace.span_id, trace.sampled
            )
            tracer = getattr(trace, "tracer", None)
            if tracer is not None:
                tracer.propagated()
        self.send(
            provider,
            GrrpMessage(
                service_url=self.directory_url,
                notification_type=NotificationType.INVITE,
                timestamp=now,
                valid_until=now + ttl,
                metadata=metadata,
                trace_context=trace_context,
            ),
        )
