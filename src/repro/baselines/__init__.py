"""Comparison baselines from the paper's related-work section (§11).

MDS-1-style centralized push directory, multicast-scoped discovery
(SLP/SDS/Jini style), and Bloom-filter lossy aggregation (SDS).
"""

from .bloom import BloomFilter, EntrySummary, SummaryIndex
from .mds1 import CentralDirectory, Mds1Pusher
from .multicast import (
    DISCOVERY_GROUP,
    DISCOVERY_PORT,
    MulticastDiscoveryClient,
    MulticastResponder,
)

__all__ = [
    "BloomFilter",
    "EntrySummary",
    "SummaryIndex",
    "CentralDirectory",
    "Mds1Pusher",
    "MulticastDiscoveryClient",
    "MulticastResponder",
    "DISCOVERY_GROUP",
    "DISCOVERY_PORT",
]
