"""Multicast-scoped discovery baseline (paper §11.2: SLP, SDS, Jini).

"A number of other proposed service discovery services also rely on IP
multicast to locate or to disseminate service descriptions ... the
reliance on IP multicast makes them inappropriate for our use [because]
virtual and physical organizational structures do not correspond."

The model: every provider joins a well-known multicast group and
answers queries whose filter its entries match; a client multicasts a
query and collects unicast replies for a timeout window.  With
``scope='site'`` (administratively scoped multicast, the deployable
configuration) a query reaches only same-site providers — so a VO that
spans sites silently loses resources.  With ``scope='global'`` every
provider on the grid receives every query from every VO — the
scalability failure.  Benchmark E8 quantifies both against GIIS scoping.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple

from ..ldap.entry import Entry
from ..ldap.filter import parse as parse_filter
from ..ldap.ldif import format_entry, parse_ldif
from ..net.clock import Clock
from ..net.simnet import SimNode
from ..net.transport import Address

__all__ = ["DISCOVERY_GROUP", "DISCOVERY_PORT", "MulticastResponder", "MulticastDiscoveryClient"]

DISCOVERY_GROUP = "svc-discovery"
DISCOVERY_PORT = 427  # the SLP port
_REPLY_PORT = 1427


class MulticastResponder:
    """A provider answering multicast discovery queries.

    *entries_fn* supplies the provider's current entries; each query's
    filter is evaluated against them and matches are unicast back.
    """

    def __init__(self, node: SimNode, entries_fn: Callable[[], List[Entry]]):
        self.node = node
        self.entries_fn = entries_fn
        self.queries_seen = 0
        self.replies_sent = 0
        node.join_multicast(DISCOVERY_GROUP, DISCOVERY_PORT, self._on_query)

    def _on_query(self, source: Address, payload: bytes) -> None:
        self.queries_seen += 1
        try:
            request = json.loads(payload.decode("utf-8"))
            filt = parse_filter(request["filter"])
            reply_port = int(request["reply_port"])
            query_id = request["id"]
        except (ValueError, KeyError):
            return
        matches = [e for e in self.entries_fn() if filt.matches(e)]
        if not matches:
            return
        reply = json.dumps(
            {
                "id": query_id,
                "from": self.node.host,
                "entries": [format_entry(e) for e in matches],
            }
        ).encode("utf-8")
        self.replies_sent += 1
        self.node.send_datagram((source[0], reply_port), reply)

    def stop(self) -> None:
        self.node.leave_multicast(DISCOVERY_GROUP, DISCOVERY_PORT)


class MulticastDiscoveryClient:
    """Issues multicast queries and collects replies for a window."""

    def __init__(self, node: SimNode, clock: Clock, reply_port: int = _REPLY_PORT):
        self.node = node
        self.clock = clock
        self.reply_port = reply_port
        self._next_id = 0
        self._collectors: Dict[int, List[Entry]] = {}
        self._done: Dict[int, List[Entry]] = {}
        node.on_datagram(reply_port, self._on_reply)
        self.queries_sent = 0

    def _on_reply(self, source: Address, payload: bytes) -> None:
        try:
            reply = json.loads(payload.decode("utf-8"))
            query_id = int(reply["id"])
            entries: List[Entry] = []
            for text in reply["entries"]:
                entries.extend(parse_ldif(text))
        except (ValueError, KeyError):
            return
        collector = self._collectors.get(query_id)
        if collector is not None:
            collector.extend(entries)

    def discover(
        self,
        filter_text: str,
        timeout: float = 1.0,
        scope: str = "site",
        on_done: Optional[Callable[[List[Entry]], None]] = None,
    ) -> Tuple[int, Callable[[], List[Entry]]]:
        """Send one query; results accumulate until *timeout*.

        Returns ``(targeted, results_fn)`` where *targeted* is how many
        responders the multicast reached and *results_fn* reads the
        accumulated entries (complete once the timeout has elapsed on
        the simulation clock).
        """
        self._next_id += 1
        query_id = self._next_id
        self._collectors[query_id] = []
        payload = json.dumps(
            {
                "id": query_id,
                "filter": filter_text,
                "reply_port": self.reply_port,
            }
        ).encode("utf-8")
        self.queries_sent += 1
        targeted = self.node.send_multicast(
            DISCOVERY_GROUP, DISCOVERY_PORT, payload, scope=scope
        )

        def finish() -> None:
            entries = self._collectors.pop(query_id, [])
            self._done[query_id] = entries  # late replies are discarded
            if on_done is not None:
                on_done(entries)

        self.clock.call_later(timeout, finish)

        def results() -> List[Entry]:
            if query_id in self._done:
                return list(self._done[query_id])
            return list(self._collectors.get(query_id, ()))

        return targeted, results
