"""MDS-1-style centralized directory baseline (paper §11.1).

"One approach to constructing a Grid information service is to push all
information into a directory service.  We employed this approach in
early versions of MDS-1. ... the strategy of collecting all information
into a database inevitably limited scalability and reliability."

The baseline: one central LDAP directory (a plain
:class:`~repro.ldap.backend.DitBackend` server) into which every
resource periodically *pushes* its full provider snapshot.  Queries hit
the central store — fast, but the answer's freshness is bounded by the
push interval, the central server carries every update whether or not
anyone asks, and it is a single point of failure.  Benchmark E9
measures all three against the MDS-2 distributed architecture.
"""

from __future__ import annotations

from typing import List, Optional

from ..gris.cache import ProviderCache
from ..gris.provider import InformationProvider, ProviderError
from ..ldap.backend import DitBackend
from ..ldap.client import LdapClient
from ..ldap.dit import DIT
from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.server import LdapServer
from ..net.clock import Clock, TimerHandle

__all__ = ["CentralDirectory", "Mds1Pusher"]


class CentralDirectory:
    """The central store: a vanilla LDAP server over one DIT."""

    def __init__(self, clock: Clock, name: str = "mds1-central"):
        self.backend = DitBackend(DIT())
        self.server = LdapServer(self.backend, clock=clock, name=name)
        self.updates_received = 0

    def entry_count(self) -> int:
        return len(self.backend.dit)


class Mds1Pusher:
    """Pushes one resource's provider snapshots to the central directory.

    Every *interval* the pusher materializes all providers (through the
    usual per-provider cache) and replaces its subtree in the central
    store.  All update traffic flows whether or not anyone queries —
    the cost profile that limited MDS-1.
    """

    def __init__(
        self,
        clock: Clock,
        client: LdapClient,
        suffix: DN | str,
        providers: List[InformationProvider],
        interval: float = 30.0,
    ):
        self.clock = clock
        self.client = client
        self.suffix = DN.of(suffix)
        self.providers = list(providers)
        self.interval = interval
        self.cache = ProviderCache()
        self._timer: Optional[TimerHandle] = None
        self._pushed_dns: set = set()
        self.pushes = 0
        self.entries_pushed = 0
        self.push_failures = 0

    def snapshot(self) -> List[Entry]:
        now = self.clock.now()
        out: List[Entry] = []
        for provider in self.providers:
            try:
                entries, _ = self.cache.get(provider, now)
            except ProviderError:
                continue
            for entry in entries:
                out.append(entry.with_dn(DN(entry.dn.rdns + self.suffix.rdns)))
        return out

    def push_once(self) -> None:
        """One push cycle: delete vanished entries, upsert the rest."""
        entries = self.snapshot()
        current_dns = {entry.dn for entry in entries}
        self.pushes += 1
        for dn in sorted(
            self._pushed_dns - current_dns, key=lambda d: -len(d.rdns)
        ):
            try:
                self.client.delete_async(dn, lambda outcome, error: None)
            except Exception:  # noqa: BLE001 - central dir unreachable
                self.push_failures += 1
                return
        for entry in entries:
            self.entries_pushed += 1
            try:
                # Upsert: delete any stale copy, then add the fresh one.
                if entry.dn in self._pushed_dns:
                    self.client.delete_async(entry.dn, lambda outcome, error: None)
                self.client.add_async(entry, lambda outcome, error: None)
            except Exception:  # noqa: BLE001
                self.push_failures += 1
                return
        self._pushed_dns = current_dns

    def start(self, immediately: bool = True) -> None:
        if immediately:
            self.push_once()
        self._schedule()

    def _schedule(self) -> None:
        def tick() -> None:
            self.push_once()
            self._schedule()

        self._timer = self.clock.call_later(self.interval, tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
