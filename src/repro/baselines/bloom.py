"""Bloom-filter lossy aggregation (paper §5.1, the SDS technique [9]).

"Such aggregate directories could also use lossy aggregation
techniques, as in the Service Discovery Service, which hashes
descriptions and summarizes hashes via Bloom filtering."

A directory summarizes each child's entries as a Bloom filter over
``attr=value`` tokens; a query's equality terms are tested against each
child's filter to prune which children to contact.  False positives
cost a wasted query; false negatives never happen.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, List, Tuple

from ..ldap.entry import Entry
from ..ldap.filter import And, Equality, Filter

__all__ = ["BloomFilter", "EntrySummary", "SummaryIndex"]


class BloomFilter:
    """A classic Bloom filter over byte strings."""

    def __init__(self, bits: int = 1024, hashes: int = 4):
        if bits < 8 or hashes < 1:
            raise ValueError("need at least 8 bits and 1 hash")
        self.bits = bits
        self.hashes = hashes
        self._array = bytearray((bits + 7) // 8)
        self.count = 0

    def _positions(self, item: bytes) -> Iterable[int]:
        for salt in range(self.hashes):
            digest = hashlib.sha256(bytes([salt]) + item).digest()
            yield int.from_bytes(digest[:8], "big") % self.bits

    def add(self, item: bytes) -> None:
        for pos in self._positions(item):
            self._array[pos // 8] |= 1 << (pos % 8)
        self.count += 1

    def __contains__(self, item: bytes) -> bool:
        return all(
            self._array[pos // 8] & (1 << (pos % 8)) for pos in self._positions(item)
        )

    def false_positive_rate(self) -> float:
        """The analytic FP estimate for the current fill."""
        if self.count == 0:
            return 0.0
        return (1.0 - math.exp(-self.hashes * self.count / self.bits)) ** self.hashes

    def merge(self, other: "BloomFilter") -> None:
        if other.bits != self.bits or other.hashes != self.hashes:
            raise ValueError("cannot merge differently-shaped filters")
        for i, byte in enumerate(other._array):
            self._array[i] |= byte
        self.count += other.count

    def to_bytes(self) -> bytes:
        return bytes(self._array)

    @property
    def size_bytes(self) -> int:
        return len(self._array)


def _tokens(entry: Entry) -> Iterable[bytes]:
    for attr, values in entry.items():
        key = attr.lower()
        for value in values:
            yield f"{key}={value.strip().lower()}".encode("utf-8")


class EntrySummary:
    """A Bloom summary of one child's entry set."""

    def __init__(self, bits: int = 2048, hashes: int = 4):
        self.filter = BloomFilter(bits, hashes)
        self.entries = 0

    def add_entry(self, entry: Entry) -> None:
        self.entries += 1
        for token in _tokens(entry):
            self.filter.add(token)

    def may_match_term(self, attr: str, value: str) -> bool:
        token = f"{attr.lower()}={value.strip().lower()}".encode("utf-8")
        return token in self.filter


def _equality_terms(filt: Filter) -> List[Tuple[str, str]]:
    if isinstance(filt, Equality):
        return [(filt.attr, filt.value)]
    if isinstance(filt, And):
        out: List[Tuple[str, str]] = []
        for clause in filt.clauses:
            out.extend(_equality_terms(clause))
        return out
    return []


class SummaryIndex:
    """Per-child Bloom summaries with query-time pruning.

    ``candidates(filter)`` returns the children that *may* hold matches
    for the filter's equality terms — the SDS-style routing decision.
    Filters with no equality terms cannot be pruned and return all
    children (lossy aggregation only helps conjunctive point queries).
    """

    def __init__(self, bits: int = 2048, hashes: int = 4):
        self.bits = bits
        self.hashes = hashes
        self._summaries: Dict[str, EntrySummary] = {}

    def update_child(self, child: str, entries: Iterable[Entry]) -> None:
        summary = EntrySummary(self.bits, self.hashes)
        for entry in entries:
            summary.add_entry(entry)
        self._summaries[child] = summary

    def drop_child(self, child: str) -> None:
        self._summaries.pop(child, None)

    def children(self) -> List[str]:
        return sorted(self._summaries)

    def candidates(self, filt: Filter) -> List[str]:
        terms = _equality_terms(filt)
        if not terms:
            return self.children()
        out = []
        for child, summary in sorted(self._summaries.items()):
            if all(summary.may_match_term(attr, value) for attr, value in terms):
                out.append(child)
        return out

    def summary_bytes(self) -> int:
        return sum(s.filter.size_bytes for s in self._summaries.values())
