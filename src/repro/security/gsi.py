"""GSI stand-in: authentication tokens and signed messages.

Two mechanisms, matching the paper's two uses of GSI (§7, §10.2):

* **Bind tokens** — carried in the LDAP SASL bind, giving mutual
  authentication between information consumers and providers.  A token
  is the sender's certificate chain plus a signature over
  ``(target, timestamp, nonce)``; the verifier checks the chain to a
  trust anchor, the signature, and freshness.  The server can answer
  with its own token for mutual auth.
* **Signed GRRP messages** — "we can cryptographically sign each GRRP
  message with the credentials of the registering entity" (§7).
  :func:`sign_message` / :func:`verify_message` wrap any payload in a
  signature envelope.

Serialization is JSON: readable, deterministic, and adequate for a
behavioural reproduction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .certs import CertError, Certificate, Credential, verify_chain
from .rsa import PublicKey

__all__ = [
    "AuthError",
    "AuthToken",
    "make_token",
    "verify_token",
    "sign_message",
    "verify_message",
    "TrustStore",
]

TOKEN_FRESHNESS = 300.0  # seconds a bind token stays acceptable


class AuthError(Exception):
    """Raised when authentication fails."""


class TrustStore:
    """The set of CA certificates a party trusts."""

    def __init__(self, anchors: Iterable[Certificate] = ()):
        self._anchors: List[Certificate] = list(anchors)

    def add(self, anchor: Certificate) -> None:
        self._anchors.append(anchor)

    def anchors(self) -> List[Certificate]:
        return list(self._anchors)

    def verify_chain(self, chain: Sequence[Certificate], now: float) -> str:
        try:
            return verify_chain(chain, self._anchors, now)
        except CertError as exc:
            raise AuthError(str(exc)) from exc


# -- serialization helpers ---------------------------------------------------


def _cert_to_dict(cert: Certificate) -> dict:
    return {
        "subject": cert.subject,
        "issuer": cert.issuer,
        "n": cert.public_key.n,
        "e": cert.public_key.e,
        "not_before": cert.not_before,
        "not_after": cert.not_after,
        "is_ca": cert.is_ca,
        "is_proxy": cert.is_proxy,
        "serial": cert.serial,
        "signature": cert.signature,
    }


def _cert_from_dict(data: dict) -> Certificate:
    return Certificate(
        subject=data["subject"],
        issuer=data["issuer"],
        public_key=PublicKey(int(data["n"]), int(data["e"])),
        not_before=float(data["not_before"]),
        not_after=float(data["not_after"]),
        is_ca=bool(data["is_ca"]),
        is_proxy=bool(data["is_proxy"]),
        serial=int(data["serial"]),
        signature=int(data["signature"]),
    )


@dataclass(frozen=True)
class AuthToken:
    """A decoded bind token."""

    identity: str
    chain: Tuple[Certificate, ...]
    target: str
    timestamp: float
    nonce: str
    signature: int

    def signed_payload(self) -> bytes:
        return json.dumps(
            {"target": self.target, "timestamp": self.timestamp, "nonce": self.nonce},
            sort_keys=True,
        ).encode("utf-8")


def make_token(
    credential: Credential, target: str, now: float, nonce: str = ""
) -> bytes:
    """Build a bind token proving possession of *credential*."""
    token = AuthToken(
        identity=credential.identity,
        chain=credential.chain,
        target=target,
        timestamp=now,
        nonce=nonce,
        signature=0,
    )
    signature = credential.sign(token.signed_payload())
    payload = {
        "chain": [_cert_to_dict(c) for c in credential.chain],
        "target": target,
        "timestamp": now,
        "nonce": nonce,
        "signature": signature,
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def verify_token(
    raw: bytes,
    trust: TrustStore,
    expected_target: str,
    now: float,
    freshness: float = TOKEN_FRESHNESS,
    expected_nonce: Optional[str] = None,
) -> str:
    """Verify a bind token; returns the authenticated identity."""
    try:
        data = json.loads(raw.decode("utf-8"))
        chain = tuple(_cert_from_dict(c) for c in data["chain"])
        token = AuthToken(
            identity="",
            chain=chain,
            target=str(data["target"]),
            timestamp=float(data["timestamp"]),
            nonce=str(data.get("nonce", "")),
            signature=int(data["signature"]),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise AuthError(f"malformed auth token: {exc}") from exc

    identity = trust.verify_chain(chain, now)
    if token.target != expected_target:
        raise AuthError(
            f"token targeted {token.target!r}, this service is {expected_target!r}"
        )
    if abs(now - token.timestamp) > freshness:
        raise AuthError(f"token stale: issued at {token.timestamp}, now {now}")
    if expected_nonce is not None and token.nonce != expected_nonce:
        raise AuthError("token nonce mismatch")
    leaf = chain[0]
    if not leaf.public_key.verify(token.signed_payload(), token.signature):
        raise AuthError("bad token signature")
    return identity


# -- message signing (GRRP) ---------------------------------------------------


def sign_message(credential: Credential, payload: bytes) -> bytes:
    """Wrap *payload* in a signature envelope."""
    envelope = {
        "payload": payload.decode("latin-1"),
        "chain": [_cert_to_dict(c) for c in credential.chain],
        "signature": credential.sign(payload),
    }
    return json.dumps(envelope, sort_keys=True).encode("utf-8")


def verify_message(raw: bytes, trust: TrustStore, now: float) -> Tuple[str, bytes]:
    """Verify an envelope; returns (identity, payload)."""
    try:
        data = json.loads(raw.decode("utf-8"))
        payload = data["payload"].encode("latin-1")
        chain = tuple(_cert_from_dict(c) for c in data["chain"])
        signature = int(data["signature"])
    except (KeyError, ValueError, TypeError, AttributeError) as exc:
        raise AuthError(f"malformed signed message: {exc}") from exc
    identity = trust.verify_chain(chain, now)
    if not chain[0].public_key.verify(payload, signature):
        raise AuthError("bad message signature")
    return identity, payload


# -- trust store serialization (deployment: CA certs live in files) -----------


def trust_store_to_json(trust: TrustStore) -> str:
    """Serialize a trust store's CA certificates to JSON."""
    return json.dumps([_cert_to_dict(c) for c in trust.anchors()], sort_keys=True)


def trust_store_from_json(text: str) -> TrustStore:
    """Inverse of :func:`trust_store_to_json`."""
    try:
        data = json.loads(text)
        anchors = [_cert_from_dict(c) for c in data]
    except (KeyError, ValueError, TypeError) as exc:
        raise AuthError(f"malformed trust store: {exc}") from exc
    return TrustStore(anchors)
