"""Certificates, certificate authorities, chains, and proxy credentials.

The GSI substitute's identity layer: an X.509-shaped certificate binds a
subject name to a public key, signed by an issuer.  Chains terminate at
a trusted CA (trust anchor).  *Proxy* certificates — GSI's delegation
mechanism, anticipated in the paper's future work ("extend our security
models to incorporate capabilities and delegation") — are short-lived
certs signed by an end-entity key whose subject extends the issuer's
subject with a ``/proxy`` component; a service holding a proxy acts as
the delegating identity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from .rsa import PrivateKey, PublicKey, generate_keypair

__all__ = [
    "CertError",
    "Certificate",
    "Credential",
    "CertificateAuthority",
    "verify_chain",
]

DEFAULT_LIFETIME = 365 * 24 * 3600.0
PROXY_LIFETIME = 12 * 3600.0


class CertError(Exception):
    """Raised when certificate validation fails."""


@dataclass(frozen=True)
class Certificate:
    """A signed binding of subject name to public key."""

    subject: str
    issuer: str
    public_key: PublicKey
    not_before: float
    not_after: float
    is_ca: bool = False
    is_proxy: bool = False
    serial: int = 0
    signature: int = 0

    def tbs_bytes(self) -> bytes:
        """Canonical to-be-signed byte encoding."""
        payload = {
            "subject": self.subject,
            "issuer": self.issuer,
            "n": self.public_key.n,
            "e": self.public_key.e,
            "not_before": self.not_before,
            "not_after": self.not_after,
            "is_ca": self.is_ca,
            "is_proxy": self.is_proxy,
            "serial": self.serial,
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def valid_at(self, now: float) -> bool:
        return self.not_before <= now <= self.not_after

    def signed_by(self, issuer_key: PublicKey) -> bool:
        return issuer_key.verify(self.tbs_bytes(), self.signature)

    @property
    def base_identity(self) -> str:
        """Subject with proxy components stripped: the delegating identity."""
        subject = self.subject
        while subject.endswith("/proxy"):
            subject = subject[: -len("/proxy")]
        return subject


def _issue(
    subject: str,
    issuer: str,
    issuer_key: PrivateKey,
    public_key: PublicKey,
    now: float,
    lifetime: float,
    is_ca: bool,
    is_proxy: bool,
    serial: int,
) -> Certificate:
    cert = Certificate(
        subject=subject,
        issuer=issuer,
        public_key=public_key,
        not_before=now,
        not_after=now + lifetime,
        is_ca=is_ca,
        is_proxy=is_proxy,
        serial=serial,
    )
    signature = issuer_key.sign(cert.tbs_bytes())
    return Certificate(
        **{**cert.__dict__, "signature": signature}  # type: ignore[arg-type]
    )


@dataclass
class Credential:
    """A certificate chain plus the private key of its leaf.

    ``chain[0]`` is the leaf (this credential's own cert); subsequent
    entries are the certs of successive issuers, ending just below (or
    at) a trust anchor.
    """

    chain: Tuple[Certificate, ...]
    key: PrivateKey

    @property
    def certificate(self) -> Certificate:
        return self.chain[0]

    @property
    def identity(self) -> str:
        return self.certificate.base_identity

    def sign(self, message: bytes) -> int:
        return self.key.sign(message)

    def delegate(
        self, now: float, lifetime: float = PROXY_LIFETIME, rng=None, bits: int = 512
    ) -> "Credential":
        """Create a proxy credential: new keypair, cert signed by us.

        The proxy's subject is ours plus '/proxy'; verifiers resolve it
        back to our identity (GSI single sign-on / delegation).
        """
        proxy_keys = generate_keypair(bits, rng)
        cert = _issue(
            subject=self.certificate.subject + "/proxy",
            issuer=self.certificate.subject,
            issuer_key=self.key,
            public_key=proxy_keys.public,
            now=now,
            lifetime=lifetime,
            is_ca=False,
            is_proxy=True,
            serial=0,
        )
        return Credential(chain=(cert,) + self.chain, key=proxy_keys.private)


class CertificateAuthority:
    """A trust anchor that issues identity and CA certificates."""

    def __init__(self, name: str, rng=None, bits: int = 512, now: float = 0.0):
        self.name = name
        self._keys = generate_keypair(bits, rng)
        self._serial = 0
        self.certificate = _issue(
            subject=name,
            issuer=name,
            issuer_key=self._keys.private,
            public_key=self._keys.public,
            now=now,
            lifetime=10 * DEFAULT_LIFETIME,
            is_ca=True,
            is_proxy=False,
            serial=self._next_serial(),
        )

    def _next_serial(self) -> int:
        self._serial += 1
        return self._serial

    def issue(
        self,
        subject: str,
        now: float = 0.0,
        lifetime: float = DEFAULT_LIFETIME,
        is_ca: bool = False,
        rng=None,
        bits: int = 512,
    ) -> Credential:
        """Issue a fresh credential for *subject*."""
        keys = generate_keypair(bits, rng)
        cert = _issue(
            subject=subject,
            issuer=self.name,
            issuer_key=self._keys.private,
            public_key=keys.public,
            now=now,
            lifetime=lifetime,
            is_ca=is_ca,
            is_proxy=False,
            serial=self._next_serial(),
        )
        return Credential(chain=(cert, self.certificate), key=keys.private)


def verify_chain(
    chain: Sequence[Certificate],
    trust_anchors: Iterable[Certificate],
    now: float,
    max_proxy_depth: int = 8,
) -> str:
    """Validate a certificate chain; returns the authenticated identity.

    Checks: temporal validity of every cert, signature of each cert by
    the next one in the chain, termination at a trust anchor, CA bit on
    intermediates, and proxy rules (a proxy must be signed by the key of
    the identity it extends).  Raises :class:`CertError` on any failure.
    """
    if not chain:
        raise CertError("empty certificate chain")
    anchors: Dict[str, Certificate] = {}
    for anchor in trust_anchors:
        anchors[anchor.subject] = anchor

    proxy_depth = 0
    for idx, cert in enumerate(chain):
        if not cert.valid_at(now):
            raise CertError(f"certificate {cert.subject!r} expired or not yet valid")
        if cert.is_proxy:
            proxy_depth += 1
            if proxy_depth > max_proxy_depth:
                raise CertError("proxy chain too deep")
            if idx + 1 >= len(chain):
                raise CertError(f"proxy {cert.subject!r} has no issuer cert in chain")
            issuer_cert = chain[idx + 1]
            if cert.subject != issuer_cert.subject + "/proxy":
                raise CertError(
                    f"proxy subject {cert.subject!r} does not extend its issuer"
                )
            if not cert.signed_by(issuer_cert.public_key):
                raise CertError(f"bad signature on proxy {cert.subject!r}")
            continue
        # Non-proxy: find the issuer, either later in the chain or an anchor.
        anchor = anchors.get(cert.issuer)
        if anchor is not None and cert.signed_by(anchor.public_key):
            # Chain terminates at a trust anchor; all checks passed.
            return chain[0].base_identity
        if idx + 1 < len(chain):
            issuer_cert = chain[idx + 1]
            if issuer_cert.subject != cert.issuer:
                raise CertError(
                    f"chain break: {cert.subject!r} issued by {cert.issuer!r}, "
                    f"next cert is {issuer_cert.subject!r}"
                )
            if not issuer_cert.is_ca:
                raise CertError(f"issuer {issuer_cert.subject!r} is not a CA")
            if not cert.signed_by(issuer_cert.public_key):
                raise CertError(f"bad signature on {cert.subject!r}")
            continue
        raise CertError(
            f"chain does not terminate at a trust anchor (issuer {cert.issuer!r})"
        )
    raise CertError("chain has only proxy certificates")


# -- credential serialization (deployment: credentials live in files) --------


def credential_to_json(credential: Credential) -> str:
    """Serialize a credential (certificate chain + private key) to JSON.

    The obvious caveat applies: this includes the private key, so treat
    the output like GSI treats ``userkey.pem``.
    """
    import json

    from .gsi import _cert_to_dict  # local import: avoid a module cycle

    return json.dumps(
        {
            "chain": [_cert_to_dict(c) for c in credential.chain],
            "key": {"n": credential.key.n, "d": credential.key.d},
        },
        sort_keys=True,
    )


def credential_from_json(text: str) -> Credential:
    """Inverse of :func:`credential_to_json`."""
    import json

    from .gsi import _cert_from_dict

    try:
        data = json.loads(text)
        chain = tuple(_cert_from_dict(c) for c in data["chain"])
        key = PrivateKey(int(data["key"]["n"]), int(data["key"]["d"]))
    except (KeyError, ValueError, TypeError) as exc:
        raise CertError(f"malformed credential: {exc}") from exc
    if not chain:
        raise CertError("credential has no certificates")
    return Credential(chain=chain, key=key)
