"""Number theory for the RSA stand-in: primality and modular arithmetic.

Pure-Python Miller–Rabin with deterministic witness sets for small
inputs and random witnesses above, plus prime generation and modular
inverse.  Key sizes in tests are small (512-bit) so generation stays
fast; the algorithms themselves are standard.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["is_probable_prime", "generate_prime", "modinv"]

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]

# Deterministic Miller-Rabin witnesses valid for n < 3.3e24.
_DETERMINISTIC_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One MR round; True means 'probably prime so far'."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 20, rng: Optional[random.Random] = None) -> bool:
    """Miller–Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < 3_317_044_064_679_887_385_961_981:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n]
    else:
        rng = rng or random.Random()
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, a, d, r) for a in witnesses)


def generate_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Generate a random prime of exactly *bits* bits."""
    if bits < 8:
        raise ValueError("prime too small to be useful")
    rng = rng or random.Random()
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # correct size, odd
        if is_probable_prime(candidate, rng=rng):
            return candidate


def modinv(a: int, m: int) -> int:
    """Modular inverse via extended Euclid; raises if gcd(a, m) != 1."""
    g, x = _egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m}")
    return x % m


def _egcd(a: int, b: int) -> tuple[int, int]:
    """Returns (gcd, x) with a*x ≡ gcd (mod b)."""
    x0, x1 = 1, 0
    while b:
        q, a, b = a // b, b, a % b
        x0, x1 = x1, x0 - q * x1
    return a, x0
