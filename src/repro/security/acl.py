"""Access control for directory information.

The paper (§7) requires that "an information provider may specify, for
each piece of information that it maintains, the credentials that must
be presented to access that information", supporting identity-based
access control lists and group capabilities.  This module implements:

* :class:`AccessPolicy` — an ordered rule list evaluated per attribute,
  scoped by subtree, with identity/group/anonymous subjects;
* the four §7 provider/directory trust postures as policy constructors
  (:func:`open_policy`, :func:`existence_only_policy`, ...);
* entry filtering used by the server before results leave the process.

Subjects: ``"*"`` (anyone, including anonymous), ``"authenticated"``
(any non-anonymous identity), ``"group:<name>"`` (membership via
:class:`Groups`), or an exact identity string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..ldap.attributes import normalize_attr_name
from ..ldap.dn import DN
from ..ldap.entry import Entry

__all__ = [
    "ANONYMOUS",
    "Groups",
    "AccessRule",
    "AccessPolicy",
    "open_policy",
    "authenticated_policy",
    "existence_only_policy",
    "attribute_restricted_policy",
]

ANONYMOUS = "anonymous"

# Attributes that remain visible under existence-only policies: enough to
# enumerate entries but reveal no characteristics (§7 third mode).
_EXISTENCE_ATTRS = frozenset({"objectclass"})


class Groups:
    """Group membership, the capability groups of [27] in the paper."""

    def __init__(self, members: Optional[Dict[str, Iterable[str]]] = None):
        self._groups: Dict[str, Set[str]] = {}
        for name, ids in (members or {}).items():
            self._groups[name] = set(ids)

    def add(self, group: str, identity: str) -> None:
        self._groups.setdefault(group, set()).add(identity)

    def remove(self, group: str, identity: str) -> None:
        self._groups.get(group, set()).discard(identity)

    def is_member(self, group: str, identity: str) -> bool:
        return identity in self._groups.get(group, ())


@dataclass(frozen=True)
class AccessRule:
    """One ordered policy rule.

    *subject* selects requestors; *base*/*subtree* scope which entries;
    *attrs* names the covered attributes (None = all attributes);
    *allow* grants or denies read access.
    """

    subject: str
    allow: bool = True
    base: Optional[DN] = None
    attrs: Optional[frozenset] = None

    @classmethod
    def make(
        cls,
        subject: str,
        allow: bool = True,
        base: Optional[str] = None,
        attrs: Optional[Iterable[str]] = None,
    ) -> "AccessRule":
        return cls(
            subject=subject,
            allow=allow,
            base=DN.parse(base) if base is not None else None,
            attrs=(
                frozenset(normalize_attr_name(a) for a in attrs)
                if attrs is not None
                else None
            ),
        )

    def subject_matches(self, identity: str, groups: Groups) -> bool:
        if self.subject == "*":
            return True
        if self.subject == "authenticated":
            return identity != ANONYMOUS
        if self.subject.startswith("group:"):
            return groups.is_member(self.subject[len("group:") :], identity)
        return self.subject == identity

    def covers_entry(self, dn: DN) -> bool:
        return self.base is None or dn.is_within(self.base)

    def covers_attr(self, attr: str) -> bool:
        return self.attrs is None or normalize_attr_name(attr) in self.attrs


class AccessPolicy:
    """Ordered-rule access policy with a default decision.

    First matching rule per (identity, entry, attribute) wins.  An entry
    whose every attribute is denied disappears from results entirely
    unless *reveal_existence* keeps its skeleton visible (§7's
    "makes no information known other than its existence").
    """

    def __init__(
        self,
        rules: Sequence[AccessRule] = (),
        default_allow: bool = False,
        groups: Optional[Groups] = None,
        reveal_existence: bool = False,
    ):
        self.rules: List[AccessRule] = list(rules)
        self.default_allow = default_allow
        self.groups = groups or Groups()
        self.reveal_existence = reveal_existence

    def add_rule(self, rule: AccessRule) -> None:
        self.rules.append(rule)

    def may_read(self, identity: str, dn: DN, attr: str) -> bool:
        for rule in self.rules:
            if (
                rule.subject_matches(identity, self.groups)
                and rule.covers_entry(dn)
                and rule.covers_attr(attr)
            ):
                return rule.allow
        return self.default_allow

    def is_transparent(self, identity: str) -> bool:
        """Whether *identity* may read every entry and attribute.

        True only when the first rule that can match any (entry, attr)
        pair for this identity is an unconditional allow — the server's
        encode-cache fast lane relies on this to skip per-entry
        :meth:`filter_entry` rebuilds without changing what is visible.
        Conservative: any scoped or attribute-limited rule ahead of the
        decision disqualifies, even if it also allows.
        """
        for rule in self.rules:
            if not rule.subject_matches(identity, self.groups):
                continue
            if rule.base is None and rule.attrs is None:
                return rule.allow
            # A scoped rule may decide differently per entry/attribute;
            # transparency cannot be guaranteed past it.
            return False
        return self.default_allow

    def filter_entry(self, identity: str, entry: Entry) -> Optional[Entry]:
        """Project *entry* down to what *identity* may read.

        Returns None when nothing (not even existence) is visible.
        """
        visible = Entry(entry.dn)
        any_attr = False
        for attr, values in entry.items():
            if self.may_read(identity, entry.dn, attr):
                for v in values:
                    visible.add_value(attr, v)
                any_attr = True
        if any_attr:
            return visible
        if self.reveal_existence:
            for attr in _EXISTENCE_ATTRS:
                for v in entry.get(attr):
                    visible.add_value(attr, v)
            return visible
        return None

    def filter_entries(
        self, identity: str, entries: Iterable[Entry]
    ) -> List[Entry]:
        out = []
        for entry in entries:
            filtered = self.filter_entry(identity, entry)
            if filtered is not None:
                out.append(filtered)
        return out

    def restricted_attrs(self, identity: str, entry: Entry) -> List[str]:
        """Attributes of *entry* hidden from *identity* (for referrals)."""
        return [
            attr
            for attr, _ in entry.items()
            if not self.may_read(identity, entry.dn, attr)
        ]


# -- the four §7 postures -----------------------------------------------------


def open_policy() -> AccessPolicy:
    """No restriction: 'authenticated queries are not required'."""
    return AccessPolicy([AccessRule.make("*")], default_allow=True)


def authenticated_policy() -> AccessPolicy:
    """Everything visible, but only to authenticated identities."""
    return AccessPolicy([AccessRule.make("authenticated")])


def existence_only_policy() -> AccessPolicy:
    """Only entry existence is revealed: 'the directory can only
    enumerate the known resources, with no attribute-based indexing'."""
    return AccessPolicy([], default_allow=False, reveal_existence=True)


def attribute_restricted_policy(
    public_attrs: Iterable[str],
    restricted_attrs: Iterable[str],
    allowed_identities: Iterable[str] = (),
    groups: Optional[Groups] = None,
) -> AccessPolicy:
    """§7's second mode: e.g. OS type public, load average restricted.

    *allowed_identities* (or group subjects) can read the restricted
    attributes; everyone can read the public ones.
    """
    rules = [
        AccessRule.make(identity, attrs=restricted_attrs)
        for identity in allowed_identities
    ]
    rules.append(AccessRule.make("*", attrs=public_attrs))
    return AccessPolicy(rules, default_allow=False, groups=groups)
