"""SASL-style bind authenticators for the LDAP server.

MDS-2.1 loads GSI into OpenLDAP "dynamically" through SASL/GSS-API
bindings (§10.2).  We mirror the shape: the server owns an
:class:`Authenticator` that maps a BindRequest's mechanism and
credentials to an authenticated identity, and the GSI mechanism plugs
into it without touching the protocol engine.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from .acl import ANONYMOUS
from .certs import Credential
from .gsi import AuthError, TrustStore, make_token, verify_token

__all__ = ["BindOutcome", "Authenticator", "AnonymousOnly", "GsiAuthenticator"]


class BindOutcome:
    """Result of a bind attempt."""

    __slots__ = ("identity", "server_credentials")

    def __init__(self, identity: str, server_credentials: bytes = b""):
        self.identity = identity
        self.server_credentials = server_credentials


class Authenticator:
    """Interface: authenticate one bind request."""

    def authenticate(
        self, name: str, mechanism: str, credentials: bytes, now: float
    ) -> BindOutcome:
        """Return the authenticated identity or raise AuthError."""
        raise NotImplementedError


class AnonymousOnly(Authenticator):
    """Accepts only anonymous binds (open providers, §7 fourth mode)."""

    def authenticate(
        self, name: str, mechanism: str, credentials: bytes, now: float
    ) -> BindOutcome:
        if mechanism == "simple" and not credentials:
            return BindOutcome(ANONYMOUS)
        raise AuthError(f"mechanism {mechanism!r} not supported here")


class GsiAuthenticator(Authenticator):
    """GSI token binds plus optional simple-password accounts.

    * anonymous simple bind -> ``anonymous``;
    * simple bind with a password -> looked up in *passwords*;
    * SASL mechanism ``GSI`` -> token verified against the trust store;
      when the server holds its own credential, a mutual-auth token is
      returned in the bind response.
    """

    MECHANISM = "GSI"

    def __init__(
        self,
        trust: TrustStore,
        service_name: str,
        server_credential: Optional[Credential] = None,
        passwords: Optional[Dict[str, Tuple[str, str]]] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.trust = trust
        self.service_name = service_name
        self.server_credential = server_credential
        # passwords: bind-name -> (password, identity)
        self.passwords = dict(passwords or {})
        self._clock = clock

    def authenticate(
        self, name: str, mechanism: str, credentials: bytes, now: float
    ) -> BindOutcome:
        if self._clock is not None:
            now = self._clock()
        if mechanism == "simple":
            if not credentials:
                return BindOutcome(ANONYMOUS)
            want = self.passwords.get(name)
            if want is None or want[0] != credentials.decode("utf-8", "replace"):
                raise AuthError(f"invalid credentials for {name!r}")
            return BindOutcome(want[1])
        if mechanism == self.MECHANISM:
            identity = verify_token(credentials, self.trust, self.service_name, now)
            proof = b""
            if self.server_credential is not None:
                proof = make_token(self.server_credential, identity, now)
            return BindOutcome(identity, proof)
        raise AuthError(f"mechanism {mechanism!r} not supported")
