"""GSI substitute: RSA signatures, certificates, ACLs, SASL binds.

Behavioural stand-in for the Grid Security Infrastructure the paper
integrates (§7, §10.2): real asymmetric signatures and chain validation
(textbook RSA — see DESIGN.md for the substitution rationale), proxy
delegation, mutual-auth bind tokens, signed GRRP messages, and the four
provider/directory trust postures as access policies.
"""

from .acl import (
    ANONYMOUS,
    AccessPolicy,
    AccessRule,
    Groups,
    attribute_restricted_policy,
    authenticated_policy,
    existence_only_policy,
    open_policy,
)
from .certs import (
    CertError,
    Certificate,
    CertificateAuthority,
    Credential,
    credential_from_json,
    credential_to_json,
    verify_chain,
)
from .gsi import (
    AuthError,
    TrustStore,
    make_token,
    sign_message,
    verify_message,
    verify_token,
)
from .rsa import KeyPair, PrivateKey, PublicKey, generate_keypair
from .sasl import AnonymousOnly, Authenticator, BindOutcome, GsiAuthenticator

__all__ = [
    "ANONYMOUS",
    "AccessPolicy",
    "AccessRule",
    "Groups",
    "attribute_restricted_policy",
    "authenticated_policy",
    "existence_only_policy",
    "open_policy",
    "CertError",
    "Certificate",
    "CertificateAuthority",
    "Credential",
    "credential_from_json",
    "credential_to_json",
    "verify_chain",
    "AuthError",
    "TrustStore",
    "make_token",
    "sign_message",
    "verify_message",
    "verify_token",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "generate_keypair",
    "AnonymousOnly",
    "Authenticator",
    "BindOutcome",
    "GsiAuthenticator",
]
