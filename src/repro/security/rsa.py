"""Textbook RSA signatures over SHA-256 digests.

This is the asymmetric primitive under the GSI stand-in: real key
generation, real modular-exponentiation signatures, deterministic
verification — but no padding scheme hardening (no PSS/OAEP) and small
keys in tests for speed.  The paper's security architecture (§7) needs
*behaviour* — signed registrations, certificate chains, mutual
authentication — not production cryptography; see DESIGN.md.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional

from .numtheory import generate_prime, modinv

__all__ = ["PublicKey", "PrivateKey", "KeyPair", "generate_keypair"]

_F4 = 65537


@dataclass(frozen=True)
class PublicKey:
    n: int
    e: int

    def verify(self, message: bytes, signature: int) -> bool:
        """Check sig^e mod n equals the message digest."""
        if not 0 < signature < self.n:
            return False
        digest = _digest_int(message, self.n)
        return pow(signature, self.e, self.n) == digest

    def to_dict(self) -> dict:
        return {"n": self.n, "e": self.e}

    @classmethod
    def from_dict(cls, data: dict) -> "PublicKey":
        return cls(int(data["n"]), int(data["e"]))

    def fingerprint(self) -> str:
        raw = f"{self.n}:{self.e}".encode()
        return hashlib.sha256(raw).hexdigest()[:16]


@dataclass(frozen=True)
class PrivateKey:
    n: int
    d: int

    def sign(self, message: bytes) -> int:
        digest = _digest_int(message, self.n)
        return pow(digest, self.d, self.n)


@dataclass(frozen=True)
class KeyPair:
    public: PublicKey
    private: PrivateKey


def _digest_int(message: bytes, n: int) -> int:
    """SHA-256 digest as an integer reduced below the modulus."""
    h = hashlib.sha256(message).digest()
    return int.from_bytes(h, "big") % n


def generate_keypair(bits: int = 512, rng: Optional[random.Random] = None) -> KeyPair:
    """Generate an RSA keypair with public exponent 65537."""
    rng = rng or random.Random()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _F4 == 0:
            continue
        d = modinv(_F4, phi)
        return KeyPair(PublicKey(n, _F4), PrivateKey(n, d))
