"""The GIIS backend: MDS-2's aggregate directory framework (§10.4).

"The GIIS framework comprises three major components: generic GRRP
handling, pluggable index construction, and pluggable search handling."

* **GRRP handling** — AddRequests carrying ``giisregistration`` entries
  are decoded as GRRP messages and fed to a
  :class:`~repro.grip.registry.SoftStateRegistry`; "these actions
  comprise little more than management of a list of active providers."
* **Pluggable indexes** — objects implementing :class:`GiisIndex` get
  registration/expiry callbacks; the relational directory
  (:mod:`repro.giis.relational`) uses them to pull provider state with
  follow-up GRIP queries.
* **Search handling** — the default is *chaining*: "GRIP requests
  directed to the GIIS are simply forwarded on to the appropriate
  information provider for response", merged, and returned.  A referral
  mode instead "return[s] the name of the information provider directly
  to the client in the form of a LDAP URL"; per-query result caching is
  available as in the framework.

The GIIS is itself an information provider: it serves its own suffix
entry plus one entry per active registration, so hierarchical discovery
(Figure 5) and name services can enumerate VO members with plain GRIP.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..grip.messages import GrrpError, GrrpMessage, NotificationType, registration_dn
from ..grip.registry import Registration, SoftStateRegistry
from ..ldap.backend import (
    Backend,
    ChangeCallback,
    ChangeType,
    RequestContext,
    SearchHandle,
    SearchOutcome,
    Subscription,
    _in_scope,
)
from ..ldap.attributes import CASE_EXACT
from ..ldap.executor import CancelToken
from ..ldap.filter import compile_filter
from ..ldap.client import LdapClient, SearchResult
from ..ldap.pool import LdapClientPool
from ..ldap.dn import DN, RDN
from ..ldap.index import AttributeIndex
from ..ldap.entry import Entry
from ..ldap.protocol import (
    AddRequest,
    LdapResult,
    RawEntry,
    ResultCode,
    SearchRequest,
)
from ..ldap.storage import ChangeOp, StorageEngine
from ..ldap.url import LdapUrl
from ..net.clock import Clock
from ..net.transport import Connection, ConnectionClosed, TransportError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import parse_traceparent

__all__ = [
    "GiisIndex",
    "RegistrationSuffixIndex",
    "GiisBackend",
    "Connector",
    "CHAIN_DEPTH_OID",
    "MALFORMED_CHAIN_DEPTH",
]

# Dial a provider by its service URL; raises ConnectionClosed on failure.
Connector = Callable[[LdapUrl], Connection]

# Private control carrying the chaining hop count, so misconfigured
# directory cycles (A registered with B registered with A) terminate
# instead of recursing until every timeout fires.
CHAIN_DEPTH_OID = "1.3.6.1.4.1.57264.1.1"

# Depth reported for an unparseable depth control.  Malformed controls
# must fail *closed* (as if already at the limit): treating them as a
# fresh query would let every hop around a cycle reset the count to
# zero, recursing forever on any peer that garbles the control.
MALFORMED_CHAIN_DEPTH = 1 << 30


def _read_chain_depth(controls) -> int:
    from ..ldap import ber

    for control in controls:
        if getattr(control, "oid", None) == CHAIN_DEPTH_OID:
            try:
                return ber.decode_integer(ber.decode_tlv(control.value)[1])
            except Exception:  # noqa: BLE001
                return MALFORMED_CHAIN_DEPTH
    return 0


def _chain_depth_control(depth: int):
    from ..ldap import ber
    from ..ldap.protocol import Control

    return Control(CHAIN_DEPTH_OID, False, ber.encode_integer(depth))


class GiisIndex:
    """Interface for pluggable index construction (§10.4)."""

    def attach(self, giis: "GiisBackend") -> None:
        """Called once when plugged into a GIIS."""

    def on_register(self, registration: Registration) -> None:
        """A new provider joined."""

    def on_refresh(self, registration: Registration) -> None:
        """An existing registration was refreshed."""

    def on_expire(self, registration: Registration) -> None:
        """A registration timed out (soft-state purge)."""

    def on_unregister(self, registration: Registration) -> None:
        """A provider explicitly left."""


def _canonical_dn(dn: DN) -> str:
    """A canonical string form two equal DNs always share.

    ``str(dn)`` is not canonical (AVA order in multi-valued RDNs, case,
    whitespace), so the registrant-selection index keys postings by the
    repr of the normalized RDN tuple instead — exact by construction.
    """
    return repr(dn.normalized())


class RegistrationSuffixIndex(GiisIndex):
    """Registrant selection on the shared :class:`AttributeIndex` engine.

    Query routing must find the registrations whose advertised namespace
    intersects a search base: ``suffix.is_within(base)`` or
    ``base.is_within(suffix)``.  Instead of DN-comparing every active
    registration per query, each registration (keyed by service URL) is
    indexed under two synthetic attributes:

    * ``regwithin`` — the canonical form of every ancestor-or-self of
      its suffix, so one posting lookup on the query base yields all
      suffixes *within* the base;
    * ``regsuffix`` — the canonical suffix itself, probed with the query
      base's ancestor-or-self chain to find suffixes *containing* the
      base.

    Both use exact matching over canonical DN forms, so the candidate
    set equals the DN-math answer (callers still intersect it with the
    swept active list, which handles expiry).
    """

    WITHIN = "regwithin"
    EXACT = "regsuffix"

    def __init__(self):
        self._index = AttributeIndex(
            (self.WITHIN, self.EXACT),
            rules={self.WITHIN: CASE_EXACT, self.EXACT: CASE_EXACT},
        )
        self._lock = threading.Lock()

    def _values(self, registration: Registration) -> Dict[str, List[str]]:
        suffix = registration.suffix_dn
        chain = [_canonical_dn(suffix)]
        chain.extend(_canonical_dn(a) for a in suffix.ancestors())
        return {self.WITHIN: chain, self.EXACT: [_canonical_dn(suffix)]}

    def _reindex(self, registration: Registration) -> None:
        try:
            values = self._values(registration)
        except Exception:  # noqa: BLE001 - malformed suffix: route via scan
            values = {}
        with self._lock:
            self._index.discard(registration.service_url)
            self._index.add(registration.service_url, lambda a: values.get(a, ()))

    def on_register(self, registration: Registration) -> None:
        self._reindex(registration)

    def on_refresh(self, registration: Registration) -> None:
        # A refresh may legitimately advertise a new suffix (§5.2).
        self._reindex(registration)

    def on_expire(self, registration: Registration) -> None:
        with self._lock:
            self._index.discard(registration.service_url)

    def on_unregister(self, registration: Registration) -> None:
        self.on_expire(registration)

    def rebuild(self, registrations: Iterable[Registration]) -> None:
        with self._lock:
            self._index.clear()
        for registration in registrations:
            self._reindex(registration)

    def targets(self, base: DN) -> Set[str]:
        """Service URLs whose namespace intersects *base*."""
        probes = [_canonical_dn(base)]
        probes.extend(_canonical_dn(a) for a in base.ancestors())
        with self._lock:
            eligible: Set[str] = set(
                self._index.equality(self.WITHIN, probes[0]) or ()
            )
            for probe in probes:
                hit = self._index.equality(self.EXACT, probe)
                if hit:
                    eligible.update(hit)
        return eligible

    def __len__(self) -> int:
        return len(self._index)


class _QueryCacheSlot:
    __slots__ = ("outcome", "created_at")

    def __init__(self, outcome: SearchOutcome, created_at: float):
        self.outcome = outcome
        self.created_at = created_at


class GiisBackend(Backend):
    """A Grid Index Information Service."""

    def __init__(
        self,
        suffix: DN | str,
        clock: Clock,
        connector: Optional[Connector] = None,
        url: Optional[LdapUrl] = None,
        mode: str = "chain",  # 'chain' or 'referral'
        child_timeout: float = 5.0,
        cache_ttl: float = 0.0,
        registration_grace: float = 0.0,
        purge_interval: Optional[float] = None,
        accept: Optional[Callable[[GrrpMessage, Optional[str]], bool]] = None,
        vo_name: str = "",
        credential=None,
        max_chain_depth: int = 8,
        metrics: Optional[MetricsRegistry] = None,
        max_query_cache: int = 256,
        tracer=None,
        index_attrs: Iterable[str] = (),
        pool_size: int = 2,
        storage: Optional[StorageEngine] = None,
        relay: bool = True,
    ):
        if mode not in ("chain", "referral"):
            raise ValueError(f"unknown GIIS mode {mode!r}")
        self.suffix = DN.of(suffix)
        # Zero re-encode relay: when the front end marks a request
        # transparent, streamed child frames are forwarded verbatim
        # (message id re-stamped, entry bytes untouched).  Off switches
        # the streaming path to decode-then-forward, for debugging and
        # for A/B measurement (benchmark E23).
        self.relay = relay
        self.clock = clock
        self.connector = connector
        self.url = url
        self.mode = mode
        self.child_timeout = child_timeout
        self.cache_ttl = cache_ttl
        self.vo_name = vo_name or str(self.suffix)
        # §10.4: "the GIIS can also bind using a trusted server
        # credential, [so] each GRIS may export some data that it trusts
        # the GIIS to handle properly."  When set, every child
        # connection is opened with a GSI bind as this credential.
        self.credential = credential
        self.max_chain_depth = max_chain_depth
        if max_query_cache < 1:
            raise ValueError("max_query_cache must be >= 1")
        self.max_query_cache = max_query_cache
        self.tracer = tracer
        # Chaining fan-out instrumentation; the stats_* names below are
        # kept as read-only compatibility views over these counters.
        self.metrics = metrics or MetricsRegistry()
        self._chained = self.metrics.counter("giis.chained")
        self._child_errors = self.metrics.counter("giis.child.errors")
        self._child_timeouts = self.metrics.counter("giis.child.timeouts")
        self._depth_limited = self.metrics.counter("giis.depth_limited")
        self._qcache_hits = self.metrics.counter("giis.query_cache.hits")
        self._qcache_misses = self.metrics.counter("giis.query_cache.misses")
        self._qcache_evictions = self.metrics.counter("giis.query_cache.evictions")
        self.metrics.gauge_fn("giis.query_cache.size", lambda: len(self._query_cache))
        self._chain_cancelled = self.metrics.counter("giis.chain.cancelled")
        self._relay_entries = self.metrics.counter("giis.relay.entries")
        self._relay_fallback = self.metrics.counter("giis.relay.fallback")
        self._child_abandoned = self.metrics.counter("giis.child.abandoned")
        self._child_latency = self.metrics.histogram("giis.child.seconds")
        self._fanout = self.metrics.histogram(
            "giis.fanout", buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256)
        )
        self.registry = SoftStateRegistry(
            clock,
            grace=registration_grace,
            purge_interval=purge_interval,
            on_register=self._fan_register,
            on_expire=self._fan_expire,
            on_unregister=self._fan_unregister,
            accept=accept,
            metrics=self.metrics,
        )
        self.indexes: List[GiisIndex] = []
        # Default index_attrs for attached indexes that materialize
        # entries (e.g. EntryCacheIndex) but don't pick their own.
        self.index_attrs = tuple(index_attrs)
        # Registrant selection: maintained from the same hooks as the
        # pluggable indexes, consulted by _targets instead of per-query
        # DN math over every active registration.
        self._reg_index = RegistrationSuffixIndex()
        # Persistent child connections: chained queries pipeline over a
        # few warm sockets per child instead of dialing per query.
        self.pool = LdapClientPool(
            self._dial_child, size=pool_size, metrics=self.metrics
        )
        # LRU over query outcomes: most-recently-hit keys live at the
        # tail, eviction pops the head.
        self._query_cache: "OrderedDict[Tuple, _QueryCacheSlot]" = OrderedDict()
        self._subs: Dict[int, Tuple[SearchRequest, int, ChangeCallback]] = {}
        self._next_sub = 0
        # Durable registration state: every membership change is
        # mirrored into the engine as the registration *entry* (the
        # same post-image the GIIS serves), so a restart replays the
        # membership list instead of waiting a full soft-state refresh
        # cycle to repopulate.
        self.storage = storage
        self._recovering = False
        self.replayed_registrations = 0
        # Self-monitoring (§6 meta-monitoring): when a HealthModel is
        # attached, local_entries() carries this GIIS's own
        # Mds-Server-* entry, so a parent directory aggregates it
        # through the same GRIP chaining as any resource data.
        self._self_monitor = None
        if self.storage is not None:
            self._recover_registrations()

    # Compatibility views over the registry-backed counters.

    @property
    def stats_chained(self) -> int:
        return int(self._chained.value)

    @property
    def stats_child_errors(self) -> int:
        return int(self._child_errors.value)

    @property
    def stats_child_timeouts(self) -> int:
        return int(self._child_timeouts.value)

    @property
    def stats_cache_hits(self) -> int:
        return int(self._qcache_hits.value)

    @property
    def stats_depth_limited(self) -> int:
        return int(self._depth_limited.value)

    # -- index plumbing --------------------------------------------------------

    def add_index(self, index: GiisIndex) -> None:
        self.indexes.append(index)
        index.attach(self)

    def _fan_register(self, registration: Registration) -> None:
        self._query_cache.clear()
        self._reg_index.on_register(registration)
        for index in self.indexes:
            index.on_register(registration)
        self._persist_put(registration)
        self._notify_subs(self._registration_entry(registration), ChangeType.ADD)

    def _fan_expire(self, registration: Registration) -> None:
        self._query_cache.clear()
        self._reg_index.on_expire(registration)
        for index in self.indexes:
            index.on_expire(registration)
        self._persist_delete(registration)
        self._notify_subs(self._registration_entry(registration), ChangeType.DELETE)

    def _fan_unregister(self, registration: Registration) -> None:
        self._query_cache.clear()
        self._reg_index.on_unregister(registration)
        for index in self.indexes:
            index.on_unregister(registration)
        self._persist_delete(registration)
        self._notify_subs(self._registration_entry(registration), ChangeType.DELETE)

    # -- durable registration state --------------------------------------------

    def _persist_put(self, registration: Registration) -> None:
        if self.storage is None or self._recovering:
            return
        self.storage.apply(ChangeOp.put(self._registration_entry(registration)))

    def _persist_delete(self, registration: Registration) -> None:
        if self.storage is None or self._recovering:
            return
        dn = registration_dn(registration.service_url, self.suffix)
        self.storage.apply(ChangeOp.delete(dn))

    def _recover_registrations(self) -> None:
        """Warm restart: replay persisted registrations into the registry.

        Each stored entry is decoded back to its GRRP message and pushed
        through the normal ``registry.apply`` intake, so VO membership
        policy and expiry both re-run: entries whose lifetime lapsed
        while the server was down are rejected there and purged from
        storage — soft-state semantics hold across restarts.  The
        ``_recovering`` guard keeps the register hooks from writing the
        very entries being replayed back to disk.
        """
        self._recovering = True
        try:
            self.storage.replay()
            for entry in list(self.storage.entries.values()):
                if not GrrpMessage.is_registration_entry(entry):
                    self.storage.apply(ChangeOp.delete(entry.dn))
                    continue
                try:
                    message = GrrpMessage.from_entry(entry)
                except GrrpError:
                    self.storage.apply(ChangeOp.delete(entry.dn))
                    continue
                identity = entry.first("regsource")
                if identity == "unknown":
                    identity = None
                if self.registry.apply(message, identity):
                    self.replayed_registrations += 1
                else:
                    self.storage.apply(ChangeOp.delete(entry.dn))
        finally:
            self._recovering = False

    # -- GRRP intake (the write path) --------------------------------------------

    def add(self, req: AddRequest, ctx: RequestContext) -> LdapResult:
        entry = req.to_entry()
        if not GrrpMessage.is_registration_entry(entry):
            return LdapResult(
                ResultCode.UNWILLING_TO_PERFORM,
                message="GIIS accepts only GRRP registration entries",
            )
        try:
            message = GrrpMessage.from_entry(entry)
        except GrrpError as exc:
            return LdapResult(ResultCode.PROTOCOL_ERROR, message=str(exc))
        return self.apply_grrp(message, ctx.identity)

    def apply_grrp(
        self, message: GrrpMessage, identity: Optional[str] = None
    ) -> LdapResult:
        """GRRP intake independent of transport (datagram or LDAP Add)."""
        span = None
        if self.tracer is not None:
            # REGISTER messages triggered by an invitation carry the
            # inviter's trace context, correlating intake with cause.
            remote = (
                parse_traceparent(message.trace_context)
                if message.trace_context
                else None
            )
            span = self.tracer.start(
                "grrp.intake",
                remote=remote,
                url=message.service_url,
                type=message.notification_type,
            )
        try:
            result = self._apply_grrp(message, identity)
            if span is not None:
                span.tag("code", result.code)
            return result
        finally:
            if span is not None:
                span.finish()

    def _apply_grrp(
        self, message: GrrpMessage, identity: Optional[str] = None
    ) -> LdapResult:
        was_known = self.registry.lookup(message.service_url) is not None
        changed = self.registry.apply(message, identity)
        if (
            not changed
            and message.notification_type == NotificationType.REGISTER
            and not was_known
        ):
            return LdapResult(
                ResultCode.INSUFFICIENT_ACCESS_RIGHTS,
                message="registration refused by VO membership policy",
            )
        if changed and was_known:
            registration = self.registry.lookup(message.service_url)
            if registration is not None:
                self._reg_index.on_refresh(registration)
                for index in self.indexes:
                    index.on_refresh(registration)
                # Refreshes extend valid_until; without re-persisting,
                # recovery would resurrect the stale lifetime and purge
                # a registrant that was alive moments before the crash.
                self._persist_put(registration)
        return LdapResult()

    def handle_grrp_datagram(self, source, payload: bytes) -> None:
        """Datagram-transport GRRP intake (bind to ``node.on_datagram``)."""
        try:
            message = GrrpMessage.from_bytes(payload)
        except GrrpError:
            return
        self.apply_grrp(message)

    # -- local view ---------------------------------------------------------------

    def _registration_entry(self, registration: Registration) -> Entry:
        entry = registration.message.to_entry(self.suffix)
        entry.put("regsource", registration.source_identity or "unknown")
        return entry

    def local_entries(self) -> List[Entry]:
        """The entries the GIIS itself serves: suffix + registrations."""
        suffix_entry = Entry(
            self.suffix,
            objectclass=["organization"] if self.suffix.rdns else ["top"],
        )
        if self.suffix.rdns:
            suffix_entry.put(self.suffix.rdn.attr, self.suffix.rdn.value)
        suffix_entry.put("description", f"GIIS for {self.vo_name}")
        if self.url is not None:
            suffix_entry.add_value("objectclass", "service")
            suffix_entry.put("url", str(self.url))
        out = [suffix_entry]
        if self._self_monitor is not None:
            health = self._self_monitor
            rdn = RDN.single(
                "mds-server-name", health.server_id or self.vo_name
            )
            out.append(health.entry(DN((rdn,) + self.suffix.rdns)))
        for registration in self.registry.active():
            out.append(self._registration_entry(registration))
        return out

    def enable_self_monitor(self, health) -> None:
        """Publish this GIIS's own health as a local entry.

        *health* is an :class:`~repro.obs.health.HealthModel`; its
        ``mds-server-name=<id>`` entry joins the registration entries
        this GIIS serves, so fleet health rolls up the Figure-5
        hierarchy through ordinary chained searches.
        """
        self._self_monitor = health

    def children(self) -> List[Registration]:
        return self.registry.active()

    # -- search handling -------------------------------------------------------------

    def _targets(self, req: SearchRequest) -> List[Registration]:
        """Registrations whose advertised namespace intersects the query."""
        base = req.base_dn()
        active = self.registry.active()
        if len(self._reg_index) != len(active):
            # Registrations that bypassed the hook path (tests poking the
            # registry, malformed-suffix entries): rebuild and stay exact.
            self._reg_index.rebuild(active)
        eligible = self._reg_index.targets(base)
        # Membership order (= registry order) is preserved: chaining
        # fan-out and merge precedence depend on it.
        return [r for r in active if r.service_url in eligible]

    def naming_contexts(self):
        return [str(self.suffix)]

    def search(self, req: SearchRequest, ctx: RequestContext) -> SearchOutcome:
        """Synchronous shim: sees only the local view (no chaining)."""
        return self._local_outcome(req)

    def _local_outcome(self, req: SearchRequest) -> SearchOutcome:
        base = req.base_dn()
        match = compile_filter(req.filter)
        entries = [
            e
            for e in self.local_entries()
            if _in_scope(e.dn, base, req.scope) and match(e)
        ]
        return SearchOutcome(entries=entries)

    def submit_search(
        self,
        req: SearchRequest,
        ctx: RequestContext,
        done: Callable[[SearchOutcome], None],
    ) -> SearchHandle:
        token = ctx.token if ctx.token is not None else CancelToken()
        handle = SearchHandle(token)
        base = req.base_dn()
        if not (base.is_within(self.suffix) or self.suffix.is_within(base)):
            done(
                SearchOutcome(
                    result=LdapResult(
                        ResultCode.NO_SUCH_OBJECT, matched_dn=str(self.suffix)
                    )
                )
            )
            return handle

        trace = getattr(ctx, "trace", None)
        cache_key = None
        if self.cache_ttl > 0:
            cache_key = (str(base).lower(), int(req.scope), str(req.filter))
            slot = self._query_cache.get(cache_key)
            if (
                slot is not None
                and self.clock.now() - slot.created_at <= self.cache_ttl
            ):
                self._query_cache.move_to_end(cache_key)
                self._qcache_hits.inc()
                if trace is not None:
                    trace.child("giis.cache", hit=True).finish()
                done(_copy_outcome(slot.outcome))
                return handle
            self._qcache_misses.inc()
            self._sweep_query_cache(self.clock.now())

        targets = self._targets(req)
        local = self._local_outcome(req)

        if self.mode == "referral":
            referrals = [
                _child_url(registration) for registration in targets
            ]
            done(SearchOutcome(entries=local.entries, referrals=referrals))
            return handle

        depth = _read_chain_depth(ctx.controls)
        if depth >= self.max_chain_depth:
            # Cycle or pathological hierarchy: answer with the local
            # view instead of recursing (partial results, §2.2).
            self._depth_limited.inc()
            done(local)
            return handle

        if self.connector is None or not targets:
            done(local)
            return handle

        self._fanout.observe(len(targets))
        chain_span = (
            trace.child("giis.chain", fanout=len(targets))
            if trace is not None
            else None
        )
        collector = _Collector(
            self,
            req,
            local,
            len(targets),
            done,
            cache_key,
            span=chain_span,
            token=token,
        )
        # Abandon/Unbind/disconnect/deadline all land here: stop waiting
        # on children, cancel their timers, Abandon whatever is still in
        # flight, and never call done().
        token.on_cancel(collector.abort)
        # The parent's size budget is forwarded only when the front end
        # serves child results verbatim (transparent policy, no
        # projection) and the outcome is not headed for the query cache
        # (a truncated outcome must not satisfy later, larger queries —
        # the cache key carries no size limit).  Sorted-merge prefix
        # argument: any entry in the global first-*limit* lies in the
        # first *limit* of its own child, so per-child truncation never
        # changes the parent's answer.
        budget = (
            req.size_limit
            if getattr(ctx, "transparent", False) and cache_key is None
            else 0
        )
        for registration in targets:
            if collector.finished:
                break  # aborted while fanning out
            self._chain_to(
                registration, req, collector, depth + 1, chain_span, budget
            )
        return handle

    def submit_search_stream(
        self,
        req: SearchRequest,
        ctx: RequestContext,
        on_entry: Callable[[object], None],
        on_done: Callable[[SearchOutcome], None],
    ) -> SearchHandle:
        """Chaining with per-entry delivery — the zero re-encode relay.

        Child answers are forwarded to *on_entry* as they arrive instead
        of being buffered, merged, and sorted.  When the front end
        declared the request transparent (``ctx.transparent``) and
        :attr:`relay` is on, streamed child frames are forwarded as
        undecoded :class:`~repro.ldap.protocol.RawEntry` objects: the
        parent re-stamps the message id and never decodes or re-encodes
        the entry.  Otherwise each frame is decoded once and handed over
        as an :class:`Entry` for the front end to filter and project.

        Output order is arrival order (local view first); DN-level
        de-duplication keeps the entry *set* identical to the buffered
        merge.  Query caching needs the whole outcome in hand, so
        ``cache_ttl > 0`` — like referral mode, which never chains —
        falls back to the buffered path through the base adapter.
        """
        if self.mode != "chain" or self.cache_ttl > 0:
            if self.mode == "chain" and getattr(ctx, "transparent", False):
                self._relay_fallback.inc()
            return super().submit_search_stream(req, ctx, on_entry, on_done)
        token = ctx.token if ctx.token is not None else CancelToken()
        handle = SearchHandle(token)
        base = req.base_dn()
        if not (base.is_within(self.suffix) or self.suffix.is_within(base)):
            on_done(
                SearchOutcome(
                    result=LdapResult(
                        ResultCode.NO_SUCH_OBJECT, matched_dn=str(self.suffix)
                    )
                )
            )
            return handle

        targets = self._targets(req)
        local = self._local_outcome(req)
        depth = _read_chain_depth(ctx.controls)
        chain = bool(targets) and self.connector is not None
        if depth >= self.max_chain_depth:
            # Cycle or pathological hierarchy: answer with the local
            # view instead of recursing (partial results, §2.2).
            self._depth_limited.inc()
            chain = False

        if not chain:
            for entry in local.entries:
                if token.cancelled:
                    return handle
                on_entry(entry)
            if not token.cancelled:
                on_done(
                    SearchOutcome(entries=[], referrals=list(local.referrals))
                )
            return handle

        transparent = bool(getattr(ctx, "transparent", False))
        relay = self.relay and transparent
        if transparent and not relay:
            self._relay_fallback.inc()
        # Verbatim delivery means no parent-side projection or ACL can
        # drop a child entry, so the parent's size budget is safe to
        # forward; children at their budget answer sizeLimitExceeded,
        # treated as partial success below.
        budget = req.size_limit if transparent else 0
        trace = getattr(ctx, "trace", None)
        self._fanout.observe(len(targets))
        chain_span = (
            trace.child("giis.chain", fanout=len(targets), relay=relay)
            if trace is not None
            else None
        )
        collector = _StreamCollector(
            self,
            len(targets),
            on_entry,
            on_done,
            relay=relay,
            span=chain_span,
            token=token,
        )
        token.on_cancel(collector.abort)
        collector.start(local)
        for registration in targets:
            if collector.finished:
                break  # aborted (or size budget met) while fanning out
            self._chain_to_stream(
                registration, req, collector, depth + 1, chain_span, budget
            )
        return handle

    def _chain_to(
        self,
        registration: Registration,
        req: SearchRequest,
        collector: "_Collector",
        depth: int = 1,
        parent_span=None,
        size_budget: int = 0,
        on_entry: Optional[Callable[[RawEntry], None]] = None,
    ) -> None:
        url = registration.service_url
        client = self._client_for(url)
        if client is None:
            self._child_errors.inc()
            collector.child_failed(url)
            return
        self._chained.inc()
        span = (
            parent_span.child("giis.child", url=url)
            if parent_span is not None
            else None
        )
        started = self.clock.now()
        # Forward without attribute selection: the parent front end
        # filters and projects authoritatively on full entries (a
        # projected entry could no longer match the filter upstream).
        # *size_budget* is the parent's size limit when the caller
        # proved per-child truncation safe, else 0 (unlimited).  The
        # time limit is re-stamped below from this hop's own budget.
        req = replace(req, attributes=(), size_limit=size_budget, time_limit=0)

        def on_timeout() -> None:
            if span is not None:
                span.tag("timeout", True).finish()
            collector.child_timed_out(url)

        # The per-child timeout never exceeds the request's remaining
        # deadline budget: a child answer arriving after the front end
        # already said TIME_LIMIT_EXCEEDED is useless.
        child_timeout = collector.token.clamp(started, self.child_timeout)
        timer = self.clock.call_later(child_timeout, on_timeout)
        collector.own_timer(url, timer)

        def on_done(result: SearchResult, _error=None) -> None:
            timer.cancel()
            self._child_latency.observe(self.clock.now() - started)
            # A child that filled its forwarded size budget answers
            # sizeLimitExceeded over a *partial entry set* — that is the
            # budget working, not a failure (§2.2 partial results).
            ok = (
                result.result.ok
                or result.result.code == ResultCode.SIZE_LIMIT_EXCEEDED
            )
            if span is not None:
                span.tag("ok", ok).finish()
            if ok:
                collector.child_done(url, result)
            else:
                self._child_errors.inc()
                collector.child_failed(url)

        try:
            msg_id = client.search_async(
                req,
                on_done,
                controls=(_chain_depth_control(depth),),
                deadline=child_timeout,
                trace=span,
                on_entry=on_entry,
            )
        except Exception:  # noqa: BLE001 - connection died under us
            timer.cancel()
            if span is not None:
                span.tag("error", "send failed").finish()
            self.pool.discard(url, client)
            self._child_errors.inc()
            collector.child_failed(url)
            return
        collector.own_child(url, client, msg_id)

    def _chain_to_stream(
        self,
        registration: Registration,
        req: SearchRequest,
        collector: "_StreamCollector",
        depth: int,
        parent_span=None,
        size_budget: int = 0,
    ) -> None:
        """Chain to one child with streamed (per-frame) delivery."""
        url = registration.service_url
        self._chain_to(
            registration,
            req,
            collector,
            depth,
            parent_span,
            size_budget,
            on_entry=lambda raw: collector.child_entry(url, raw),
        )

    def _client_for(self, service_url: str) -> Optional[LdapClient]:
        return self.pool.client_for(service_url)

    def _dial_child(self, service_url: str) -> Optional[LdapClient]:
        """Pool dialer: connect and (when configured) GSI-bind."""
        if self.connector is None:
            return None
        try:
            url = LdapUrl.parse(service_url)
            conn = self.connector(url)
        except (ConnectionClosed, TransportError, ValueError):
            return None
        client = LdapClient(conn)
        if self.credential is not None:
            # Ordered delivery guarantees the bind is processed before
            # any search we send on this connection afterwards.
            from ..security.gsi import make_token

            token = make_token(self.credential, service_url, self.clock.now())
            try:
                client.bind_async(
                    lambda outcome, error: None, mechanism="GSI", credentials=token
                )
            except Exception:  # noqa: BLE001 - connection died already
                # Release the freshly dialed socket and don't hand the
                # half-bound client to the pool, or every retry against
                # a flaky child leaks one connection.
                try:
                    client.unbind()
                except Exception:  # noqa: BLE001 - already torn down
                    pass
                return None
        return client

    def shutdown(self) -> None:
        """Release child connections and flush durable state."""
        self.pool.close()
        if self.storage is not None:
            self.storage.close()

    # -- query-cache hygiene ------------------------------------------------------------

    def _sweep_query_cache(self, now: float) -> None:
        """Evict TTL-expired slots (membership changes clear wholesale).

        Without this, distinct one-off queries accumulate dead slots
        forever in a stable VO; the sweep runs on the miss path so the
        hot hit path stays a single dict probe.
        """
        dead = [
            key
            for key, slot in self._query_cache.items()
            if now - slot.created_at > self.cache_ttl
        ]
        for key in dead:
            del self._query_cache[key]

    def _store_query_result(self, key, slot: _QueryCacheSlot) -> None:
        """Insert one cached outcome, holding the cache to max_query_cache.

        The cache is an LRU: hits and (re)inserts move the key to the
        tail, so eviction pops the least-recently-used head in O(1)
        instead of min-scanning creation times.
        """
        self._query_cache[key] = slot
        self._query_cache.move_to_end(key)
        while len(self._query_cache) > self.max_query_cache:
            self._query_cache.popitem(last=False)
            self._qcache_evictions.inc()

    # -- subscriptions over the membership view -----------------------------------------

    def subscribe(
        self,
        req: SearchRequest,
        ctx: RequestContext,
        push: ChangeCallback,
        change_types: int = ChangeType.ALL,
    ) -> Subscription:
        """Notify on VO membership changes (registration add/expiry)."""
        self._next_sub += 1
        key = self._next_sub
        self._subs[key] = (req, change_types, push)
        return Subscription(lambda: self._subs.pop(key, None))

    def _notify_subs(self, entry: Entry, change: int) -> None:
        for req, change_types, push in list(self._subs.values()):
            if not change_types & change:
                continue
            base = req.base_dn()
            if not _in_scope(entry.dn, base, req.scope):
                continue
            if change != ChangeType.DELETE and not req.filter.matches(entry):
                continue
            push(entry.copy(), change)


class _Collector:
    """Merges chained child results; calls done() exactly once.

    Cancellation-aware: :meth:`abort` (wired to the request's
    :class:`~repro.ldap.executor.CancelToken`) stops the fan-out early —
    outstanding child timers are cancelled, late child answers are
    dropped, and ``done`` is never invoked.
    """

    def __init__(
        self,
        giis: GiisBackend,
        req: SearchRequest,
        local: SearchOutcome,
        pending: int,
        done: Callable[[SearchOutcome], None],
        cache_key,
        span=None,
        token: Optional[CancelToken] = None,
    ):
        self.giis = giis
        self.req = req
        self.done = done
        self.cache_key = cache_key
        self.span = span
        self.token = token if token is not None else CancelToken()
        self.pending = pending
        self.finished = False
        self.merged: Dict[DN, Entry] = {e.dn: e for e in local.entries}
        self.referrals: List[str] = list(local.referrals)
        self.truncated = False
        self.responded: set = set()
        self._timers: Dict[str, object] = {}
        self._children: Dict[str, Tuple[LdapClient, int]] = {}

    def own_timer(self, url: str, timer) -> None:
        """Track one child's timeout timer so abort() can cancel it."""
        if self.finished:
            timer.cancel()
        else:
            self._timers[url] = timer

    def own_child(self, url: str, client: LdapClient, msg_id: int) -> None:
        """Track one in-flight child search so abort() can Abandon it."""
        if self.finished and url not in self.responded:
            self._abandon_child(url, client, msg_id)
        else:
            self._children[url] = (client, msg_id)

    def _abandon_child(self, url: str, client: LdapClient, msg_id: int) -> None:
        self.giis._child_abandoned.inc()
        try:
            client.abandon(msg_id)
        except Exception:  # noqa: BLE001 - connection already gone
            self.giis.pool.discard(url, client)

    def abort(self) -> None:
        if self.finished:
            return
        self.finished = True
        self.giis._chain_cancelled.inc()
        timers, self._timers = self._timers, {}
        for timer in timers.values():
            timer.cancel()
        children, self._children = self._children, {}
        for url, (client, msg_id) in children.items():
            if url not in self.responded:
                self._abandon_child(url, client, msg_id)
        if self.span is not None:
            self.span.tag("cancelled", self.token.reason or True).finish()

    def child_done(self, url: str, result: SearchResult) -> None:
        if url in self.responded:
            return
        self.responded.add(url)
        self._children.pop(url, None)
        if result.result.code == ResultCode.SIZE_LIMIT_EXCEEDED:
            # Partial success: the child truncated (its forwarded size
            # budget, or its own limits), so the merged view is partial
            # and the final result must say so.
            self.truncated = True
        for entry in result.entries:
            self.merged.setdefault(entry.dn, entry)
        self.referrals.extend(result.referrals)
        self._decrement()

    def child_failed(self, url: str) -> None:
        if url in self.responded:
            return
        self.responded.add(url)
        self._children.pop(url, None)
        self._decrement()

    def child_timed_out(self, url: str) -> None:
        if url in self.responded:
            return
        self.responded.add(url)
        self.giis._child_timeouts.inc()
        # The child is still grinding on a query nobody will read —
        # tell it to stop before giving up the slot.
        child = self._children.pop(url, None)
        if child is not None:
            self._abandon_child(url, *child)
        self._decrement()

    def _decrement(self) -> None:
        if self.finished:
            return
        self.pending -= 1
        if self.pending > 0:
            return
        self.finished = True
        if self.span is not None:
            self.span.finish()
        entries = sorted(
            self.merged.values(), key=lambda e: e.dn.sort_key
        )
        outcome = SearchOutcome(
            entries=entries,
            referrals=self.referrals,
            result=(
                LdapResult(ResultCode.SIZE_LIMIT_EXCEEDED)
                if self.truncated
                else LdapResult()
            ),
        )
        if self.cache_key is not None:
            self.giis._store_query_result(
                self.cache_key,
                _QueryCacheSlot(_copy_outcome(outcome), self.giis.clock.now()),
            )
        self.done(outcome)


class _StreamCollector:
    """Streams merged child results; calls on_done() exactly once.

    The streaming counterpart of :class:`_Collector`: entries are
    forwarded to the front end as they arrive — local view first, then
    children in arrival order — instead of being buffered and sorted.
    First writer wins on DN collisions, so the delivered entry *set*
    matches the buffered merge.

    Child connections deliver on independent receive threads, so every
    callback serializes under one lock — reentrant, because forwarding
    an entry can trip the front end's size limit, which cancels the
    request token and re-enters :meth:`abort` on this same stack.
    """

    def __init__(
        self,
        giis: GiisBackend,
        pending: int,
        on_entry: Callable[[object], None],
        on_done: Callable[[SearchOutcome], None],
        relay: bool,
        span=None,
        token: Optional[CancelToken] = None,
    ):
        self.giis = giis
        self.on_entry = on_entry
        self.on_done = on_done
        self.relay = relay
        self.span = span
        self.token = token if token is not None else CancelToken()
        self.pending = pending
        self.finished = False
        self.seen: Set[DN] = set()
        self.referrals: List[str] = []
        self.truncated = False
        self.responded: set = set()
        self._timers: Dict[str, object] = {}
        self._children: Dict[str, Tuple[LdapClient, int]] = {}
        self._lock = threading.RLock()

    def start(self, local: SearchOutcome) -> None:
        """Stream the local view, seeding DN de-duplication."""
        with self._lock:
            self.referrals.extend(local.referrals)
            for entry in local.entries:
                if self.finished or self.token.cancelled:
                    return
                self.seen.add(entry.dn)
                self.on_entry(entry)

    def own_timer(self, url: str, timer) -> None:
        with self._lock:
            if self.finished:
                timer.cancel()
            else:
                self._timers[url] = timer

    def own_child(self, url: str, client: LdapClient, msg_id: int) -> None:
        with self._lock:
            if self.finished and url not in self.responded:
                self._abandon_child(url, client, msg_id)
            else:
                self._children[url] = (client, msg_id)

    def _abandon_child(self, url: str, client: LdapClient, msg_id: int) -> None:
        self.giis._child_abandoned.inc()
        try:
            client.abandon(msg_id)
        except Exception:  # noqa: BLE001 - connection already gone
            self.giis.pool.discard(url, client)

    def abort(self) -> None:
        with self._lock:
            if self.finished:
                return
            self.finished = True
            self.giis._chain_cancelled.inc()
            timers, self._timers = self._timers, {}
            for timer in timers.values():
                timer.cancel()
            children, self._children = self._children, {}
            for url, (client, msg_id) in children.items():
                if url not in self.responded:
                    self._abandon_child(url, client, msg_id)
            if self.span is not None:
                self.span.tag("cancelled", self.token.reason or True).finish()

    def _forward(self, item) -> None:
        """Dedup one entry by DN and hand it to the front end.

        Caller holds the lock.  A relayed :class:`RawEntry` costs one
        DN-peek parse; the decoded lane pays one full decode.
        """
        if isinstance(item, RawEntry):
            key = DN.parse(item.dn)
            if key in self.seen:
                return
            self.seen.add(key)
            if self.relay:
                self.giis._relay_entries.inc()
                self.on_entry(item)
            else:
                self.on_entry(item.to_entry())
            return
        if item.dn in self.seen:
            return
        self.seen.add(item.dn)
        self.on_entry(item)

    def child_entry(self, url: str, item) -> None:
        """One streamed child frame, straight off the receive path."""
        with self._lock:
            if self.finished or url in self.responded:
                return
            self._forward(item)

    def child_done(self, url: str, result: SearchResult) -> None:
        with self._lock:
            if self.finished or url in self.responded:
                return
            self.responded.add(url)
            self._children.pop(url, None)
            if result.result.code == ResultCode.SIZE_LIMIT_EXCEEDED:
                # Partial success (§2.2): the child truncated at its
                # forwarded size budget, so the merged answer is partial
                # and the final result must carry sizeLimitExceeded.
                self.truncated = True
            # Streamed searches conclude with an empty entry list; a
            # buffered child answer (if any) merges through the same
            # dedup lane.
            for entry in result.entries:
                if self.finished:
                    break
                self._forward(entry)
            self.referrals.extend(result.referrals)
            self._decrement()

    def child_failed(self, url: str) -> None:
        with self._lock:
            if self.finished or url in self.responded:
                return
            self.responded.add(url)
            self._children.pop(url, None)
            self._decrement()

    def child_timed_out(self, url: str) -> None:
        with self._lock:
            if self.finished or url in self.responded:
                return
            self.responded.add(url)
            self.giis._child_timeouts.inc()
            child = self._children.pop(url, None)
            if child is not None:
                self._abandon_child(url, *child)
            self._decrement()

    def _decrement(self) -> None:
        if self.finished:
            return
        self.pending -= 1
        if self.pending > 0:
            return
        self.finished = True
        if self.span is not None:
            self.span.finish()
        self.on_done(
            SearchOutcome(
                entries=[],
                referrals=self.referrals,
                result=(
                    LdapResult(ResultCode.SIZE_LIMIT_EXCEEDED)
                    if self.truncated
                    else LdapResult()
                ),
            )
        )


def _child_url(registration: Registration) -> str:
    """The referral URI for one registered provider."""
    suffix = registration.message.metadata.get("suffix", "")
    try:
        url = LdapUrl.parse(registration.service_url)
        if suffix:
            url = url.with_dn(suffix)
        return str(url)
    except ValueError:
        return registration.service_url


def _copy_outcome(outcome: SearchOutcome) -> SearchOutcome:
    return SearchOutcome(
        entries=[e.copy() for e in outcome.entries],
        referrals=list(outcome.referrals),
        result=outcome.result,
    )
