"""Configuring information services: finding directories to join (§9).

The paper lists three ways a provider learns which aggregate directories
to register with:

* **Manual configuration** — :mod:`repro.gris.config` (the
  ``registrations`` section of a GRIS config file);
* **Automated discovery based on a hierarchical discovery service** —
  :func:`discover_directories` searches an existing hierarchy for GIIS
  service entries and returns their URLs;
* **Automated discovery based on other information services** — "clients
  can use SLP to locate a default local directory from which to initiate
  VO resource discovery": :class:`SlpDirectoryAdvertiser` makes a GIIS
  answer SLP-style multicast queries, and :func:`discover_via_slp` finds
  one from a fresh node.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..baselines.multicast import MulticastDiscoveryClient, MulticastResponder
from ..ldap.client import LdapClient
from ..ldap.dit import Scope
from ..ldap.entry import Entry
from ..ldap.url import LdapUrl, LdapUrlError
from ..net.clock import Clock
from ..net.simnet import SimNode

__all__ = [
    "discover_directories",
    "SlpDirectoryAdvertiser",
    "discover_via_slp",
]


def discover_directories(
    client: LdapClient,
    base: str = "",
    vo: Optional[str] = None,
    timeout: float = 10.0,
) -> List[LdapUrl]:
    """Find aggregate directories by searching a discovery hierarchy.

    GIIS suffix entries carry ``objectclass: service`` with their GRIP
    URL and a ``GIIS for <vo>`` description; any reachable directory
    (often a well-known root) can therefore enumerate the directories
    below it.  Returns the parsed URLs, optionally filtered by VO name.
    """
    filt = "(&(objectclass=service)(description=GIIS*))"
    if vo is not None:
        filt = f"(&(objectclass=service)(description=GIIS for {vo}))"
    out = client.search(
        base, Scope.SUBTREE, filt, attrs=["url", "description"],
        timeout=timeout, check=False,
    )
    urls: List[LdapUrl] = []
    seen = set()
    for entry in out.entries:
        for raw in entry.get("url"):
            if raw in seen:
                continue
            seen.add(raw)
            try:
                urls.append(LdapUrl.parse(raw))
            except LdapUrlError:
                continue
    return urls


class SlpDirectoryAdvertiser:
    """Makes a GIIS discoverable through SLP-style multicast (§9).

    The directory answers multicast service requests matching
    ``(service=grid-directory)`` with its service entry.  Site-scoped
    multicast means this finds *local* directories — exactly the
    bootstrap role §9 assigns it ("locate a default local directory
    from which to initiate VO resource discovery").
    """

    def __init__(self, node: SimNode, url: LdapUrl, vo_name: str = ""):
        self.url = url
        self.vo_name = vo_name
        entry = Entry(
            url.dn,
            objectclass="service",
            url=str(url),
            service="grid-directory",
        )
        if vo_name:
            entry.put("description", f"GIIS for {vo_name}")
        self._responder = MulticastResponder(node, lambda: [entry])

    def stop(self) -> None:
        self._responder.stop()


def discover_via_slp(
    node: SimNode,
    clock: Clock,
    timeout: float = 1.0,
    on_done: Optional[Callable[[List[LdapUrl]], None]] = None,
):
    """Multicast for local grid directories; URLs via callback/result fn.

    Returns ``(targeted, results_fn)`` like the underlying multicast
    client; ``results_fn()`` yields parsed directory URLs once *timeout*
    has elapsed on *clock*.
    """
    client = MulticastDiscoveryClient(node, clock)

    def convert(entries) -> List[LdapUrl]:
        urls = []
        for entry in entries:
            raw = entry.first("url")
            if raw:
                try:
                    urls.append(LdapUrl.parse(raw))
                except LdapUrlError:
                    pass
        return urls

    done_cb = None
    if on_done is not None:
        done_cb = lambda entries: on_done(convert(entries))
    targeted, raw_results = client.discover(
        "(service=grid-directory)", timeout=timeout, on_done=done_cb
    )
    return targeted, (lambda: convert(raw_results()))
