"""The relational aggregate directory (§3, §4.2, §5.3).

The paper excludes joins from GRIP itself — "a join operation can be
supported when needed via an optimized discovery service" — and notes
that "directories that maintain relational representations of associated
resources and that support SQL or some other relational query language
can of course be constructed in this framework."  This module is that
construction:

* a small in-memory relational engine (:class:`Table`, selection,
  projection, equi-joins, ordering) — "one can of course use any
  appropriate database technology to maintain the necessary indices";
* :class:`RelationalDirectory`, a :class:`~repro.giis.indexes.PullIndex`
  that follows each registration with a GRIP pull and shreds the
  entries into per-objectclass tables keyed by provider;
* the paper's canonical join — "find me an idle computer that is
  connected to an idle network" (§5.3) — as a worked query.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..grip.registry import Registration
from ..ldap.attributes import numeric_value
from ..ldap.entry import Entry
from .indexes import PullIndex

__all__ = ["Row", "Table", "RelationalDirectory"]

Row = Dict[str, str]


class Table:
    """An in-memory relation: named columns over string-valued rows.

    Values are strings (LDAP attribute values); predicates can use
    :func:`~repro.ldap.attributes.numeric_value` via the ``num`` helper
    column accessor for numeric comparison.
    """

    def __init__(self, name: str, rows: Optional[Iterable[Row]] = None):
        self.name = name
        self.rows: List[Row] = [dict(r) for r in (rows or [])]

    # -- algebra -----------------------------------------------------------

    def select(self, predicate: Callable[[Row], bool]) -> "Table":
        return Table(self.name, [r for r in self.rows if predicate(r)])

    def where(self, **equals: str) -> "Table":
        def pred(row: Row) -> bool:
            return all(row.get(k) == v for k, v in equals.items())

        return self.select(pred)

    def where_num(self, column: str, op: str, bound: float) -> "Table":
        """Numeric selection: op in < <= > >= == !=."""
        ops: Dict[str, Callable[[float, float], bool]] = {
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
        }
        try:
            cmp = ops[op]
        except KeyError:
            raise ValueError(f"unknown operator {op!r}") from None

        def pred(row: Row) -> bool:
            value = numeric_value(row.get(column, ""))
            return value is not None and cmp(value, bound)

        return self.select(pred)

    def project(self, columns: Sequence[str]) -> "Table":
        cols = list(columns)
        return Table(
            self.name, [{c: r.get(c, "") for c in cols} for r in self.rows]
        )

    def join(
        self,
        other: "Table",
        on: Sequence[Tuple[str, str]],
        prefix: bool = True,
    ) -> "Table":
        """Equi-join: hash join on the given (left_col, right_col) pairs.

        Columns of the right relation are prefixed ``<name>.`` when
        *prefix* is set, avoiding collisions.
        """
        if not on:
            raise ValueError("join requires at least one column pair")
        right_index: Dict[Tuple[str, ...], List[Row]] = {}
        for row in other.rows:
            key = tuple(row.get(rc, "") for _, rc in on)
            right_index.setdefault(key, []).append(row)
        out: List[Row] = []
        for left_row in self.rows:
            key = tuple(left_row.get(lc, "") for lc, _ in on)
            for right_row in right_index.get(key, ()):
                merged = dict(left_row)
                for col, value in right_row.items():
                    merged[f"{other.name}.{col}" if prefix else col] = value
                out.append(merged)
        return Table(f"{self.name}*{other.name}", out)

    def order_by(self, column: str, numeric: bool = True, reverse: bool = False) -> "Table":
        def key(row: Row):
            raw = row.get(column, "")
            if numeric:
                value = numeric_value(raw)
                return (value is None, value if value is not None else 0.0, raw)
            return (False, 0.0, raw)

        return Table(self.name, sorted(self.rows, key=key, reverse=reverse))

    def distinct(self) -> "Table":
        seen = set()
        out = []
        for row in self.rows:
            key = tuple(sorted(row.items()))
            if key not in seen:
                seen.add(key)
                out.append(row)
        return Table(self.name, out)

    def distinct_by(self, column: str) -> "Table":
        """Keep the first row per value of *column* (e.g. dedupe by dn
        when the same entity is reachable through multiple providers)."""
        seen = set()
        out = []
        for row in self.rows:
            key = row.get(column, "")
            if key not in seen:
                seen.add(key)
                out.append(row)
        return Table(self.name, out)

    def column(self, name: str) -> List[str]:
        return [r.get(name, "") for r in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class RelationalDirectory(PullIndex):
    """A specialized GIIS index holding relational views of VO resources.

    Entries pulled from providers are shredded into one table per
    objectclass; every row carries ``dn`` and ``provider`` columns so
    clients "can always refresh interesting information by directly
    consulting the authoritative source" (§3).
    """

    def __init__(
        self,
        filter_text: str = "(objectclass=*)",
        refresh_interval: Optional[float] = None,
    ):
        super().__init__(filter_text, refresh_interval)
        self._tables: Dict[str, Table] = {}
        # provider url -> list of (table, row) for eviction
        self._by_provider: Dict[str, List[Tuple[str, Row]]] = {}

    # -- PullIndex plumbing -----------------------------------------------------

    def store(self, registration: Registration, entries: List[Entry]) -> None:
        self.evict(registration)
        placed: List[Tuple[str, Row]] = []
        for entry in entries:
            row: Row = {"dn": str(entry.dn), "provider": registration.service_url}
            for attr, values in entry.items():
                row[attr.lower()] = values[0]
            for oc in entry.object_classes:
                table = self._tables.setdefault(oc.lower(), Table(oc.lower()))
                table.rows.append(dict(row))
                placed.append((oc.lower(), row))
        self._by_provider[registration.service_url] = placed

    def evict(self, registration: Registration) -> None:
        placed = self._by_provider.pop(registration.service_url, ())
        if not placed:
            return
        url = registration.service_url
        for name in {t for t, _ in placed}:
            table = self._tables.get(name)
            if table is not None:
                table.rows = [r for r in table.rows if r.get("provider") != url]

    def refresh_all(self) -> None:
        """Re-pull every active provider now."""
        assert self.giis is not None
        for registration in self.giis.registry.active():
            self.pull(registration)

    # -- query API -----------------------------------------------------------------

    def table(self, objectclass: str) -> Table:
        return self._tables.get(objectclass.lower(), Table(objectclass.lower()))

    def tables(self) -> List[str]:
        return sorted(self._tables)

    def row_count(self) -> int:
        return sum(len(t) for t in self._tables.values())

    # -- the paper's worked join (§5.3) ------------------------------------------------

    def idle_computers_on_idle_networks(
        self,
        max_load: float = 1.0,
        min_bandwidth: float = 50.0,
        host_column: str = "hn",
    ) -> Table:
        """'Find me an idle computer that is connected to an idle network.'

        Joins computers (with their load averages) against network links
        whose source is the computer, selecting on both conditions —
        exactly the query §4.2 says plain GRIP cannot express.
        """
        # The same entity can be reachable through several providers
        # (e.g. directly and via its center directory); dedupe by dn so
        # the join does not multiply copies.
        computers = self.table("computer").distinct_by("dn")
        loads = self.table("loadaverage").distinct_by("dn")
        links = self.table("networklink").distinct_by("dn")
        # loadaverage rows live under their host: join on provider +
        # host-prefix of the dn.
        loads_with_host = Table(
            "load",
            [
                {**row, host_column: _host_of(row.get("dn", ""))}
                for row in loads.rows
            ],
        )
        idle = computers.join(loads_with_host, on=[(host_column, host_column)])
        idle = idle.where_num("load.load5", "<=", max_load)
        connected = idle.join(links, on=[(host_column, "src")])
        connected = connected.where_num("networklink.bandwidth", ">=", min_bandwidth)
        return connected


def _host_of(dn_text: str) -> str:
    """Extract the hn=... component of a DN string."""
    for piece in dn_text.split(","):
        piece = piece.strip()
        if piece.lower().startswith("hn="):
            return piece[3:]
    return ""
