"""Basic pluggable GIIS indexes (§3, §10.4).

* :class:`NameIndex` — backs the name-serving directory: "simply records
  the name of each entity for which a GRRP registration was recorded,
  and supports only name-resolution queries."
* :class:`PullIndex` — base class for indexes that follow up "each
  registration of a new entity with a GRIP query to determine its
  properties" (§3's relational directory pattern); subclasses store the
  pulled entries however they like.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..grip.registry import Registration
from ..ldap.client import SearchResult
from ..ldap.dit import Scope
from ..ldap.entry import Entry
from ..ldap.filter import parse as parse_filter
from ..ldap.protocol import SearchRequest
from .core import GiisBackend, GiisIndex

__all__ = ["NameIndex", "PullIndex"]


class NameIndex(GiisIndex):
    """Entity name -> service URL, maintained purely from registrations.

    Cheap to maintain (no GRIP traffic) but answers only name-resolution
    queries — the low end of the §3 "power of an index vs. cost of
    maintaining it" tradeoff.
    """

    def __init__(self):
        self._names: Dict[str, str] = {}

    @staticmethod
    def _name_of(registration: Registration) -> str:
        return registration.message.metadata.get("name", registration.service_url)

    def on_register(self, registration: Registration) -> None:
        self._names[self._name_of(registration)] = registration.service_url

    def on_expire(self, registration: Registration) -> None:
        self._names.pop(self._name_of(registration), None)

    def on_unregister(self, registration: Registration) -> None:
        self.on_expire(registration)

    def resolve(self, name: str) -> Optional[str]:
        return self._names.get(name)

    def names(self) -> List[str]:
        return sorted(self._names)

    def __len__(self) -> int:
        return len(self._names)


class PullIndex(GiisIndex):
    """Follows registrations with GRIP pulls of the provider's subtree.

    Subclasses override :meth:`store` / :meth:`evict`.  Pulls are
    asynchronous; on the simulator they complete as virtual time
    advances.  A *refresh_interval* re-pulls periodically — one of the
    "specialized update strategies" of §5.2.
    """

    def __init__(
        self,
        filter_text: str = "(objectclass=*)",
        refresh_interval: Optional[float] = None,
    ):
        self.filter_text = filter_text
        self.refresh_interval = refresh_interval
        self.giis: Optional[GiisBackend] = None
        self.pulls = 0
        self.pull_failures = 0
        self._timers: Dict[str, object] = {}

    def attach(self, giis: GiisBackend) -> None:
        self.giis = giis

    # -- subclass API ------------------------------------------------------

    def store(self, registration: Registration, entries: List[Entry]) -> None:
        """Absorb a fresh snapshot of one provider's data."""
        raise NotImplementedError

    def evict(self, registration: Registration) -> None:
        """Drop everything learned from one provider."""
        raise NotImplementedError

    # -- registration callbacks ------------------------------------------------

    def on_register(self, registration: Registration) -> None:
        self.pull(registration)
        self._schedule_refresh(registration)

    def on_expire(self, registration: Registration) -> None:
        self._cancel_refresh(registration)
        self.evict(registration)

    def on_unregister(self, registration: Registration) -> None:
        self.on_expire(registration)

    # -- pulling ------------------------------------------------------------------

    def pull(self, registration: Registration) -> None:
        assert self.giis is not None, "index not attached"
        client = self.giis._client_for(registration.service_url)
        if client is None:
            self.pull_failures += 1
            return
        suffix = registration.message.metadata.get("suffix", "")
        req = SearchRequest(
            base=suffix,
            scope=Scope.SUBTREE,
            filter=parse_filter(self.filter_text),
        )
        self.pulls += 1

        def on_done(result: SearchResult, _error=None) -> None:
            if not result.result.ok:
                self.pull_failures += 1
                return
            self.store(registration, result.entries)

        try:
            client.search_async(req, on_done)
        except Exception:  # noqa: BLE001 - connection died: count and move on
            self.pull_failures += 1

    def _schedule_refresh(self, registration: Registration) -> None:
        if self.refresh_interval is None or self.giis is None:
            return
        url = registration.service_url

        def tick() -> None:
            if self.giis is None or not self.giis.registry.is_registered(url):
                self._timers.pop(url, None)
                return
            self.pull(registration)
            self._timers[url] = self.giis.clock.call_later(
                self.refresh_interval, tick
            )

        self._timers[url] = self.giis.clock.call_later(self.refresh_interval, tick)

    def _cancel_refresh(self, registration: Registration) -> None:
        timer = self._timers.pop(registration.service_url, None)
        if timer is not None:
            timer.cancel()
