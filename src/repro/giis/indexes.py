"""Basic pluggable GIIS indexes (§3, §10.4).

* :class:`NameIndex` — backs the name-serving directory: "simply records
  the name of each entity for which a GRRP registration was recorded,
  and supports only name-resolution queries."
* :class:`PullIndex` — base class for indexes that follow up "each
  registration of a new entity with a GRIP query to determine its
  properties" (§3's relational directory pattern); subclasses store the
  pulled entries however they like.
* :class:`EntryCacheIndex` — a PullIndex that materializes pulled
  provider snapshots into an indexed :class:`~repro.ldap.dit.DIT`, so
  cached GIIS-side lookups go through the same posting lists and query
  planner as every other search.

All of these sit on the one shared index engine
(:class:`~repro.ldap.index.AttributeIndex`): the DIT keys it by entry
DN; registrant selection (``core.RegistrationSuffixIndex``) and the
name index key it by service URL.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..grip.registry import Registration
from ..ldap.attributes import CASE_EXACT
from ..ldap.client import SearchResult
from ..ldap.dit import DIT, DitError, Scope
from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.filter import Filter, parse as parse_filter
from ..ldap.index import AttributeIndex
from ..ldap.protocol import SearchRequest
from .core import GiisBackend, GiisIndex

__all__ = ["NameIndex", "PullIndex", "EntryCacheIndex"]


class NameIndex(GiisIndex):
    """Entity name -> service URL, maintained purely from registrations.

    Cheap to maintain (no GRIP traffic) but answers only name-resolution
    queries — the low end of the §3 "power of an index vs. cost of
    maintaining it" tradeoff.  Postings live in the shared
    :class:`AttributeIndex` engine keyed by service URL; when several
    URLs register the same name the most recent registration wins,
    matching the historical dict-overwrite semantics.
    """

    NAME_ATTR = "regname"

    def __init__(self):
        self._index = AttributeIndex(
            (self.NAME_ATTR,), rules={self.NAME_ATTR: CASE_EXACT}
        )
        self._raw: Dict[str, str] = {}  # url -> name as registered
        self._order: Dict[str, int] = {}  # url -> registration recency
        self._tick = 0

    @staticmethod
    def _name_of(registration: Registration) -> str:
        return registration.message.metadata.get("name", registration.service_url)

    def on_register(self, registration: Registration) -> None:
        url = registration.service_url
        name = self._name_of(registration)
        self._index.discard(url)
        self._index.add(url, lambda a: (name,) if a == self.NAME_ATTR else ())
        self._raw[url] = name
        self._tick += 1
        self._order[url] = self._tick

    def on_refresh(self, registration: Registration) -> None:
        # A refresh may rename; recency is intentionally not bumped.
        url = registration.service_url
        if url in self._raw:
            tick = self._order[url]
            self.on_register(registration)
            self._tick -= 1
            self._order[url] = tick

    def on_expire(self, registration: Registration) -> None:
        url = registration.service_url
        self._index.discard(url)
        self._raw.pop(url, None)
        self._order.pop(url, None)

    def on_unregister(self, registration: Registration) -> None:
        self.on_expire(registration)

    def resolve(self, name: str) -> Optional[str]:
        urls = self._index.equality(self.NAME_ATTR, name)
        if not urls:
            return None
        return max(urls, key=lambda u: self._order.get(u, 0))

    def names(self) -> List[str]:
        return sorted(set(self._raw.values()))

    def __len__(self) -> int:
        return len(set(self._raw.values()))


class PullIndex(GiisIndex):
    """Follows registrations with GRIP pulls of the provider's subtree.

    Subclasses override :meth:`store` / :meth:`evict`.  Pulls are
    asynchronous; on the simulator they complete as virtual time
    advances.  A *refresh_interval* re-pulls periodically — one of the
    "specialized update strategies" of §5.2.
    """

    def __init__(
        self,
        filter_text: str = "(objectclass=*)",
        refresh_interval: Optional[float] = None,
    ):
        self.filter_text = filter_text
        self.refresh_interval = refresh_interval
        self.giis: Optional[GiisBackend] = None
        self.pulls = 0
        self.pull_failures = 0
        self._timers: Dict[str, object] = {}

    def attach(self, giis: GiisBackend) -> None:
        self.giis = giis

    # -- subclass API ------------------------------------------------------

    def store(self, registration: Registration, entries: List[Entry]) -> None:
        """Absorb a fresh snapshot of one provider's data."""
        raise NotImplementedError

    def evict(self, registration: Registration) -> None:
        """Drop everything learned from one provider."""
        raise NotImplementedError

    # -- registration callbacks ------------------------------------------------

    def on_register(self, registration: Registration) -> None:
        self.pull(registration)
        self._schedule_refresh(registration)

    def on_expire(self, registration: Registration) -> None:
        self._cancel_refresh(registration)
        self.evict(registration)

    def on_unregister(self, registration: Registration) -> None:
        self.on_expire(registration)

    # -- pulling ------------------------------------------------------------------

    def pull(self, registration: Registration) -> None:
        assert self.giis is not None, "index not attached"
        client = self.giis._client_for(registration.service_url)
        if client is None:
            self.pull_failures += 1
            return
        suffix = registration.message.metadata.get("suffix", "")
        req = SearchRequest(
            base=suffix,
            scope=Scope.SUBTREE,
            filter=parse_filter(self.filter_text),
        )
        self.pulls += 1

        def on_done(result: SearchResult, _error=None) -> None:
            if not result.result.ok:
                self.pull_failures += 1
                return
            self.store(registration, result.entries)

        try:
            client.search_async(req, on_done)
        except Exception:  # noqa: BLE001 - connection died: count and move on
            self.pull_failures += 1

    def _schedule_refresh(self, registration: Registration) -> None:
        if self.refresh_interval is None or self.giis is None:
            return
        url = registration.service_url

        def tick() -> None:
            if self.giis is None or not self.giis.registry.is_registered(url):
                self._timers.pop(url, None)
                return
            self.pull(registration)
            self._timers[url] = self.giis.clock.call_later(
                self.refresh_interval, tick
            )

        self._timers[url] = self.giis.clock.call_later(self.refresh_interval, tick)

    def _cancel_refresh(self, registration: Registration) -> None:
        timer = self._timers.pop(registration.service_url, None)
        if timer is not None:
            timer.cancel()


class EntryCacheIndex(PullIndex):
    """Pulled provider snapshots materialized into an indexed DIT.

    The §3 relational directory stores pulls as tables; this index keeps
    them in LDAP form instead, inside a :class:`~repro.ldap.dit.DIT`
    whose secondary indexes (and the :mod:`~repro.ldap.plan` planner)
    answer equality/presence lookups without scanning every cached
    entry.  Ownership is tracked per DN so re-pulls and expiry evict
    exactly one provider's contribution; when two providers publish the
    same DN the most recent pull wins, and eviction leaves foreign
    entries alone.

    ``index_attrs`` defaults to the owning GIIS's ``index_attrs`` at
    attach time, so one configuration knob drives both the GIIS and its
    caches.
    """

    def __init__(
        self,
        filter_text: str = "(objectclass=*)",
        refresh_interval: Optional[float] = None,
        index_attrs: Optional[Sequence[str]] = None,
    ):
        super().__init__(filter_text, refresh_interval)
        self._index_attrs = index_attrs
        self.dit = DIT(index_attrs=index_attrs or ())
        self._owned: Dict[str, List[DN]] = {}  # url -> DNs stored from it
        self._owner: Dict[DN, str] = {}  # dn -> owning url

    def attach(self, giis: GiisBackend) -> None:
        super().attach(giis)
        if self._index_attrs is None and getattr(giis, "index_attrs", ()):
            self.dit.set_index_attrs(giis.index_attrs)

    # -- PullIndex contract --------------------------------------------------

    def store(self, registration: Registration, entries: List[Entry]) -> None:
        self.evict(registration)
        url = registration.service_url
        owned: List[DN] = []
        for entry in sorted(entries, key=lambda e: len(e.dn)):
            self.dit.add(entry, replace=True)
            self._owner[entry.dn] = url
            owned.append(entry.dn)
        self._owned[url] = owned

    def evict(self, registration: Registration) -> None:
        url = registration.service_url
        # Deepest-first so children go before their parents.
        for dn in sorted(self._owned.pop(url, ()), key=len, reverse=True):
            if self._owner.get(dn) != url:
                continue  # overwritten by a later pull from another provider
            del self._owner[dn]
            try:
                self.dit.delete(dn)
            except DitError:
                # Another provider still holds entries beneath this DN;
                # leave the (stale) node rather than orphan its subtree.
                pass

    # -- queries -------------------------------------------------------------

    def search(
        self,
        base: DN | str,
        scope: Scope = Scope.SUBTREE,
        filt: Optional[Filter | str] = None,
        attrs: Optional[Sequence[str]] = None,
    ) -> List[Entry]:
        """Planner-driven search over the cached entries."""
        if isinstance(filt, str):
            filt = parse_filter(filt)
        try:
            return self.dit.search(base, scope, filt, attrs=attrs)
        except DitError:
            return []

    def __len__(self) -> int:
        return len(self.dit)
