"""Condor-style matchmaking as a query-evaluation mechanism (§5.3, [23]).

"Or, we can construct directories that employ the Condor matchmaking
algorithm as a query evaluation mechanism."  This module implements a
ClassAd-like language from scratch:

* ads are attribute maps plus ``requirements`` and ``rank`` expressions;
* expressions support arithmetic, comparison, boolean logic,
  ``my.attr`` / ``target.attr`` references, and three-valued logic with
  ``undefined`` (a reference to a missing attribute), matching Condor's
  semantics that an undefined requirement does not match;
* :func:`match` is symmetric — both ads' requirements must hold — and
  candidates are ranked by the requesting ad's ``rank`` expression;
* :class:`MatchmakerDirectory` builds machine ads from pulled GRIS
  entries, so the matchmaker rides the same GRRP/GRIP machinery as any
  other specialized directory.

The paper also notes (§8) that the Matchmaker "does not enforce a type
system, relying instead on informal procedures for achieving reasonably
consistent descriptions" — ads here are schema-free.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..grip.registry import Registration
from ..ldap.attributes import numeric_value
from ..ldap.entry import Entry
from .indexes import PullIndex

__all__ = ["AdError", "Undefined", "UNDEFINED", "ClassAd", "evaluate", "match", "MatchmakerDirectory"]


class AdError(ValueError):
    """Raised on malformed ClassAd expressions."""


class Undefined:
    """The ClassAd 'undefined' value: absorbs most operations."""

    _instance: Optional["Undefined"] = None

    def __new__(cls) -> "Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


UNDEFINED = Undefined()

Value = Union[float, str, bool, Undefined]


# --------------------------------------------------------------------------
# Expression language
# --------------------------------------------------------------------------

_TOKEN = re.compile(
    r"""\s*(?:
        (?P<number>\d+\.\d*|\.\d+|\d+) |
        (?P<string>"(?:[^"\\]|\\.)*") |
        (?P<name>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*) |
        (?P<op>\|\||&&|==|!=|<=|>=|[!<>+\-*/()%])
    )""",
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None:
            if text[pos:].strip() == "":
                break
            raise AdError(f"bad token at {text[pos:pos + 10]!r}")
        pos = m.end()
        for kind in ("number", "string", "name", "op"):
            value = m.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    tokens.append(("end", ""))
    return tokens


class _ExprParser:
    """Recursive descent over: or > and > not > cmp > add > mul > unary."""

    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.pos]

    def take(self) -> Tuple[str, str]:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def accept_op(self, *ops: str) -> Optional[str]:
        kind, value = self.peek()
        if kind == "op" and value in ops:
            self.take()
            return value
        return None

    def parse(self):
        node = self.parse_or()
        if self.peek()[0] != "end":
            raise AdError(f"trailing tokens at {self.peek()[1]!r}")
        return node

    def parse_or(self):
        node = self.parse_and()
        while self.accept_op("||"):
            node = ("or", node, self.parse_and())
        return node

    def parse_and(self):
        node = self.parse_cmp()
        while self.accept_op("&&"):
            node = ("and", node, self.parse_cmp())
        return node

    def parse_cmp(self):
        node = self.parse_add()
        op = self.accept_op("==", "!=", "<=", ">=", "<", ">")
        if op:
            node = ("cmp", op, node, self.parse_add())
        return node

    def parse_add(self):
        node = self.parse_mul()
        while True:
            op = self.accept_op("+", "-")
            if not op:
                return node
            node = ("arith", op, node, self.parse_mul())

    def parse_mul(self):
        node = self.parse_unary()
        while True:
            op = self.accept_op("*", "/", "%")
            if not op:
                return node
            node = ("arith", op, node, self.parse_unary())

    def parse_unary(self):
        if self.accept_op("!"):
            return ("not", self.parse_unary())
        if self.accept_op("-"):
            return ("neg", self.parse_unary())
        return self.parse_atom()

    def parse_atom(self):
        kind, value = self.take()
        if kind == "number":
            return ("lit", float(value))
        if kind == "string":
            return ("lit", value[1:-1].replace('\\"', '"').replace("\\\\", "\\"))
        if kind == "name":
            low = value.lower()
            if low == "true":
                return ("lit", True)
            if low == "false":
                return ("lit", False)
            if low == "undefined":
                return ("lit", UNDEFINED)
            return ("ref", value)
        if kind == "op" and value == "(":
            node = self.parse_or()
            if not self.accept_op(")"):
                raise AdError("missing closing parenthesis")
            return node
        raise AdError(f"unexpected token {value!r}")


_PARSE_CACHE: Dict[str, tuple] = {}


def _parse_expr(text: str) -> tuple:
    node = _PARSE_CACHE.get(text)
    if node is None:
        node = _ExprParser(_tokenize(text)).parse()
        _PARSE_CACHE[text] = node
    return node


def _coerce(value) -> Value:
    if isinstance(value, (bool, Undefined)):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        num = numeric_value(value)
        return num if num is not None else value
    return UNDEFINED


def _eval(node, my: "ClassAd", target: Optional["ClassAd"]) -> Value:
    tag = node[0]
    if tag == "lit":
        return _coerce(node[1])
    if tag == "ref":
        return _resolve(node[1], my, target)
    if tag == "not":
        value = _eval(node[1], my, target)
        if isinstance(value, Undefined):
            return UNDEFINED
        return not _truthy(value)
    if tag == "neg":
        value = _eval(node[1], my, target)
        if isinstance(value, float):
            return -value
        return UNDEFINED
    if tag == "and":
        left = _eval(node[1], my, target)
        if not isinstance(left, Undefined) and not _truthy(left):
            return False
        right = _eval(node[2], my, target)
        if isinstance(left, Undefined) or isinstance(right, Undefined):
            return UNDEFINED
        return _truthy(right)
    if tag == "or":
        left = _eval(node[1], my, target)
        if not isinstance(left, Undefined) and _truthy(left):
            return True
        right = _eval(node[2], my, target)
        if isinstance(left, Undefined) or isinstance(right, Undefined):
            return UNDEFINED
        return _truthy(right)
    if tag == "cmp":
        op, left_node, right_node = node[1], node[2], node[3]
        left, right = _eval(left_node, my, target), _eval(right_node, my, target)
        if isinstance(left, Undefined) or isinstance(right, Undefined):
            return UNDEFINED
        if isinstance(left, str) and isinstance(right, str):
            left, right = left.lower(), right.lower()
        elif type(left) is not type(right):
            if isinstance(left, bool) or isinstance(right, bool):
                return UNDEFINED
            return UNDEFINED if op not in ("==", "!=") else (op == "!=")
        try:
            return {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[op]
        except TypeError:
            return UNDEFINED
    if tag == "arith":
        op, left_node, right_node = node[1], node[2], node[3]
        left, right = _eval(left_node, my, target), _eval(right_node, my, target)
        if not isinstance(left, float) or not isinstance(right, float):
            return UNDEFINED
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right if right else UNDEFINED
        if op == "%":
            return left % right if right else UNDEFINED
    raise AdError(f"unknown AST node {tag!r}")


def _truthy(value: Value) -> bool:
    if isinstance(value, Undefined):
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0.0
    return value != ""


def _resolve(name: str, my: "ClassAd", target: Optional["ClassAd"]) -> Value:
    parts = name.split(".", 1)
    if len(parts) == 2:
        scope, attr = parts
        scope = scope.lower()
        if scope == "my":
            return my.value(attr)
        if scope == "target":
            return target.value(attr) if target is not None else UNDEFINED
        return UNDEFINED
    # Bare names resolve against my, then target (Condor's lookup order).
    value = my.value(name)
    if not isinstance(value, Undefined):
        return value
    return target.value(name) if target is not None else UNDEFINED


# --------------------------------------------------------------------------
# Ads and matching
# --------------------------------------------------------------------------


@dataclass
class ClassAd:
    """A schema-free advertisement."""

    attrs: Dict[str, object] = field(default_factory=dict)
    requirements: str = "true"
    rank: str = "0"
    name: str = ""

    def value(self, attr: str) -> Value:
        key = attr.lower()
        for k, v in self.attrs.items():
            if k.lower() == key:
                return _coerce(v)
        return UNDEFINED

    def evaluate(self, expression: str, target: Optional["ClassAd"] = None) -> Value:
        return _eval(_parse_expr(expression), self, target)

    def requirements_met(self, target: "ClassAd") -> bool:
        result = self.evaluate(self.requirements, target)
        return result is True

    def rank_of(self, target: "ClassAd") -> float:
        result = self.evaluate(self.rank, target)
        return result if isinstance(result, float) else 0.0

    @classmethod
    def from_entry(cls, entry: Entry, **extra: object) -> "ClassAd":
        attrs: Dict[str, object] = {"dn": str(entry.dn)}
        for attr, values in entry.items():
            attrs[attr.lower()] = values[0]
        attrs.update(extra)
        return cls(attrs=attrs, name=str(entry.dn))


def evaluate(expression: str, my: ClassAd, target: Optional[ClassAd] = None) -> Value:
    """Evaluate an expression in the context of *my* (and *target*)."""
    return _eval(_parse_expr(expression), my, target)


def match(
    request: ClassAd, candidates: Sequence[ClassAd]
) -> List[Tuple[ClassAd, float]]:
    """Symmetric matchmaking: both requirements must hold; rank by request.

    Returns (candidate, rank) pairs, best first — ties broken by
    candidate name for determinism.
    """
    out: List[Tuple[ClassAd, float]] = []
    for candidate in candidates:
        if request.requirements_met(candidate) and candidate.requirements_met(request):
            out.append((candidate, request.rank_of(candidate)))
    out.sort(key=lambda pair: (-pair[1], pair[0].name))
    return out


class MatchmakerDirectory(PullIndex):
    """A GIIS index that maintains machine ads for matchmaking.

    Computer entries become ads; loadaverage/filesystem/queue children
    fold their attributes into the host's ad (``load5``, ``free``, ...),
    giving requests like ``target.load5 <= 1.0 && target.cpucount >= 4``
    something to chew on.
    """

    def __init__(self, refresh_interval: Optional[float] = None):
        super().__init__("(objectclass=*)", refresh_interval)
        self._ads: Dict[str, Dict[str, ClassAd]] = {}  # provider -> dn -> ad

    def store(self, registration: Registration, entries: List[Entry]) -> None:
        ads: Dict[str, ClassAd] = {}
        hosts: Dict[str, ClassAd] = {}
        for entry in entries:
            if entry.is_a("computer"):
                ad = ClassAd.from_entry(entry, provider=registration.service_url)
                ads[str(entry.dn)] = ad
                host = entry.first("hn")
                if host:
                    hosts[host.lower()] = ad
        for entry in entries:
            if entry.is_a("computer"):
                continue
            host = _host_component(entry)
            if host is None:
                continue
            ad = hosts.get(host.lower())
            if ad is None:
                continue
            for attr, values in entry.items():
                if attr.lower() not in ("objectclass",):
                    ad.attrs.setdefault(attr.lower(), values[0])
        self._ads[registration.service_url] = ads

    def evict(self, registration: Registration) -> None:
        self._ads.pop(registration.service_url, None)

    def machine_ads(self) -> List[ClassAd]:
        # Dedupe by entity DN: the same machine may be reachable through
        # several providers (directly and via its center directory).
        by_dn: Dict[str, ClassAd] = {}
        for ads in self._ads.values():
            for dn, ad in ads.items():
                by_dn.setdefault(dn, ad)
        return list(by_dn.values())

    def match(self, request: ClassAd) -> List[Tuple[ClassAd, float]]:
        return match(request, self.machine_ads())


def _host_component(entry: Entry) -> Optional[str]:
    for rdn in entry.dn.rdns:
        if rdn.attr.lower() == "hn":
            return rdn.value
    return None
