"""The name-serving aggregate directory (§3's first example directory).

"A name-serving aggregate directory simply records the name of each
entity for which a GRRP registration was recorded, and supports only
name-resolution queries."  Combined with the hierarchical discovery
service it gives the §5.2 pattern: resolve a member's location cheaply,
then use direct GRIP queries for detail — and §8's observation that
each aggregate directory "effectively serves as a local naming
authority" (names are unique only within one hierarchy).
"""

from __future__ import annotations

from typing import List, Optional

from ..ldap.dn import DN
from ..ldap.url import LdapUrl
from ..net.clock import Clock
from .core import GiisBackend
from .indexes import NameIndex

__all__ = ["NameService"]


class NameService:
    """A GIIS configured as a pure name-location service.

    It never chains queries or pulls provider data — the cheapest point
    of the index power/cost tradeoff — so its only state is the
    registration list plus the name index.
    """

    def __init__(self, suffix: DN | str, clock: Clock, vo_name: str = ""):
        self.backend = GiisBackend(
            suffix=suffix,
            clock=clock,
            connector=None,  # name resolution only: no chaining
            mode="chain",
            vo_name=vo_name,
        )
        self.index = NameIndex()
        self.backend.add_index(self.index)

    # -- the name-resolution API --------------------------------------------

    def resolve(self, name: str) -> Optional[LdapUrl]:
        """Resolve a registered entity name to its provider URL."""
        url = self.index.resolve(name)
        if url is None:
            return None
        try:
            return LdapUrl.parse(url)
        except ValueError:
            return None

    def names(self) -> List[str]:
        """Enumerate all currently registered names."""
        return self.index.names()

    def __contains__(self, name: str) -> bool:
        return self.index.resolve(name) is not None

    def __len__(self) -> int:
        return len(self.index)
