"""GIIS: aggregate directory services (paper §5, §10.4).

The framework (:mod:`repro.giis.core`) plus the specialized directories
the paper describes: hierarchical discovery (Figure 5), name-serving,
relational with joins, and Condor-style matchmaking.
"""

from .bootstrap import SlpDirectoryAdvertiser, discover_directories, discover_via_slp
from .core import Connector, GiisBackend, GiisIndex, RegistrationSuffixIndex
from .hierarchy import (
    GRRP_DATAGRAM_PORT,
    DatagramGrrpSender,
    LdapGrrpSender,
    make_registrant,
)
from .indexes import EntryCacheIndex, NameIndex, PullIndex
from .matchmaker import (
    UNDEFINED,
    AdError,
    ClassAd,
    MatchmakerDirectory,
    Undefined,
    evaluate,
    match,
)
from .nameservice import NameService
from .relational import RelationalDirectory, Row, Table

__all__ = [
    "SlpDirectoryAdvertiser",
    "discover_directories",
    "discover_via_slp",
    "Connector",
    "GiisBackend",
    "GiisIndex",
    "GRRP_DATAGRAM_PORT",
    "DatagramGrrpSender",
    "LdapGrrpSender",
    "make_registrant",
    "NameIndex",
    "EntryCacheIndex",
    "RegistrationSuffixIndex",
    "PullIndex",
    "UNDEFINED",
    "AdError",
    "ClassAd",
    "MatchmakerDirectory",
    "Undefined",
    "evaluate",
    "match",
    "NameService",
    "RelationalDirectory",
    "Row",
    "Table",
]
