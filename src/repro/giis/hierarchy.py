"""Wiring for hierarchical discovery services (Figure 5, §5.1).

"Each directory uses the GRIP data model, query language, and protocol,
and acts as an information provider that contains information about all
of the resources beneath it in the hierarchy.  Directories use GRRP to
register with higher-level directories to construct the hierarchy."

This module provides the GRRP *transports* that carry registration
streams, and the helper that points one GIIS (or GRIS) at a parent
directory:

* :class:`LdapGrrpSender` — GRRP over LDAP Add operations, the MDS-2.1
  transport (§10.1);
* :class:`DatagramGrrpSender` — GRRP over unreliable datagrams, the
  transport §4.3 designs for (used by the soft-state experiments);
* :func:`make_registrant` — builds the refresh stream advertising a
  service and the namespace suffix it serves.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..grip.messages import GrrpMessage
from ..grip.registration import Registrant
from ..ldap.client import LdapClient
from ..ldap.dn import DN
from ..ldap.url import LdapUrl
from ..net.clock import Clock
from ..net.simnet import SimNode
from ..net.transport import ConnectionClosed, TransportError
from .core import Connector

__all__ = [
    "GRRP_DATAGRAM_PORT",
    "LdapGrrpSender",
    "DatagramGrrpSender",
    "make_registrant",
    "listen_for_invitations",
]

GRRP_DATAGRAM_PORT = 2136  # convention: GRIP port + 1


class LdapGrrpSender:
    """Carries GRRP messages as LDAP Add operations (§10.1).

    Directory addresses are LDAP URLs; the registration entry is placed
    under the directory's suffix (the URL's DN).  Failed sends are
    dropped silently — GRRP is soft state, the next refresh retries.
    """

    def __init__(self, connector: Connector):
        self.connector = connector
        self._clients: Dict[str, LdapClient] = {}
        self.sends = 0
        self.send_failures = 0

    def __call__(self, directory: str, message: GrrpMessage) -> None:
        try:
            url = LdapUrl.parse(directory)
        except ValueError:
            self.send_failures += 1
            return
        client = self._client_for(directory, url)
        if client is None:
            self.send_failures += 1
            return
        entry = message.to_entry(url.dn)
        self.sends += 1
        try:
            client.add_async(entry, lambda outcome, error: None)
        except Exception:  # noqa: BLE001 - connection died; refresh will retry
            self._clients.pop(directory, None)
            self.send_failures += 1

    def _client_for(self, key: str, url: LdapUrl) -> Optional[LdapClient]:
        client = self._clients.get(key)
        if client is not None and not client.closed:
            return client
        try:
            conn = self.connector(url)
        except (ConnectionClosed, TransportError):
            return None
        client = LdapClient(conn)
        self._clients[key] = client
        return client

    def close(self) -> None:
        for client in self._clients.values():
            client.unbind()
        self._clients.clear()


class DatagramGrrpSender:
    """Carries GRRP messages as unreliable datagrams from a sim node.

    Directory addresses are bare host names (the GRRP datagram port is
    fixed by convention); loss, partitions and crashes silently eat
    messages, which is precisely the §4.3 failure model.
    """

    def __init__(self, node: SimNode, port: int = GRRP_DATAGRAM_PORT):
        self.node = node
        self.port = port
        self.sends = 0

    def __call__(self, directory: str, message: GrrpMessage) -> None:
        self.sends += 1
        self.node.send_datagram((directory, self.port), message.to_bytes())


def make_registrant(
    clock: Clock,
    service_url: LdapUrl | str,
    served_suffix: DN | str,
    send: Callable[[str, GrrpMessage], None],
    interval: float = 30.0,
    ttl: float = 90.0,
    name: str = "",
    vo: str = "",
    **kwargs,
) -> Registrant:
    """A refresh stream advertising *service_url* and its namespace.

    The ``suffix`` metadata is what lets a parent GIIS route queries to
    this child ("the provider's namespace intersects the query scope");
    ``name`` feeds name-serving directories; ``vo`` feeds membership
    policies.
    """
    metadata = {"suffix": str(DN.of(served_suffix))}
    if name:
        metadata["name"] = name
    if vo:
        metadata["vo"] = vo
    return Registrant(
        clock,
        str(service_url),
        send,
        interval=interval,
        ttl=ttl,
        metadata=metadata,
        **kwargs,
    )


def listen_for_invitations(
    node: SimNode,
    registrant: Registrant,
    port: int = GRRP_DATAGRAM_PORT,
) -> None:
    """Wire a provider node to accept GRRP invitations (§10.4).

    "In the case of invitation, a GRIS is asked to join by the aggregate
    directory service — or perhaps a third party.  If a GRIS agrees to
    join, it turns around and uses GRRP to register itself with the
    specified aggregate directory in a fault-tolerant manner."

    The invitation names the directory to register with in its
    ``directory`` metadata; acceptance policy lives on the registrant
    (``accept_invitation``).
    """
    from ..grip.messages import GrrpError, GrrpMessage, NotificationType

    def on_datagram(source, payload: bytes) -> None:
        try:
            message = GrrpMessage.from_bytes(payload)
        except GrrpError:
            return
        if message.notification_type != NotificationType.INVITE:
            return
        directory = message.metadata.get("directory", message.service_url)
        registrant.handle_invitation(directory, message)

    node.on_datagram(port, on_datagram)
