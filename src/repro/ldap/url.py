"""LDAP URLs (RFC 4516 subset).

The paper uses LDAP URLs in two roles:

* globally unique names — "globally unique names are defined by
  combination of [the] name of information within the scope of the
  provider and the name of the provider (i.e., an LDAP URL that includes
  the host name, port number and distinguished name)" (§4.1);
* referrals — a GIIS that cannot proxy restricted data "return[s] the
  name of the information provider directly to the client in the form of
  a LDAP URL" (§10.4).

Format::

    ldap://host:port/dn?attrs?scope?filter

where attrs is comma-separated, scope is ``base|one|sub``, and the DN,
attributes and filter are percent-encoded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple
from urllib.parse import quote, unquote

from .dit import Scope
from .dn import DN

__all__ = ["LdapUrlError", "LdapUrl"]

_SCOPE_NAMES = {Scope.BASE: "base", Scope.ONELEVEL: "one", Scope.SUBTREE: "sub"}
_SCOPE_VALUES = {v: k for k, v in _SCOPE_NAMES.items()}

DEFAULT_PORT = 389


class LdapUrlError(ValueError):
    """Raised on malformed LDAP URLs."""


@dataclass(frozen=True)
class LdapUrl:
    """A parsed LDAP URL."""

    host: str
    port: int = DEFAULT_PORT
    dn: DN = field(default_factory=DN.root)
    attrs: Tuple[str, ...] = ()
    scope: Optional[Scope] = None
    filter: Optional[str] = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @classmethod
    def for_provider(cls, host: str, port: int, dn: DN | str = "") -> "LdapUrl":
        """The globally unique name of *dn* at a given provider (§4.1)."""
        return cls(host=host, port=port, dn=DN.of(dn))

    def with_dn(self, dn: DN | str) -> "LdapUrl":
        return LdapUrl(self.host, self.port, DN.of(dn), self.attrs, self.scope, self.filter)

    def __str__(self) -> str:
        out = f"ldap://{self.host}"
        if self.port != DEFAULT_PORT:
            out += f":{self.port}"
        out += "/" + quote(str(self.dn), safe="=,+ ")
        trailer = ""
        if self.filter is not None:
            trailer = "?" + quote(self.filter, safe="()=*&|!<>~")
        if self.scope is not None or trailer:
            trailer = "?" + (_SCOPE_NAMES[self.scope] if self.scope is not None else "") + trailer
        if self.attrs or trailer:
            trailer = "?" + ",".join(quote(a, safe="") for a in self.attrs) + trailer
        return out + trailer

    @classmethod
    def parse(cls, text: str) -> "LdapUrl":
        text = text.strip()
        if not text.startswith("ldap://"):
            raise LdapUrlError(f"not an ldap URL: {text!r}")
        rest = text[len("ldap://") :]
        if "/" in rest:
            authority, path = rest.split("/", 1)
        else:
            authority, path = rest, ""
        if not authority:
            raise LdapUrlError("missing host")
        if ":" in authority:
            host, port_text = authority.rsplit(":", 1)
            try:
                port = int(port_text)
            except ValueError:
                raise LdapUrlError(f"bad port {port_text!r}") from None
            if not 0 < port < 65536:
                raise LdapUrlError(f"port {port} out of range")
        else:
            host, port = authority, DEFAULT_PORT

        parts = path.split("?")
        if len(parts) > 4:
            raise LdapUrlError("too many '?' sections")
        dn = DN.parse(unquote(parts[0])) if parts[0] else DN.root()
        attrs: Tuple[str, ...] = ()
        scope: Optional[Scope] = None
        filt: Optional[str] = None
        if len(parts) > 1 and parts[1]:
            attrs = tuple(unquote(a) for a in parts[1].split(",") if a)
        if len(parts) > 2 and parts[2]:
            try:
                scope = _SCOPE_VALUES[parts[2].lower()]
            except KeyError:
                raise LdapUrlError(f"bad scope {parts[2]!r}") from None
        if len(parts) > 3 and parts[3]:
            filt = unquote(parts[3])
        return cls(host=host, port=port, dn=dn, attrs=attrs, scope=scope, filter=filt)
