"""Pluggable server backends — the OpenLDAP-style extension point.

MDS-2 is built as "specialized backends ... plugged into a standard
protocol interpreter" (§10.1): the GRIS provider framework and the GIIS
aggregate directory are both backends behind the same LDAP front end.
A backend receives decoded, authenticated requests and returns entries
and results; the front end (:mod:`repro.ldap.server`) owns
authentication, access control, authoritative result filtering, and the
wire protocol.

:class:`DitBackend` is the reference implementation over a
:class:`~repro.ldap.dit.DIT`, with change notification hooks driving
persistent-search subscriptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .dit import (
    DIT,
    DitError,
    EntryExists,
    NoSuchEntry,
    SizeLimitExceeded,
    in_scope,
)
from .dn import DN
from .entry import Entry
from .executor import CancelToken
from .protocol import (
    AddRequest,
    LdapResult,
    ModifyRequest,
    ResultCode,
    SearchRequest,
)
from .schema import SchemaError

__all__ = [
    "RequestContext",
    "SearchOutcome",
    "SearchHandle",
    "ChangeType",
    "Subscription",
    "Backend",
    "DitBackend",
]


@dataclass
class RequestContext:
    """Who is asking, when, and with which request controls."""

    identity: str = "anonymous"
    now: float = 0.0
    peer: Optional[Tuple[str, int]] = None
    # Raw request controls, so backends can honor ones the front end
    # does not consume itself (e.g. the GIIS chaining-depth control).
    controls: Tuple = ()
    # Per-request trace span (repro.obs.trace.Span) when the front end
    # runs with a tracer; backends open children off it for their hops.
    trace: Optional[object] = None
    # Cancellation/deadline carrier set by the front end; backends check
    # it to stop in-flight work on Abandon, Unbind, disconnect, or time
    # limit expiry.
    token: Optional[CancelToken] = None
    # True when the front end will serve this request's results verbatim
    # (transparent access policy, no attribute selection, not typesOnly):
    # streaming backends may then emit undecoded
    # :class:`~repro.ldap.protocol.RawEntry` frames for the server to
    # relay without re-encoding.  False means every streamed result must
    # be a decoded :class:`~repro.ldap.entry.Entry`.
    transparent: bool = False

    @property
    def cancelled(self) -> bool:
        return self.token is not None and self.token.cancelled


@dataclass
class SearchOutcome:
    """What a backend hands back for one search."""

    entries: List[Entry] = field(default_factory=list)
    referrals: List[str] = field(default_factory=list)
    result: LdapResult = field(default_factory=LdapResult)


class ChangeType:
    """Persistent-search change types (draft-ietf-ldapext-psearch)."""

    ADD = 1
    DELETE = 2
    MODIFY = 4
    ALL = ADD | DELETE | MODIFY


class Subscription:
    """Handle for one persistent-search registration."""

    def __init__(self, cancel: Callable[[], None]):
        self._cancel = cancel
        self.active = True

    def cancel(self) -> None:
        if self.active:
            self.active = False
            self._cancel()


# Signature of the push callback handed to Backend.subscribe: the backend
# calls it with (entry, change_type) for every matching change.
ChangeCallback = Callable[[Entry, int], None]


class SearchHandle:
    """Handle for one in-flight backend search.

    Returned by :meth:`Backend.submit_search`; :meth:`cancel` aborts the
    work via the request's :class:`~repro.ldap.executor.CancelToken`
    (a GIIS stops waiting on chained children, a GRIS stops dispatching
    providers).  After cancellation the completion callback may never
    fire — cancellers must not wait for it.
    """

    __slots__ = ("token",)

    def __init__(self, token: CancelToken):
        self.token = token

    @property
    def cancelled(self) -> bool:
        return self.token.cancelled

    def cancel(self, reason: str = "cancelled") -> None:
        self.token.cancel(reason)


class Backend:
    """Interface every server backend implements.

    The search path is async-first: the front end always drives
    :meth:`submit_search`, which invokes its completion callback when
    the outcome is ready (synchronously for local backends, later for
    ones that gather results from *remote* services — the GIIS chaining
    to its registered providers, §10.4).  Local backends implement the
    synchronous :meth:`_search_impl` hook; remote ones override
    :meth:`submit_search` itself and must honor ``ctx.token``.

    :meth:`search` is a thin synchronous shim over :meth:`submit_search`
    for tests and in-process callers.

    The default write/subscribe implementations refuse, so read-only
    information providers only implement the search hook.
    """

    def _search_impl(self, req: SearchRequest, ctx: RequestContext) -> SearchOutcome:
        """Synchronous search hook for local backends."""
        raise NotImplementedError

    def naming_contexts(self) -> List[str]:
        """Suffixes this backend serves (advertised in the root DSE)."""
        return []

    def submit_search(
        self,
        req: SearchRequest,
        ctx: RequestContext,
        on_done: Callable[[SearchOutcome], None],
    ) -> SearchHandle:
        """Start one search; *on_done* receives the single outcome.

        The default runs :meth:`_search_impl` on the calling thread and
        completes immediately; a cancelled token suppresses the callback
        (the requester has already gone away).
        """
        token = ctx.token if ctx.token is not None else CancelToken()
        handle = SearchHandle(token)
        outcome = self._search_impl(req, ctx)
        if not token.cancelled:
            on_done(outcome)
        return handle

    def submit_search_stream(
        self,
        req: SearchRequest,
        ctx: RequestContext,
        on_entry: Callable[[object], None],
        on_done: Callable[[SearchOutcome], None],
    ) -> SearchHandle:
        """Start one search, delivering results incrementally.

        *on_entry* fires once per result — an :class:`~.entry.Entry`, or
        a :class:`~repro.ldap.protocol.RawEntry` when the backend relays
        undecoded child frames and ``ctx.transparent`` allows it — and
        *on_done* fires exactly once afterwards with the terminal
        outcome, whose ``entries`` list is empty (everything already
        streamed).  Cancelling ``ctx.token`` stops delivery; after
        cancellation neither callback may fire again.  Deliveries are
        serialized: a backend gathering results on several threads must
        never invoke the callbacks concurrently.

        The default adapts the buffered :meth:`submit_search` by
        replaying its outcome, so local backends get streaming for free;
        backends that gather results remotely (the GIIS) override this
        natively and shim the buffered API over it instead.
        """

        def replay(outcome: SearchOutcome) -> None:
            token = ctx.token
            for entry in outcome.entries:
                if token is not None and token.cancelled:
                    return
                on_entry(entry)
            if token is not None and token.cancelled:
                return
            on_done(
                SearchOutcome(
                    entries=[],
                    referrals=outcome.referrals,
                    result=outcome.result,
                )
            )

        return self.submit_search(req, ctx, replay)

    def search(self, req: SearchRequest, ctx: RequestContext) -> SearchOutcome:
        """Synchronous shim over :meth:`submit_search`.

        Only valid for backends that complete synchronously (anything
        local); a backend with remote work in flight answers ``BUSY``
        rather than blocking the caller.
        """
        box: List[SearchOutcome] = []
        handle = self.submit_search(req, ctx, box.append)
        if not box:
            handle.cancel("synchronous caller cannot wait")
            return SearchOutcome(
                result=LdapResult(
                    ResultCode.BUSY,
                    message="backend did not complete synchronously; "
                    "use submit_search",
                )
            )
        return box[0]

    def add(self, req: AddRequest, ctx: RequestContext) -> LdapResult:
        return LdapResult(ResultCode.UNWILLING_TO_PERFORM, message="read-only backend")

    def modify(self, req: ModifyRequest, ctx: RequestContext) -> LdapResult:
        return LdapResult(ResultCode.UNWILLING_TO_PERFORM, message="read-only backend")

    def delete(self, dn: str, ctx: RequestContext) -> LdapResult:
        return LdapResult(ResultCode.UNWILLING_TO_PERFORM, message="read-only backend")

    def subscribe(
        self,
        req: SearchRequest,
        ctx: RequestContext,
        push: ChangeCallback,
        change_types: int = ChangeType.ALL,
    ) -> Optional[Subscription]:
        """Register for change notification; None = unsupported."""
        return None


class DitBackend(Backend):
    """A backend over an in-process DIT with change notification."""

    def __init__(self, dit: Optional[DIT] = None):
        # NB: an empty DIT is falsy (__len__), so test identity, not truth.
        self.dit = dit if dit is not None else DIT()
        self._subscriptions: Dict[int, Tuple[SearchRequest, int, ChangeCallback]] = {}
        self._next_sub = 0

    # -- reads ---------------------------------------------------------------

    def _search_impl(self, req: SearchRequest, ctx: RequestContext) -> SearchOutcome:
        try:
            base = req.base_dn()
        except Exception:
            return SearchOutcome(
                result=LdapResult(ResultCode.PROTOCOL_ERROR, message="bad base DN")
            )
        try:
            # The front end applies the authoritative filter after access
            # control; the backend pre-filters as an optimization but may
            # return supersets (e.g. cached providers, §10.3).
            entries = self.dit.search(
                base, req.scope, req.filter, attrs=None,
                size_limit=req.size_limit,
            )
        except NoSuchEntry:
            return SearchOutcome(
                result=LdapResult(
                    ResultCode.NO_SUCH_OBJECT, matched_dn=str(base)
                )
            )
        except SizeLimitExceeded as exc:
            # LDAP sizeLimitExceeded still delivers the first `limit`
            # entries; the DIT carries them on the exception.
            return SearchOutcome(
                entries=exc.partial,
                result=LdapResult(ResultCode.SIZE_LIMIT_EXCEEDED),
            )
        return SearchOutcome(entries=entries)

    # -- writes --------------------------------------------------------------

    def add(self, req: AddRequest, ctx: RequestContext) -> LdapResult:
        entry = req.to_entry()
        try:
            self.dit.add(entry)
        except EntryExists:
            return LdapResult(ResultCode.ENTRY_ALREADY_EXISTS, matched_dn=req.dn)
        except SchemaError as exc:
            return LdapResult(ResultCode.OBJECT_CLASS_VIOLATION, message=str(exc))
        except DitError as exc:
            return LdapResult(ResultCode.OTHER, message=str(exc))
        self._notify(entry, ChangeType.ADD)
        return LdapResult()

    def modify(self, req: ModifyRequest, ctx: RequestContext) -> LdapResult:
        def apply(entry: Entry) -> None:
            for kind, attr, values in req.changes:
                if kind == ModifyRequest.OP_ADD:
                    for v in values:
                        entry.add_value(attr, v)
                elif kind == ModifyRequest.OP_DELETE:
                    if values:
                        for v in values:
                            entry.remove_value(attr, v)
                    else:
                        entry.remove_attr(attr)
                elif kind == ModifyRequest.OP_REPLACE:
                    entry.put(attr, list(values))
                else:
                    raise DitError(f"unknown modify op {kind}")

        try:
            updated = self.dit.modify(DN.parse(req.dn), apply)
        except NoSuchEntry:
            return LdapResult(ResultCode.NO_SUCH_OBJECT, matched_dn=req.dn)
        except SchemaError as exc:
            return LdapResult(ResultCode.OBJECT_CLASS_VIOLATION, message=str(exc))
        except DitError as exc:
            return LdapResult(ResultCode.OTHER, message=str(exc))
        self._notify(updated, ChangeType.MODIFY)
        return LdapResult()

    def delete(self, dn: str, ctx: RequestContext) -> LdapResult:
        try:
            parsed = DN.parse(dn)
            entry = self.dit.get(parsed)
            self.dit.delete(parsed)
        except NoSuchEntry:
            return LdapResult(ResultCode.NO_SUCH_OBJECT, matched_dn=dn)
        except DitError as exc:
            return LdapResult(ResultCode.UNWILLING_TO_PERFORM, message=str(exc))
        self._notify(entry, ChangeType.DELETE)
        return LdapResult()

    # -- subscriptions ----------------------------------------------------------

    def subscribe(
        self,
        req: SearchRequest,
        ctx: RequestContext,
        push: ChangeCallback,
        change_types: int = ChangeType.ALL,
    ) -> Subscription:
        self._next_sub += 1
        key = self._next_sub
        self._subscriptions[key] = (req, change_types, push)
        return Subscription(lambda: self._subscriptions.pop(key, None))

    def _notify(self, entry: Entry, change: int) -> None:
        for req, change_types, push in list(self._subscriptions.values()):
            if not change_types & change:
                continue
            try:
                base = req.base_dn()
            except Exception:
                continue
            if not _in_scope(entry.dn, base, req.scope):
                continue
            # DELETE notifications match on scope only: the entry's final
            # attribute state is gone, so the filter cannot be applied.
            if change != ChangeType.DELETE and not req.filter.matches(entry):
                continue
            push(entry.copy(), change)

    def subscription_count(self) -> int:
        return len(self._subscriptions)


# Scope membership lives next to the DIT now (the planner needs it per
# candidate); keep the historical name for the GIIS/GRIS/monitor callers.
_in_scope = in_scope
