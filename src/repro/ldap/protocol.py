"""LDAP v3 wire protocol messages (RFC 4511 subset).

Every GRIP exchange is an ``LDAPMessage``::

    LDAPMessage ::= SEQUENCE { messageID INTEGER, protocolOp CHOICE {...},
                               controls [0] Controls OPTIONAL }

This module defines Python dataclasses for the protocol ops MDS-2 uses —
Bind/Unbind, Search (request, result entry, reference, done), Add,
Modify, Delete, Abandon, Extended — and their BER codecs, including the
full Filter encoding and request/response controls (used for the
persistent-search subscription extension, :mod:`repro.ldap.psearch`).

GRRP messages are "mapped onto LDAP add operations and then carried via
the normal LDAP protocol" (paper §10.1), so AddRequest doubles as the
registration carrier.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from . import ber
from .ber import BerError, Tag, TlvReader
from .dit import Scope
from .dn import DN
from .entry import Entry
from .filter import (
    And,
    Approx,
    Equality,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Presence,
    Substring,
)

__all__ = [
    "ProtocolError",
    "ResultCode",
    "LdapResult",
    "Control",
    "TRACE_CONTEXT_OID",
    "TraceContext",
    "BindRequest",
    "BindResponse",
    "UnbindRequest",
    "SearchRequest",
    "SearchResultEntry",
    "SearchResultReference",
    "SearchResultDone",
    "RawEntry",
    "ModifyRequest",
    "ModifyResponse",
    "AddRequest",
    "AddResponse",
    "DeleteRequest",
    "DeleteResponse",
    "AbandonRequest",
    "ExtendedRequest",
    "ExtendedResponse",
    "LdapMessage",
    "encode_message",
    "encode_message_with_op",
    "encode_search_entry",
    "decode_message",
    "encode_filter",
    "decode_filter",
    "request_encode_stats",
    "set_request_encode_cache",
]


class ProtocolError(ValueError):
    """Raised on malformed or unsupported protocol messages."""


class ResultCode:
    """RFC 4511 result codes used by this implementation."""

    SUCCESS = 0
    OPERATIONS_ERROR = 1
    PROTOCOL_ERROR = 2
    TIME_LIMIT_EXCEEDED = 3
    SIZE_LIMIT_EXCEEDED = 4
    AUTH_METHOD_NOT_SUPPORTED = 7
    STRONGER_AUTH_REQUIRED = 8
    REFERRAL = 10
    NO_SUCH_ATTRIBUTE = 16
    NO_SUCH_OBJECT = 32
    INVALID_CREDENTIALS = 49
    INSUFFICIENT_ACCESS_RIGHTS = 50
    BUSY = 51
    UNWILLING_TO_PERFORM = 53
    ENTRY_ALREADY_EXISTS = 68
    OBJECT_CLASS_VIOLATION = 65
    OTHER = 80

    _NAMES = {
        0: "success",
        1: "operationsError",
        2: "protocolError",
        3: "timeLimitExceeded",
        4: "sizeLimitExceeded",
        7: "authMethodNotSupported",
        8: "strongerAuthRequired",
        10: "referral",
        16: "noSuchAttribute",
        32: "noSuchObject",
        49: "invalidCredentials",
        50: "insufficientAccessRights",
        51: "busy",
        53: "unwillingToPerform",
        65: "objectClassViolation",
        68: "entryAlreadyExists",
        80: "other",
    }

    @classmethod
    def name(cls, code: int) -> str:
        return cls._NAMES.get(code, f"code{code}")


@dataclass(frozen=True)
class LdapResult:
    """The shared result trailer of most responses."""

    code: int = ResultCode.SUCCESS
    matched_dn: str = ""
    message: str = ""
    referrals: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.code == ResultCode.SUCCESS

    def describe(self) -> str:
        text = ResultCode.name(self.code)
        if self.message:
            text += f": {self.message}"
        return text


@dataclass(frozen=True)
class Control:
    """A request/response control (RFC 4511 §4.1.11)."""

    oid: str
    criticality: bool = False
    value: bytes = b""


# Distributed-tracing context, carried as a NON-critical control on
# outbound searches (and mirrored in GRRP registration metadata).  The
# payload follows W3C trace-context semantics: the caller's trace id,
# the span the callee should parent on, and the root's head-sampling
# decision.  Non-critical means a malformed payload is *ignored* — the
# search proceeds with an unparented root span — unlike the fail-closed
# chain-depth control (:data:`repro.giis.core.CHAIN_DEPTH_OID`), because
# tracing is advisory while loop protection is load-bearing.
TRACE_CONTEXT_OID = "1.3.6.1.4.1.57264.1.2"

_HEX_DIGITS = set("0123456789abcdef")


@dataclass(frozen=True)
class TraceContext:
    """Decoded trace-context control payload.

    BER shape::

        TraceContext ::= SEQUENCE {
            traceId       OCTET STRING,  -- 32 lowercase hex chars
            parentSpanId  OCTET STRING,  -- 16 lowercase hex chars
            sampled       BOOLEAN }
    """

    trace_id: str
    parent_span_id: str
    sampled: bool = True

    def to_control(self) -> Control:
        body = (
            ber.encode_octet_string(self.trace_id)
            + ber.encode_octet_string(self.parent_span_id)
            + ber.encode_boolean(self.sampled)
        )
        return Control(TRACE_CONTEXT_OID, False, ber.encode_sequence(body))

    @classmethod
    def from_control(cls, control: Control) -> "TraceContext":
        """Decode; raises :class:`ProtocolError` on any malformation."""
        if control.oid != TRACE_CONTEXT_OID:
            raise ProtocolError(f"not a trace-context control: {control.oid}")
        try:
            tag, body, end = ber.decode_tlv(control.value)
            if end != len(control.value) or tag.octet != ber.TAG_SEQUENCE:
                raise ProtocolError("trace context must be one SEQUENCE")
            r = TlvReader(body)
            trace_id = r.read_string()
            parent_span_id = r.read_string()
            sampled = r.read_boolean()
            r.expect_end()
        except BerError as exc:
            raise ProtocolError(f"bad trace context: {exc}") from exc
        if len(trace_id) != 32 or not set(trace_id) <= _HEX_DIGITS:
            raise ProtocolError(f"bad trace id {trace_id!r}")
        if len(parent_span_id) != 16 or not set(parent_span_id) <= _HEX_DIGITS:
            raise ProtocolError(f"bad parent span id {parent_span_id!r}")
        return cls(trace_id, parent_span_id, sampled)

    @classmethod
    def find(cls, controls: Sequence[Control]) -> Optional["TraceContext"]:
        """First well-formed trace context in *controls*, else None.

        Malformed payloads yield None rather than raising: the control
        is non-critical, so a bad context degrades to an untraced hop
        instead of failing the operation.
        """
        for control in controls or ():
            if control.oid == TRACE_CONTEXT_OID:
                try:
                    return cls.from_control(control)
                except ProtocolError:
                    return None
        return None


# --------------------------------------------------------------------------
# Protocol op dataclasses
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BindRequest:
    APP_TAG = 0
    version: int = 3
    name: str = ""
    # mechanism "simple": password auth; "GSI": signed-token SASL bind.
    mechanism: str = "simple"
    credentials: bytes = b""


@dataclass(frozen=True)
class BindResponse:
    APP_TAG = 1
    result: LdapResult = field(default_factory=LdapResult)
    server_credentials: bytes = b""


@dataclass(frozen=True)
class UnbindRequest:
    APP_TAG = 2


@dataclass(frozen=True)
class SearchRequest:
    APP_TAG = 3
    base: str = ""
    scope: Scope = Scope.SUBTREE
    size_limit: int = 0
    time_limit: int = 0
    types_only: bool = False
    filter: Filter = field(default_factory=lambda: Presence("objectclass"))
    attributes: Tuple[str, ...] = ()

    def base_dn(self) -> DN:
        return DN.parse(self.base)

    def wants(self) -> Optional[Tuple[str, ...]]:
        """Attribute selection in Entry.project form (None = all)."""
        return self.attributes if self.attributes else None


@dataclass(frozen=True)
class SearchResultEntry:
    APP_TAG = 4
    dn: str = ""
    attributes: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()

    @classmethod
    def from_entry(cls, entry: Entry) -> "SearchResultEntry":
        return cls(
            dn=str(entry.dn),
            attributes=tuple((a, tuple(vs)) for a, vs in entry.items()),
        )

    def to_entry(self) -> Entry:
        e = Entry(self.dn)
        for attr, values in self.attributes:
            for v in values:
                e.add_value(attr, v)
        return e


class RawEntry:
    """One search result still riding on its wire bytes.

    Streaming backends that gather results from *remote* services (the
    GIIS chaining to registered GRISs, §10.4) hand the front end the
    child's undecoded ``SearchResultEntry`` protocol-op TLV instead of a
    decoded :class:`~repro.ldap.entry.Entry`.  When the parent needs
    nothing from the payload — transparent access policy, no attribute
    selection — the op bytes are re-framed under the parent's message id
    via :func:`encode_message_with_op` with zero decode and zero
    re-encode.  Paths that must inspect the entry (dedup on DN, ACL
    filtering, projection) use the lazy accessors, each decoded at most
    once.

    The op bytes may be a :class:`memoryview` into a network receive
    buffer; such a view is only valid inside the receive callback.  Call
    :meth:`detach` before letting a RawEntry escape that scope.
    """

    __slots__ = ("_op", "_dn", "_entry")

    def __init__(self, op_bytes: "bytes | memoryview"):
        self._op = op_bytes
        self._dn: Optional[str] = None
        self._entry: Optional[Entry] = None

    @property
    def op_bytes(self) -> "bytes | memoryview":
        """The complete SearchResultEntry op TLV (tag + length + value)."""
        return self._op

    @property
    def dn(self) -> str:
        """The entry's DN, peeked without decoding the attribute list.

        The DN is the first OCTET STRING of the op body, so the peek
        walks exactly two TLV headers — cheap enough for per-entry dedup
        on the relay path.
        """
        if self._dn is None:
            _, body, _ = ber.decode_tlv(self._op)
            self._dn = TlvReader(body).read_string()
        return self._dn

    def to_entry(self) -> Entry:
        """The fully decoded entry (decoded lazily, at most once)."""
        if self._entry is None:
            tag, body, _ = ber.decode_tlv(self._op)
            op = _decode_op(tag, body)
            if not isinstance(op, SearchResultEntry):
                raise ProtocolError(
                    f"RawEntry holds {type(op).__name__}, not SearchResultEntry"
                )
            self._entry = op.to_entry()
        return self._entry

    def detach(self) -> "RawEntry":
        """Copy the op bytes out of any shared receive buffer."""
        if type(self._op) is not bytes:
            self._op = bytes(self._op)
        return self

    def __repr__(self) -> str:
        return f"RawEntry({len(self._op)}B)"


@dataclass(frozen=True)
class SearchResultReference:
    APP_TAG = 19
    uris: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SearchResultDone:
    APP_TAG = 5
    result: LdapResult = field(default_factory=LdapResult)


@dataclass(frozen=True)
class ModifyRequest:
    """Changes are (op, attr, values) with op in add/delete/replace."""

    APP_TAG = 6
    OP_ADD = 0
    OP_DELETE = 1
    OP_REPLACE = 2
    dn: str = ""
    changes: Tuple[Tuple[int, str, Tuple[str, ...]], ...] = ()


@dataclass(frozen=True)
class ModifyResponse:
    APP_TAG = 7
    result: LdapResult = field(default_factory=LdapResult)


@dataclass(frozen=True)
class AddRequest:
    APP_TAG = 8
    dn: str = ""
    attributes: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()

    @classmethod
    def from_entry(cls, entry: Entry) -> "AddRequest":
        return cls(
            dn=str(entry.dn),
            attributes=tuple((a, tuple(vs)) for a, vs in entry.items()),
        )

    def to_entry(self) -> Entry:
        e = Entry(self.dn)
        for attr, values in self.attributes:
            for v in values:
                e.add_value(attr, v)
        return e


@dataclass(frozen=True)
class AddResponse:
    APP_TAG = 9
    result: LdapResult = field(default_factory=LdapResult)


@dataclass(frozen=True)
class DeleteRequest:
    APP_TAG = 10
    dn: str = ""


@dataclass(frozen=True)
class DeleteResponse:
    APP_TAG = 11
    result: LdapResult = field(default_factory=LdapResult)


@dataclass(frozen=True)
class AbandonRequest:
    APP_TAG = 16
    message_id: int = 0


@dataclass(frozen=True)
class ExtendedRequest:
    APP_TAG = 23
    oid: str = ""
    value: bytes = b""


@dataclass(frozen=True)
class ExtendedResponse:
    APP_TAG = 24
    result: LdapResult = field(default_factory=LdapResult)
    oid: str = ""
    value: bytes = b""


ProtocolOp = Union[
    BindRequest,
    BindResponse,
    UnbindRequest,
    SearchRequest,
    SearchResultEntry,
    SearchResultReference,
    SearchResultDone,
    ModifyRequest,
    ModifyResponse,
    AddRequest,
    AddResponse,
    DeleteRequest,
    DeleteResponse,
    AbandonRequest,
    ExtendedRequest,
    ExtendedResponse,
]


@dataclass(frozen=True)
class LdapMessage:
    message_id: int
    op: ProtocolOp
    controls: Tuple[Control, ...] = ()


# --------------------------------------------------------------------------
# Filter codec (RFC 4511 §4.5.1)
# --------------------------------------------------------------------------

_F_AND, _F_OR, _F_NOT = 0, 1, 2
_F_EQ, _F_SUB, _F_GE, _F_LE, _F_PRESENT, _F_APPROX = 3, 4, 5, 6, 7, 8
_SUB_INITIAL, _SUB_ANY, _SUB_FINAL = 0, 1, 2


def _ava(attr: str, value: str) -> bytes:
    return ber.encode_octet_string(attr) + ber.encode_octet_string(value)


def encode_filter(f: Filter) -> bytes:
    if isinstance(f, And):
        return ber.encode_tlv(
            Tag.context(_F_AND, True), b"".join(encode_filter(c) for c in f.clauses)
        )
    if isinstance(f, Or):
        return ber.encode_tlv(
            Tag.context(_F_OR, True), b"".join(encode_filter(c) for c in f.clauses)
        )
    if isinstance(f, Not):
        return ber.encode_tlv(Tag.context(_F_NOT, True), encode_filter(f.clause))
    if isinstance(f, Equality):
        return ber.encode_tlv(Tag.context(_F_EQ, True), _ava(f.attr, f.value))
    if isinstance(f, GreaterOrEqual):
        return ber.encode_tlv(Tag.context(_F_GE, True), _ava(f.attr, f.value))
    if isinstance(f, LessOrEqual):
        return ber.encode_tlv(Tag.context(_F_LE, True), _ava(f.attr, f.value))
    if isinstance(f, Approx):
        return ber.encode_tlv(Tag.context(_F_APPROX, True), _ava(f.attr, f.value))
    if isinstance(f, Presence):
        return ber.encode_tlv(
            Tag.context(_F_PRESENT, False), f.attr.encode("utf-8")
        )
    if isinstance(f, Substring):
        subs = b""
        if f.initial is not None:
            subs += ber.encode_octet_string(f.initial, Tag.context(_SUB_INITIAL))
        for part in f.any:
            subs += ber.encode_octet_string(part, Tag.context(_SUB_ANY))
        if f.final is not None:
            subs += ber.encode_octet_string(f.final, Tag.context(_SUB_FINAL))
        body = ber.encode_octet_string(f.attr) + ber.encode_sequence(subs)
        return ber.encode_tlv(Tag.context(_F_SUB, True), body)
    raise ProtocolError(f"cannot encode filter node {type(f).__name__}")


def _decode_ava(body: bytes) -> Tuple[str, str]:
    r = TlvReader(body)
    attr = r.read_string()
    value = r.read_string()
    r.expect_end()
    return attr, value


def decode_filter(reader: TlvReader) -> Filter:
    tag, body = reader.read()
    if tag.tag_class != ber.TagClass.CONTEXT:
        raise ProtocolError(f"bad filter tag {tag.octet:#04x}")
    n = tag.number
    if n in (_F_AND, _F_OR):
        clauses: List[Filter] = []
        sub = TlvReader(body)
        while not sub.at_end():
            clauses.append(decode_filter(sub))
        if not clauses:
            raise ProtocolError("empty AND/OR filter")
        return And(tuple(clauses)) if n == _F_AND else Or(tuple(clauses))
    if n == _F_NOT:
        sub = TlvReader(body)
        inner = decode_filter(sub)
        sub.expect_end()
        return Not(inner)
    if n == _F_EQ:
        return Equality(*_decode_ava(body))
    if n == _F_GE:
        return GreaterOrEqual(*_decode_ava(body))
    if n == _F_LE:
        return LessOrEqual(*_decode_ava(body))
    if n == _F_APPROX:
        return Approx(*_decode_ava(body))
    if n == _F_PRESENT:
        return Presence(str(body, "utf-8"))
    if n == _F_SUB:
        r = TlvReader(body)
        attr = r.read_string()
        comps = r.read_sequence()
        r.expect_end()
        initial: Optional[str] = None
        anys: List[str] = []
        final: Optional[str] = None
        while not comps.at_end():
            t, v = comps.read()
            text = str(v, "utf-8")
            if t.number == _SUB_INITIAL:
                initial = text
            elif t.number == _SUB_ANY:
                anys.append(text)
            elif t.number == _SUB_FINAL:
                final = text
            else:
                raise ProtocolError(f"bad substring component tag {t.number}")
        if initial is None and not anys and final is None:
            raise ProtocolError("substring filter with no components")
        return Substring(attr, initial, tuple(anys), final)
    raise ProtocolError(f"unsupported filter choice [{n}]")


# --------------------------------------------------------------------------
# Result / attribute-list codecs
# --------------------------------------------------------------------------

_REFERRAL_TAG = Tag.context(3, True)


def _encode_result(result: LdapResult) -> bytes:
    out = (
        ber.encode_enumerated(result.code)
        + ber.encode_octet_string(result.matched_dn)
        + ber.encode_octet_string(result.message)
    )
    if result.referrals:
        uris = b"".join(ber.encode_octet_string(u) for u in result.referrals)
        out += ber.encode_tlv(_REFERRAL_TAG, uris)
    return out


def _decode_result(r: TlvReader) -> LdapResult:
    code = r.read_enumerated()
    matched = r.read_string()
    message = r.read_string()
    referrals: Tuple[str, ...] = ()
    if not r.at_end() and r.peek_tag().octet == _REFERRAL_TAG.octet:
        _, body = r.read()
        sub = TlvReader(body)
        uris = []
        while not sub.at_end():
            uris.append(sub.read_string())
        referrals = tuple(uris)
    return LdapResult(code, matched, message, referrals)


def _encode_attr_list(attrs: Sequence[Tuple[str, Tuple[str, ...]]]) -> bytes:
    parts = []
    for attr, values in attrs:
        vals = b"".join(ber.encode_octet_string(v) for v in values)
        parts.append(
            ber.encode_sequence([ber.encode_octet_string(attr), ber.encode_set(vals)])
        )
    return ber.encode_sequence(parts)


def _decode_attr_list(r: TlvReader) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    out: List[Tuple[str, Tuple[str, ...]]] = []
    seq = r.read_sequence()
    while not seq.at_end():
        item = seq.read_sequence()
        attr = item.read_string()
        vals_r = item.read_set()
        values: List[str] = []
        while not vals_r.at_end():
            values.append(vals_r.read_string())
        item.expect_end()
        out.append((attr, tuple(values)))
    return tuple(out)


# --------------------------------------------------------------------------
# SearchRequest encode cache
# --------------------------------------------------------------------------
#
# Clients pipeline the same few request shapes over and over (a pool
# fanning one query out to N children; a load generator replaying a
# fixed workload mix).  The two variable-length pieces of a
# SearchRequest body — the base-DN octet string and the recursive
# filter encoding — dominate its encode cost and depend only on values
# that are hashable and immutable, so both are memoized in small LRUs.
# The fixed-width middle (scope/deref/limits/typesOnly) is cheap and
# varies per call (the GIIS rewrites limits per hop), so it is always
# encoded fresh; the result is byte-identical to the uncached path.

_REQ_CACHE_LIMIT = 512
_req_lock = threading.Lock()
_base_cache: "OrderedDict[str, bytes]" = OrderedDict()
_filter_cache: "OrderedDict[Filter, bytes]" = OrderedDict()
_req_hits = 0
_req_misses = 0


def _cached(cache: "OrderedDict", key, encode) -> bytes:
    global _req_hits, _req_misses
    with _req_lock:
        out = cache.get(key)
        if out is not None:
            _req_hits += 1
            cache.move_to_end(key)
            return out
    encoded = encode(key)
    with _req_lock:
        _req_misses += 1
        cache[key] = encoded
        if len(cache) > _REQ_CACHE_LIMIT:
            cache.popitem(last=False)
    return encoded


def request_encode_stats() -> dict:
    """Counters for the SearchRequest encode cache (``ldap.encode.request.*``)."""
    with _req_lock:
        return {
            "hits": _req_hits,
            "misses": _req_misses,
            "base_cached": len(_base_cache),
            "filter_cached": len(_filter_cache),
        }


def set_request_encode_cache(enabled: bool = True, limit: int = _REQ_CACHE_LIMIT) -> None:
    """Resize (or with ``enabled=False``, disable) the request encode cache.

    Clears current contents and counters either way — used by tests and
    benchmarks that need a cold start.
    """
    global _REQ_CACHE_LIMIT, _req_hits, _req_misses
    with _req_lock:
        _REQ_CACHE_LIMIT = int(limit) if enabled else 0
        _base_cache.clear()
        _filter_cache.clear()
        _req_hits = 0
        _req_misses = 0


def _encode_base(base: str) -> bytes:
    if not _REQ_CACHE_LIMIT:
        return ber.encode_octet_string(base)
    return _cached(_base_cache, base, ber.encode_octet_string)


def _encode_filter_cached(f: Filter) -> bytes:
    if not _REQ_CACHE_LIMIT:
        return encode_filter(f)
    try:
        return _cached(_filter_cache, f, encode_filter)
    except TypeError:  # unhashable filter node — encode directly
        return encode_filter(f)


# --------------------------------------------------------------------------
# Op codecs
# --------------------------------------------------------------------------


def _encode_op(op: ProtocolOp) -> bytes:
    if isinstance(op, BindRequest):
        body = ber.encode_integer(op.version) + ber.encode_octet_string(op.name)
        if op.mechanism == "simple":
            body += ber.encode_tlv(Tag.context(0), op.credentials)
        else:
            sasl = ber.encode_octet_string(op.mechanism) + ber.encode_octet_string(
                op.credentials
            )
            body += ber.encode_tlv(Tag.context(3, True), sasl)
        return ber.encode_tlv(Tag.application(op.APP_TAG), body)
    if isinstance(op, BindResponse):
        body = _encode_result(op.result)
        if op.server_credentials:
            body += ber.encode_tlv(Tag.context(7), op.server_credentials)
        return ber.encode_tlv(Tag.application(op.APP_TAG), body)
    if isinstance(op, UnbindRequest):
        return ber.encode_tlv(Tag.application(op.APP_TAG, constructed=False), b"")
    if isinstance(op, SearchRequest):
        attrs = b"".join(ber.encode_octet_string(a) for a in op.attributes)
        body = (
            _encode_base(op.base)
            + ber.encode_enumerated(int(op.scope))
            + ber.encode_enumerated(0)  # derefAliases: never
            + ber.encode_integer(op.size_limit)
            + ber.encode_integer(op.time_limit)
            + ber.encode_boolean(op.types_only)
            + _encode_filter_cached(op.filter)
            + ber.encode_sequence(attrs)
        )
        return ber.encode_tlv(Tag.application(op.APP_TAG), body)
    if isinstance(op, SearchResultEntry):
        body = ber.encode_octet_string(op.dn) + _encode_attr_list(op.attributes)
        return ber.encode_tlv(Tag.application(op.APP_TAG), body)
    if isinstance(op, SearchResultReference):
        body = b"".join(ber.encode_octet_string(u) for u in op.uris)
        return ber.encode_tlv(Tag.application(op.APP_TAG), body)
    if isinstance(op, SearchResultDone):
        return ber.encode_tlv(Tag.application(op.APP_TAG), _encode_result(op.result))
    if isinstance(op, ModifyRequest):
        changes = b""
        for kind, attr, values in op.changes:
            vals = b"".join(ber.encode_octet_string(v) for v in values)
            change = ber.encode_enumerated(kind) + ber.encode_sequence(
                [ber.encode_octet_string(attr), ber.encode_set(vals)]
            )
            changes += ber.encode_sequence(change)
        body = ber.encode_octet_string(op.dn) + ber.encode_sequence(changes)
        return ber.encode_tlv(Tag.application(op.APP_TAG), body)
    if isinstance(op, ModifyResponse):
        return ber.encode_tlv(Tag.application(op.APP_TAG), _encode_result(op.result))
    if isinstance(op, AddRequest):
        body = ber.encode_octet_string(op.dn) + _encode_attr_list(op.attributes)
        return ber.encode_tlv(Tag.application(op.APP_TAG), body)
    if isinstance(op, AddResponse):
        return ber.encode_tlv(Tag.application(op.APP_TAG), _encode_result(op.result))
    if isinstance(op, DeleteRequest):
        # DelRequest is the bare DN octets under the application tag.
        return ber.encode_tlv(
            Tag.application(op.APP_TAG, constructed=False), op.dn.encode("utf-8")
        )
    if isinstance(op, DeleteResponse):
        return ber.encode_tlv(Tag.application(op.APP_TAG), _encode_result(op.result))
    if isinstance(op, AbandonRequest):
        return ber.encode_integer(
            op.message_id, Tag.application(op.APP_TAG, constructed=False)
        )
    if isinstance(op, ExtendedRequest):
        body = ber.encode_octet_string(op.oid, Tag.context(0))
        if op.value:
            body += ber.encode_tlv(Tag.context(1), op.value)
        return ber.encode_tlv(Tag.application(op.APP_TAG), body)
    if isinstance(op, ExtendedResponse):
        body = _encode_result(op.result)
        if op.oid:
            body += ber.encode_octet_string(op.oid, Tag.context(10))
        if op.value:
            body += ber.encode_tlv(Tag.context(11), op.value)
        return ber.encode_tlv(Tag.application(op.APP_TAG), body)
    raise ProtocolError(f"cannot encode op {type(op).__name__}")


def _decode_op(tag: Tag, body: "bytes | memoryview") -> ProtocolOp:
    if tag.tag_class != ber.TagClass.APPLICATION:
        raise ProtocolError(f"protocol op must be APPLICATION-tagged, got {tag}")
    n = tag.number
    r = TlvReader(body)
    if n == BindRequest.APP_TAG:
        version = r.read_integer()
        name = r.read_string()
        auth_tag, auth_body = r.read()
        if auth_tag.number == 0:
            return BindRequest(version, name, "simple", bytes(auth_body))
        if auth_tag.number == 3:
            sasl = TlvReader(auth_body)
            mech = sasl.read_string()
            creds = sasl.read_octet_string() if not sasl.at_end() else b""
            return BindRequest(version, name, mech, creds)
        raise ProtocolError(f"unsupported bind auth choice [{auth_tag.number}]")
    if n == BindResponse.APP_TAG:
        result = _decode_result(r)
        creds = b""
        if not r.at_end():
            t, v = r.read()
            if t.number == 7:
                creds = bytes(v)
        return BindResponse(result, creds)
    if n == UnbindRequest.APP_TAG:
        return UnbindRequest()
    if n == SearchRequest.APP_TAG:
        base = r.read_string()
        scope = Scope(r.read_enumerated())
        r.read_enumerated()  # derefAliases, ignored
        size_limit = r.read_integer()
        time_limit = r.read_integer()
        types_only = r.read_boolean()
        filt = decode_filter(r)
        attrs_r = r.read_sequence()
        attrs: List[str] = []
        while not attrs_r.at_end():
            attrs.append(attrs_r.read_string())
        return SearchRequest(
            base, scope, size_limit, time_limit, types_only, filt, tuple(attrs)
        )
    if n == SearchResultEntry.APP_TAG:
        dn = r.read_string()
        attrs = _decode_attr_list(r)
        return SearchResultEntry(dn, attrs)
    if n == SearchResultReference.APP_TAG:
        uris = []
        while not r.at_end():
            uris.append(r.read_string())
        return SearchResultReference(tuple(uris))
    if n == SearchResultDone.APP_TAG:
        return SearchResultDone(_decode_result(r))
    if n == ModifyRequest.APP_TAG:
        dn = r.read_string()
        changes_r = r.read_sequence()
        changes: List[Tuple[int, str, Tuple[str, ...]]] = []
        while not changes_r.at_end():
            ch = changes_r.read_sequence()
            kind = ch.read_enumerated()
            pa = ch.read_sequence()
            attr = pa.read_string()
            vals_r = pa.read_set()
            values: List[str] = []
            while not vals_r.at_end():
                values.append(vals_r.read_string())
            changes.append((kind, attr, tuple(values)))
        return ModifyRequest(dn, tuple(changes))
    if n == ModifyResponse.APP_TAG:
        return ModifyResponse(_decode_result(r))
    if n == AddRequest.APP_TAG:
        dn = r.read_string()
        attrs = _decode_attr_list(r)
        return AddRequest(dn, attrs)
    if n == AddResponse.APP_TAG:
        return AddResponse(_decode_result(r))
    if n == DeleteRequest.APP_TAG:
        return DeleteRequest(str(body, "utf-8"))
    if n == DeleteResponse.APP_TAG:
        return DeleteResponse(_decode_result(r))
    if n == AbandonRequest.APP_TAG:
        return AbandonRequest(ber.decode_integer(body))
    if n == ExtendedRequest.APP_TAG:
        oid, value = "", b""
        while not r.at_end():
            t, v = r.read()
            if t.number == 0:
                oid = str(v, "utf-8")
            elif t.number == 1:
                value = bytes(v)
        return ExtendedRequest(oid, value)
    if n == ExtendedResponse.APP_TAG:
        result = _decode_result(r)
        oid, value = "", b""
        while not r.at_end():
            t, v = r.read()
            if t.number == 10:
                oid = str(v, "utf-8")
            elif t.number == 11:
                value = bytes(v)
        return ExtendedResponse(result, oid, value)
    raise ProtocolError(f"unsupported protocol op [APPLICATION {n}]")


_CONTROLS_TAG = Tag.context(0, True)


def encode_message(message: LdapMessage) -> bytes:
    """Encode a complete LDAPMessage to bytes."""
    body = ber.encode_integer(message.message_id) + _encode_op(message.op)
    if message.controls:
        parts = []
        for c in message.controls:
            inner = ber.encode_octet_string(c.oid)
            if c.criticality:
                inner += ber.encode_boolean(True)
            if c.value:
                inner += ber.encode_octet_string(c.value)
            parts.append(ber.encode_sequence(inner))
        body += ber.encode_tlv(_CONTROLS_TAG, b"".join(parts))
    return ber.encode_sequence(body)


def encode_search_entry(entry: "Entry") -> bytes:
    """Encode one DIT entry as a SearchResultEntry protocol-op TLV.

    This is the cacheable unit for the server's entry-encode cache: the
    op bytes do not depend on the message id, so a cached body can be
    composed with any message header via :func:`encode_message_with_op`.
    """
    return _encode_op(SearchResultEntry.from_entry(entry))


def encode_message_with_op(
    message_id: int, op_bytes: "bytes | memoryview"
) -> bytes:
    """Wrap pre-encoded protocol-op bytes in an LDAPMessage envelope.

    Byte-identical to ``encode_message(LdapMessage(message_id, op))`` for
    a message without controls.  Accepts a memoryview (a relay frame
    still aliasing its receive buffer); assembling the outgoing frame is
    the one unavoidable copy on the relay path.
    """
    if type(op_bytes) is not bytes:
        op_bytes = bytes(op_bytes)
    return ber.encode_sequence(ber.encode_integer(message_id) + op_bytes)


def decode_message(data: "bytes | memoryview") -> LdapMessage:
    """Decode bytes into an LDAPMessage; rejects trailing garbage."""
    if type(data) is not memoryview:
        data = memoryview(data)
    try:
        tag, body, end = ber.decode_tlv(data)
    except BerError as exc:
        raise ProtocolError(f"bad LDAPMessage framing: {exc}") from exc
    if end != len(data):
        raise ProtocolError("trailing bytes after LDAPMessage")
    if tag.octet != ber.TAG_SEQUENCE:
        raise ProtocolError("LDAPMessage must be a SEQUENCE")
    r = TlvReader(body)
    try:
        message_id = r.read_integer()
        op_tag, op_body = r.read()
        op = _decode_op(op_tag, op_body)
        controls: List[Control] = []
        if not r.at_end():
            t, v = r.read()
            if t.octet == _CONTROLS_TAG.octet:
                sub = TlvReader(v)
                while not sub.at_end():
                    c = sub.read_sequence()
                    oid = c.read_string()
                    criticality = False
                    value = b""
                    if not c.at_end() and c.peek_tag().number == ber.TAG_BOOLEAN:
                        criticality = c.read_boolean()
                    if not c.at_end():
                        value = c.read_octet_string()
                    controls.append(Control(oid, criticality, value))
    except BerError as exc:
        raise ProtocolError(f"bad LDAPMessage body: {exc}") from exc
    return LdapMessage(message_id, op, tuple(controls))
