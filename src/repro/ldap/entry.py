"""Directory entries: the unit of the LDAP data model.

An entry is a DN plus a set of typed attributes (Figure 3 of the paper).
Every entry carries one or more ``objectclass`` values that type it; the
remaining attributes are value bindings according to those types.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from .attributes import AttributeValues, normalize_attr_name
from .dn import DN

__all__ = ["Entry", "WireCache"]

# Attribute conventionally holding the entry's object classes.
OBJECTCLASS = "objectclass"


class WireCache:
    """A shared cell caching one entry's encoded SearchResultEntry body.

    The DIT attaches a *fresh* cell to every stored post-image (the
    :class:`~repro.ldap.storage.ChangeOp` choke point), and entry copies
    share their source's cell — so every search result copied from the
    same unchanged stored entry resolves to the same cell, and the
    server encodes that entry once instead of once per client.
    Invalidation is by replacement: a new post-image gets a new empty
    cell, and local mutation of a copy drops the copy's reference, so a
    stale body can never be observed through a live entry.
    """

    __slots__ = ("body",)

    def __init__(self) -> None:
        self.body: Optional[bytes] = None


class Entry:
    """A mutable LDAP entry: DN + attribute map.

    Attribute names are case-insensitive; each attribute holds a
    duplicate-free ordered multi-set of string values.  Construction
    accepts plain strings, lists of strings, or numbers (stringified)::

        Entry("hn=hostX", objectclass="computer", system="mips irix")
    """

    __slots__ = ("dn", "_attrs", "_wire")

    def __init__(
        self,
        dn: DN | str,
        attrs: Optional[Mapping[str, object]] = None,
        **kwattrs: object,
    ):
        self.dn = DN.of(dn)
        self._attrs: Dict[str, AttributeValues] = {}
        # Encode-cache cell, attached by the DIT when this object is a
        # stored post-image and propagated to full copies; None means
        # "not served from a cacheable store" and is always safe.
        self._wire: Optional[WireCache] = None
        merged: Dict[str, object] = dict(attrs or {})
        merged.update(kwattrs)
        for name, values in merged.items():
            self.put(name, values)

    # -- mutation ----------------------------------------------------------
    #
    # Every mutator drops this entry's wire-cache reference (not the
    # shared cell: other unmutated copies may still serve from it).

    def put(self, attr: str, values: object) -> None:
        """Replace *attr* with *values* (str, number, or iterable)."""
        self._wire = None
        key = normalize_attr_name(attr)
        av = AttributeValues(attr)
        for v in _as_values(values):
            av.add(v)
        if av:
            self._attrs[key] = av
        else:
            self._attrs.pop(key, None)

    def add_value(self, attr: str, value: object) -> bool:
        self._wire = None
        key = normalize_attr_name(attr)
        if key not in self._attrs:
            self._attrs[key] = AttributeValues(attr)
        return self._attrs[key].add(str(value))

    def remove_value(self, attr: str, value: object) -> bool:
        self._wire = None
        key = normalize_attr_name(attr)
        av = self._attrs.get(key)
        if av is None:
            return False
        removed = av.remove(str(value))
        if not av:
            del self._attrs[key]
        return removed

    def remove_attr(self, attr: str) -> bool:
        self._wire = None
        return self._attrs.pop(normalize_attr_name(attr), None) is not None

    # -- access ------------------------------------------------------------

    def get(self, attr: str) -> List[str]:
        av = self._attrs.get(normalize_attr_name(attr))
        return av.values() if av else []

    def first(self, attr: str, default: Optional[str] = None) -> Optional[str]:
        av = self._attrs.get(normalize_attr_name(attr))
        return av.first if av else default

    def has(self, attr: str) -> bool:
        return normalize_attr_name(attr) in self._attrs

    def has_value(self, attr: str, value: str) -> bool:
        av = self._attrs.get(normalize_attr_name(attr))
        return av.contains(value) if av else False

    def attribute_names(self) -> List[str]:
        return [av.attr for av in self._attrs.values()]

    def items(self) -> Iterator[tuple[str, List[str]]]:
        for av in self._attrs.values():
            yield av.attr, av.values()

    @property
    def object_classes(self) -> List[str]:
        return self.get(OBJECTCLASS)

    def is_a(self, object_class: str) -> bool:
        return self.has_value(OBJECTCLASS, object_class)

    # -- derived views -----------------------------------------------------

    def project(self, attrs: Optional[Sequence[str]]) -> "Entry":
        """Copy with only the requested attributes (None/'*' = all).

        Implements the GRIP/LDAP attribute-selection feature the paper
        highlights: "a subset of attributes ... can be retrieved —
        reducing the amount of information that must be transmitted".
        """
        if attrs is None or any(a == "*" for a in attrs):
            return self.copy()
        wanted = {normalize_attr_name(a) for a in attrs}
        out = Entry(self.dn)
        for key, av in self._attrs.items():
            if key in wanted:
                out._attrs[key] = av.copy()
        return out

    def copy(self) -> "Entry":
        out = Entry(self.dn)
        out._attrs = {k: av.copy() for k, av in self._attrs.items()}
        # A full copy is wire-equivalent to its source: share the cell.
        out._wire = self._wire
        return out

    def with_dn(self, dn: DN | str) -> "Entry":
        out = self.copy()
        out.dn = DN.of(dn)
        out._wire = None  # renamed: the cached body carries the old DN
        return out

    def stamp(self, now: Optional[float] = None, ttl: Optional[float] = None) -> "Entry":
        """Attach the currency metadata §2.1 of the paper requires.

        Adds ``mds-timestamp`` (seconds since the epoch at production
        time) and optionally ``mds-validto`` so consumers can judge
        staleness.
        """
        t = time.time() if now is None else now
        self.put("mds-timestamp", repr(float(t)))
        if ttl is not None:
            self.put("mds-validto", repr(float(t) + float(ttl)))
        return self

    def timestamp(self) -> Optional[float]:
        v = self.first("mds-timestamp")
        return float(v) if v is not None else None

    def valid_to(self) -> Optional[float]:
        v = self.first("mds-validto")
        return float(v) if v is not None else None

    def is_stale(self, now: float) -> bool:
        vt = self.valid_to()
        return vt is not None and now > vt

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entry):
            return NotImplemented
        if self.dn != other.dn:
            return False
        if set(self._attrs) != set(other._attrs):
            return False
        return all(self._attrs[k] == other._attrs[k] for k in self._attrs)

    def __repr__(self) -> str:
        return f"Entry({str(self.dn)!r}, {dict(self.items())!r})"


def _as_values(values: object) -> Iterable[str]:
    if values is None:
        return []
    if isinstance(values, str):
        return [values]
    if isinstance(values, (int, float)):
        return [str(values)]
    if isinstance(values, (list, tuple, set, frozenset)):
        return [str(v) for v in values]
    if isinstance(values, AttributeValues):
        return values.values()
    raise TypeError(f"cannot build attribute values from {type(values).__name__}")
