"""Filter-aware query planning over an :class:`AttributeIndex`.

The planner walks a parsed RFC 4515 :class:`~repro.ldap.filter.Filter`
tree and extracts the *indexable* part of the assertion:

* ``Equality`` → the attribute's equality posting list;
* ``Presence`` → the attribute's presence set;
* ``And`` → the intersection of every plannable conjunct (any single
  indexed conjunct suffices — the others are re-verified);
* ``Or`` → the union of the disjuncts, but only when *all* of them are
  plannable (one unplannable disjunct could match keys outside every
  index, so a partial union would drop results).

Everything else — ``Substring``, ordering (``>=``/``<=``), ``Not``,
``Approx`` — returns ``None``: *no candidate set*, fall back to the full
scan.  ``Not`` in particular cannot use its operand's postings (its
matches are the complement), but a ``Not`` nested under an ``And`` is
harmless: the AND plans from its other conjuncts.

Correctness contract: a non-``None`` candidate set is always a
**superset** of the keys matching the filter (restricted to the indexed
attribute semantics), never missing a match.  Callers re-verify every
candidate with ``filt.matches``, so planned and scanned searches return
byte-identical results; the index only prunes the candidate space.

Candidate sets may be live index views — consume them under the index
owner's lock, or copy.
"""

from __future__ import annotations

from typing import Hashable, Optional, Set

from .filter import And, Equality, Filter, Or, Presence
from .index import AttributeIndex

__all__ = ["candidates_for", "is_plannable"]


def candidates_for(
    filt: Optional[Filter], index: AttributeIndex
) -> Optional[Set[Hashable]]:
    """Candidate key set for *filt*, or None to fall back to a scan."""
    if filt is None:
        return None
    if isinstance(filt, Equality):
        return index.equality(filt.attr, filt.value)
    if isinstance(filt, Presence):
        return index.presence(filt.attr)
    if isinstance(filt, And):
        plans = []
        for clause in filt.clauses:
            candidates = candidates_for(clause, index)
            if candidates is not None:
                plans.append(candidates)
        if not plans:
            return None
        # Intersect smallest-first so the working set shrinks fastest.
        plans.sort(key=len)
        out = plans[0]
        for candidates in plans[1:]:
            out = out & candidates
            if not out:
                break
        return out
    if isinstance(filt, Or):
        plans = []
        for clause in filt.clauses:
            candidates = candidates_for(clause, index)
            if candidates is None:
                return None  # one unindexed branch poisons the union
            plans.append(candidates)
        out: Set[Hashable] = set()
        for candidates in plans:
            out |= candidates
        return out
    # Substring / ordering / Not / Approx: not index-answerable.
    return None


def is_plannable(filt: Optional[Filter], index: AttributeIndex) -> bool:
    """Whether the planner would produce a candidate set for *filt*."""
    if filt is None:
        return False
    if isinstance(filt, (Equality, Presence)):
        return index.covers(filt.attr)
    if isinstance(filt, And):
        return any(is_plannable(c, index) for c in filt.clauses)
    if isinstance(filt, Or):
        return bool(filt.clauses) and all(
            is_plannable(c, index) for c in filt.clauses
        )
    return False
