"""Client connection pool with request pipelining.

A :class:`~repro.ldap.client.LdapClient` already multiplexes many
in-flight operations over one connection via message ids, so pipelining
is free — the pool's job is to keep a small number of warm, healthy
connections per remote and hand out the least-loaded one, instead of
the dial-per-query pattern that dominated GIIS chain latency.

Health checking is passive: a client whose connection died flips its
``closed`` flag (close handler → ``_fail_all``), and the next checkout
for that remote evicts it and redials.  Callers that watch a send fail
can accelerate this with :meth:`LdapClientPool.discard`.

Streaming searches (``search_async(..., on_entry=...)``) ride pooled
clients unchanged: per-entry callbacks fire on the owning connection's
receive path, and an in-flight streamed search counts toward
``pending_count`` until its Done arrives, so least-loaded checkout
naturally spreads long-running streams across the warm connections.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from ..obs.metrics import MetricsRegistry
from .client import LdapClient

__all__ = ["LdapClientPool"]

# A pool is transport- and credential-agnostic: the owner supplies the
# whole dial (connect + optional bind), returning None on failure.
Dialer = Callable[[str], Optional[LdapClient]]


class LdapClientPool:
    """Bounded warm connections per remote, least-loaded checkout.

    *dial* builds a fresh bound client for a remote key (an LDAP URL
    string), or returns None if the remote is unreachable.  *size*
    bounds the warm connections kept per remote; checkout grows the
    pool toward the bound only while every existing connection is busy
    (has operations in flight), so an idle remote sits at one socket.
    """

    def __init__(
        self,
        dial: Dialer,
        size: int = 2,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self._dial = dial
        self._size = size
        self._lock = threading.Lock()
        self._clients: Dict[str, List[LdapClient]] = {}
        metrics = metrics or MetricsRegistry()
        self._dials = metrics.counter("pool.dials")
        self._reuses = metrics.counter("pool.reuses")
        self._evictions = metrics.counter("pool.evictions")
        metrics.gauge_fn("pool.connections", self.__len__)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._clients.values())

    @property
    def size(self) -> int:
        return self._size

    def _sweep(self, remote: str) -> List[LdapClient]:
        """Drop dead clients for *remote*; caller holds the lock."""
        clients = self._clients.get(remote)
        if not clients:
            return []
        live = [c for c in clients if not c.closed]
        if len(live) != len(clients):
            self._evictions.inc(len(clients) - len(live))
            if live:
                self._clients[remote] = live
            else:
                del self._clients[remote]
        return live

    def client_for(self, remote: str) -> Optional[LdapClient]:
        """Check out a healthy client for *remote*, dialing if needed.

        Checkout is non-exclusive — pipelining means many callers share
        one connection — so there is no check-in; just stop using it.
        """
        with self._lock:
            live = self._sweep(remote)
            if live:
                best = min(live, key=lambda c: c.pending_count)
                # Reuse unless everything is busy and there is still
                # headroom to warm another connection.
                if best.pending_count == 0 or len(live) >= self._size:
                    self._reuses.inc()
                    return best
        client = self._dial(remote)  # no lock held: dialing can block
        if client is None:
            # Unreachable right now; an existing live connection (even a
            # busy one) still beats failing the caller's query outright.
            with self._lock:
                live = self._sweep(remote)
                if live:
                    self._reuses.inc()
                    return min(live, key=lambda c: c.pending_count)
            return None
        self._dials.inc()
        with self._lock:
            live = self._sweep(remote)
            if len(live) >= self._size:
                # Raced another dialer past the bound; fold back onto
                # the pool and release the surplus socket.
                surplus = client
                self._reuses.inc()
                client = min(live, key=lambda c: c.pending_count)
            else:
                surplus = None
                self._clients.setdefault(remote, []).append(client)
        if surplus is not None:
            surplus.unbind()
        return client

    def discard(self, remote: str, client: LdapClient) -> None:
        """Evict *client* after the caller saw it fail mid-operation."""
        with self._lock:
            clients = self._clients.get(remote)
            if clients and client in clients:
                clients.remove(client)
                self._evictions.inc()
                if not clients:
                    del self._clients[remote]
        client.unbind()

    def clear(self) -> None:
        """Close every pooled connection (they redial on next checkout)."""
        with self._lock:
            drained, self._clients = self._clients, {}
        for clients in drained.values():
            for client in clients:
                client.unbind()

    def close(self) -> None:
        self.clear()
