"""Object-class schema: typed entity descriptions (paper §8, Figure 3).

The paper argues for "a convenient and extensible mechanism for defining
information types" so that entities sharing major characteristics have
comparable descriptions.  This module provides a small schema system:
object classes with required/optional attributes and single inheritance,
a registry, and validation.  The built-in ``GRID_SCHEMA`` covers every
object class the paper's Figure 3 and the MDS-2 providers use.

Schema enforcement is optional (the paper notes the Condor Matchmaker
works without one); the DIT accepts a schema but defaults to none.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from .attributes import normalize_attr_name
from .entry import Entry

__all__ = ["ObjectClass", "Schema", "SchemaError", "GRID_SCHEMA"]


class SchemaError(ValueError):
    """Raised when an entry violates its declared object classes."""


@dataclass(frozen=True)
class ObjectClass:
    """Definition of one object class.

    ``must`` attributes are required on any entry carrying the class;
    ``may`` attributes are permitted.  ``superior`` names a parent class
    whose must/may sets are inherited.
    """

    name: str
    must: FrozenSet[str] = frozenset()
    may: FrozenSet[str] = frozenset()
    superior: Optional[str] = None
    abstract: bool = False

    @classmethod
    def make(
        cls,
        name: str,
        must: Iterable[str] = (),
        may: Iterable[str] = (),
        superior: Optional[str] = None,
        abstract: bool = False,
    ) -> "ObjectClass":
        return cls(
            name=name,
            must=frozenset(normalize_attr_name(a) for a in must),
            may=frozenset(normalize_attr_name(a) for a in may),
            superior=superior,
            abstract=abstract,
        )


# Attributes every MDS entry may carry: naming and currency metadata (§2.1).
_COMMON_MAY = (
    "objectclass",
    "mds-timestamp",
    "mds-validto",
    "description",
    "owner",
)


class Schema:
    """A registry of object classes with validation."""

    def __init__(self, classes: Iterable[ObjectClass] = ()):
        self._classes: Dict[str, ObjectClass] = {}
        for oc in classes:
            self.register(oc)

    def register(self, oc: ObjectClass) -> None:
        key = oc.name.lower()
        if key in self._classes:
            raise SchemaError(f"duplicate object class {oc.name!r}")
        if oc.superior is not None and oc.superior.lower() not in self._classes:
            raise SchemaError(
                f"object class {oc.name!r} extends unknown {oc.superior!r}"
            )
        self._classes[key] = oc

    def get(self, name: str) -> ObjectClass:
        try:
            return self._classes[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown object class {name!r}") from None

    def knows(self, name: str) -> bool:
        return name.lower() in self._classes

    def class_names(self) -> List[str]:
        return [oc.name for oc in self._classes.values()]

    def lineage(self, name: str) -> List[ObjectClass]:
        """The class and all its ancestors, most-derived first."""
        out: List[ObjectClass] = []
        seen: Set[str] = set()
        cur: Optional[str] = name
        while cur is not None:
            key = cur.lower()
            if key in seen:
                raise SchemaError(f"inheritance cycle at {cur!r}")
            seen.add(key)
            oc = self.get(cur)
            out.append(oc)
            cur = oc.superior
        return out

    def effective_must(self, names: Iterable[str]) -> Set[str]:
        must: Set[str] = set()
        for name in names:
            for oc in self.lineage(name):
                must |= oc.must
        return must

    def effective_may(self, names: Iterable[str]) -> Set[str]:
        may: Set[str] = set(normalize_attr_name(a) for a in _COMMON_MAY)
        for name in names:
            for oc in self.lineage(name):
                may |= oc.may | oc.must
        return may

    def validate(self, entry: Entry) -> None:
        """Raise :class:`SchemaError` if *entry* violates the schema."""
        classes = entry.object_classes
        if not classes:
            raise SchemaError(f"{entry.dn}: entry has no objectclass")
        for name in classes:
            oc = self.get(name)
            if oc.abstract and len(classes) == 1:
                raise SchemaError(
                    f"{entry.dn}: abstract class {name!r} cannot stand alone"
                )
        must = self.effective_must(classes)
        may = self.effective_may(classes)
        present = {normalize_attr_name(a) for a in entry.attribute_names()}
        missing = must - present
        if missing:
            raise SchemaError(
                f"{entry.dn}: missing required attributes {sorted(missing)}"
            )
        extra = present - may
        if extra:
            raise SchemaError(
                f"{entry.dn}: attributes {sorted(extra)} not allowed by "
                f"classes {classes}"
            )

    def is_valid(self, entry: Entry) -> bool:
        try:
            self.validate(entry)
            return True
        except SchemaError:
            return False


def _grid_schema() -> Schema:
    s = Schema()
    # Abstract roots.
    s.register(ObjectClass.make("top", may=("cn",), abstract=True))
    s.register(
        ObjectClass.make(
            "organization", must=("o",), may=("l", "seealso"), superior="top"
        )
    )
    s.register(
        ObjectClass.make(
            "organizationalunit", must=("ou",), may=("l", "seealso"), superior="top"
        )
    )
    # Figure 3 classes.
    s.register(
        ObjectClass.make(
            "computer",
            must=("hn",),
            may=(
                "system",
                "osversion",
                "cputype",
                "cpucount",
                "memorysize",
                "architecture",
                "manufacturer",
            ),
            superior="top",
        )
    )
    s.register(
        ObjectClass.make("service", must=("url",), may=("protocol",), superior="top")
    )
    s.register(
        ObjectClass.make(
            "queue",
            must=("queue",),
            may=("dispatchtype", "maxjobs", "jobcount"),
            superior="service",
        )
    )
    s.register(ObjectClass.make("perf", must=("perf",), superior="top"))
    s.register(
        ObjectClass.make(
            "loadaverage",
            must=("period",),
            may=("load1", "load5", "load15"),
            superior="perf",
        )
    )
    s.register(ObjectClass.make("storage", must=("store",), superior="top"))
    s.register(
        ObjectClass.make(
            "filesystem",
            must=("path",),
            may=("free", "total", "readonly"),
            superior="storage",
        )
    )
    # Networking / NWS entities (§4.1's non-enumerable namespace).
    s.register(
        ObjectClass.make(
            "networklink",
            must=("src", "dst"),
            may=("bandwidth", "latency", "forecastmethod", "measured"),
            superior="top",
        )
    )
    # Registrations and running computations.
    s.register(
        ObjectClass.make(
            "giisregistration",
            must=("url",),
            may=("ttl", "notificationtype", "regsource"),
            superior="service",
        )
    )
    s.register(
        ObjectClass.make(
            "application",
            must=("appname",),
            may=("status", "progress", "resource", "accuracy"),
            superior="top",
        )
    )
    s.register(
        ObjectClass.make(
            "replica",
            must=("lfn", "store"),
            may=("size", "checksum"),
            superior="top",
        )
    )
    return s


GRID_SCHEMA = _grid_schema()
