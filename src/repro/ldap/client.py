"""LDAP client: the consumer side of GRIP.

The client is callback-driven so the same code runs on the simulator
(single-threaded, virtual time) and over TCP (reader threads).  Every
async method takes one completion callback with the uniform signature
``on_done(outcome, error)``: *outcome* is always the accumulated
:class:`SearchResult` (entries/referrals/result), and *error* is
``None`` on success or the :class:`LdapError` describing a non-success
result code or transport failure.  Blocking convenience wrappers
(:meth:`LdapClient.search`, etc.) are provided for real transports and
for simulator use via a *driver* — a callable that pumps the simulation
until the operation completes.

``search_async``/``bind_async`` accept an optional ``deadline`` (in
seconds): it is stamped onto the wire request as the LDAP ``timeLimit``
(searches) so deadline-aware servers stop working at expiry, and — when
the client was built with a ``clock`` — also enforced locally, failing
the pending operation with ``TIME_LIMIT_EXCEEDED`` even against a
server that never answers.

Subscriptions (persistent search) deliver
:class:`~repro.ldap.entry.Entry` changes until cancelled; cancel sends
an Abandon.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..net.clock import Clock
from ..net.transport import Connection, ConnectionClosed
from .backend import ChangeType
from .ber import TAG_SEQUENCE, BerError, Tag, TlvReader, decode_tlv
from .dit import Scope
from .dn import DN
from .entry import Entry
from .filter import Filter, parse as parse_filter
from .protocol import (
    AbandonRequest,
    AddRequest,
    AddResponse,
    BindRequest,
    BindResponse,
    Control,
    DeleteRequest,
    DeleteResponse,
    ExtendedRequest,
    ExtendedResponse,
    LdapMessage,
    LdapResult,
    ModifyRequest,
    ModifyResponse,
    ProtocolError,
    RawEntry,
    ResultCode,
    SearchRequest,
    SearchResultDone,
    SearchResultEntry,
    SearchResultReference,
    TraceContext,
    UnbindRequest,
    decode_message,
    encode_message,
)
from .psearch import EntryChangeNotification, PersistentSearchControl

__all__ = [
    "LdapError",
    "SearchResult",
    "SubscriptionHandle",
    "LdapClient",
    "DoneCallback",
]


class LdapError(Exception):
    """A non-success LDAP result, or a transport failure."""

    def __init__(self, result: LdapResult):
        super().__init__(result.describe())
        self.result = result

    @classmethod
    def transport(cls, message: str) -> "LdapError":
        return cls(LdapResult(ResultCode.OTHER, message=message))


@dataclass
class SearchResult:
    """Everything one search returned."""

    entries: List[Entry] = field(default_factory=list)
    referrals: List[str] = field(default_factory=list)
    result: LdapResult = field(default_factory=LdapResult)

    @property
    def ok(self) -> bool:
        return self.result.ok

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


class SubscriptionHandle:
    """A live persistent search; cancel() abandons it.

    ``active`` turns False either locally (:meth:`cancel`) or when the
    server side concludes the search — a ``SearchResultDone`` answer or
    a connection loss failing all pendings.  A cancel after that is a
    no-op: sending an Abandon for a message id the server already
    concluded could cancel an unrelated future operation.
    """

    def __init__(self, client: "LdapClient", msg_id: int):
        self._client = client
        self._msg_id = msg_id
        self.active = True

    def cancel(self) -> None:
        if not self.active:
            return
        self.active = False
        self._client._abandon(self._msg_id)


# Uniform completion signature for every async client method: the
# accumulated result plus None, or the result-so-far plus the LdapError
# explaining why it is not a success.
DoneCallback = Callable[[SearchResult, Optional[LdapError]], None]


class _Pending:
    """Server-reply bookkeeping for one outstanding message id.

    Conclude-once contract: a pending is concluded by whoever *pops* it
    out of ``LdapClient._pending`` under the client lock — server reply,
    local deadline expiry, or connection-death ``_fail_all``.  Only the
    popper may call ``_complete``; a contender that finds the id already
    gone drops its outcome.  This is what makes a server answer racing a
    deadline timer deliver exactly one ``on_done``.
    """

    __slots__ = ("kind", "acc", "on_done", "on_change", "on_entry", "event",
                 "timer", "handle")

    def __init__(self, kind: str, on_done: Optional[DoneCallback] = None,
                 on_change=None, on_entry=None):
        self.kind = kind
        self.acc = SearchResult()
        self.on_done = on_done
        self.on_change = on_change
        self.on_entry = on_entry  # streaming search: per-entry callback
        self.event: Optional[threading.Event] = None
        self.timer = None  # local deadline TimerHandle, when armed
        self.handle: Optional[SubscriptionHandle] = None  # subscribe only


# A driver pumps progress while a blocking wrapper waits: for the
# simulator pass e.g. ``sim.run_for`` bound to small steps; for TCP the
# default None blocks on a threading.Event.
Driver = Callable[[], None]


class LdapClient:
    """One LDAP connection with request/response correlation.

    *clock* is optional and only needed for client-side ``deadline``
    enforcement; without it a deadline still travels on the wire as the
    search ``timeLimit`` but a dead server is only detected by the
    blocking wrappers' own timeout.
    """

    def __init__(
        self,
        conn: Connection,
        driver: Optional[Driver] = None,
        clock: Optional[Clock] = None,
    ):
        self.conn = conn
        self.driver = driver
        self.clock = clock
        self._next_id = 0
        self._pending: Dict[int, _Pending] = {}
        self._lock = threading.Lock()
        self.identity: Optional[str] = None
        self.closed = False
        conn.set_close_handler(self._on_close)
        conn.set_receiver(self._on_message)

    # -- low-level ----------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Operations in flight — the pool's least-loaded signal."""
        with self._lock:
            return len(self._pending)

    def _allocate(self, pending: _Pending) -> int:
        with self._lock:
            self._next_id += 1
            self._pending[self._next_id] = pending
            return self._next_id

    def _send(self, message: LdapMessage) -> None:
        try:
            self.conn.send(encode_message(message))
        except ConnectionClosed as exc:
            self._fail_all(str(exc))
            raise LdapError.transport(str(exc)) from exc

    def _on_close(self) -> None:
        self._fail_all("connection closed")

    def _fail_all(self, why: str) -> None:
        self.closed = True
        with self._lock:
            pending, self._pending = dict(self._pending), {}
        failure = LdapResult(ResultCode.OTHER, message=why)
        for p in pending.values():
            p.acc.result = failure
            self._complete(p)

    def _complete(self, pending: _Pending) -> None:
        """Deliver one finished operation to its callback and waiter.

        Callers must have popped *pending* from ``_pending`` themselves
        (conclude-once): the pop is the claim, and exactly one claimant
        exists per message id.
        """
        if pending.timer is not None:
            pending.timer.cancel()
        if pending.handle is not None:
            # A concluded persistent search is dead server-side; a later
            # cancel() must not Abandon its (reusable) message id.
            pending.handle.active = False
        if pending.on_done:
            error = None if pending.acc.result.ok else LdapError(pending.acc.result)
            pending.on_done(pending.acc, error)
        if pending.event:
            pending.event.set()

    def _abandon(self, msg_id: int) -> None:
        with self._lock:
            self._pending.pop(msg_id, None)
        if not self.closed:
            try:
                self._send(LdapMessage(0, AbandonRequest(msg_id)))
            except LdapError:
                pass

    # Ops that conclude a pending operation; everything else streams.
    _TERMINAL_OPS = (
        SearchResultDone,
        BindResponse,
        AddResponse,
        ModifyResponse,
        DeleteResponse,
        ExtendedResponse,
    )

    # Identifier octet of a SearchResultEntry protocol op (APPLICATION 4,
    # constructed) — what the light peek below matches against.
    _ENTRY_OP_OCTET = Tag.application(SearchResultEntry.APP_TAG).octet

    def _on_message(self, raw: bytes) -> None:
        view = raw if type(raw) is memoryview else memoryview(raw)
        # Light peek: message id + op identifier octet, no payload
        # decode.  A SearchResultEntry headed for a *streaming* search
        # is handed over as an undecoded RawEntry — the zero-decode leg
        # of the GIIS relay lane.  Everything else falls through to the
        # full decoder.
        try:
            tag, body, end = decode_tlv(view)
            if end != len(view) or tag.octet != TAG_SEQUENCE:
                raise BerError("bad LDAPMessage framing")
            r = TlvReader(body)
            peek_id = r.read_integer()
            is_entry = not r.at_end() and r.peek_tag().octet == self._ENTRY_OP_OCTET
        except BerError:
            self.conn.close()
            return
        if is_entry:
            with self._lock:
                streaming = self._pending.get(peek_id)
            if streaming is None:
                return
            if streaming.kind == "search" and streaming.on_entry is not None:
                # The op bytes may alias a reused receive buffer: the
                # callback must detach() anything it retains.
                try:
                    streaming.on_entry(RawEntry(r.read_raw()))
                except BerError:
                    self.conn.close()
                return
        try:
            message = decode_message(view)
        except ProtocolError:
            self.conn.close()
            return
        op = message.op
        # Streaming ops (entries, references) accumulate without
        # concluding; they only need to observe the pending, not own it.
        if isinstance(op, SearchResultEntry):
            with self._lock:
                pending = self._pending.get(message.message_id)
            if pending is None:
                return
            if pending.kind == "subscribe" and pending.on_change is not None:
                ec = EntryChangeNotification.find(message.controls)
                change = ec.change_type if ec else 0  # 0 = initial state
                pending.on_change(op.to_entry(), change)
                return
            pending.acc.entries.append(op.to_entry())
            return
        if isinstance(op, SearchResultReference):
            with self._lock:
                pending = self._pending.get(message.message_id)
            if pending is None:
                return
            pending.acc.referrals.extend(op.uris)
            return
        if not isinstance(op, self._TERMINAL_OPS):
            return
        # Terminal op: conclude-once.  The pop under the lock is the
        # claim — if a deadline expiry or _fail_all got there first the
        # pending is gone and this (late) server answer is dropped,
        # never firing a second contradictory on_done.
        with self._lock:
            pending = self._pending.pop(message.message_id, None)
        if pending is None:
            return
        pending.acc.result = op.result
        if isinstance(op, BindResponse):
            pending.acc.referrals = [op.server_credentials.decode("latin-1")]
        elif isinstance(op, ExtendedResponse):
            pending.acc.referrals = [op.value.decode("utf-8", "replace")]
        self._complete(pending)

    # -- async API ------------------------------------------------------------
    #
    # Every method here takes one DoneCallback: on_done(outcome, error).

    def _arm_deadline(self, msg_id: int, deadline: Optional[float]) -> None:
        """Local deadline enforcement, when a clock is available."""
        if deadline is None or self.clock is None:
            return

        def expire() -> None:
            # Conclude-once: expiry claims the pending with the same pop
            # a server reply uses; whoever pops second gets None.
            with self._lock:
                pending = self._pending.pop(msg_id, None)
            if pending is None:
                return
            pending.acc.result = LdapResult(
                ResultCode.TIME_LIMIT_EXCEEDED,
                message=f"client deadline of {deadline}s expired",
            )
            self._complete(pending)

        timer = self.clock.call_later(max(0.0, deadline), expire)
        with self._lock:
            pending = self._pending.get(msg_id)
            if pending is not None:
                pending.timer = timer
        if pending is None:
            # Answered before the deadline was even armed; the timer
            # would fire into a no-op, but don't leave it ticking.
            timer.cancel()

    def bind_async(
        self,
        on_done: DoneCallback,
        name: str = "",
        mechanism: str = "simple",
        credentials: bytes = b"",
        deadline: Optional[float] = None,
    ) -> int:
        pending = _Pending("bind", on_done=on_done)
        msg_id = self._allocate(pending)
        self._send(LdapMessage(msg_id, BindRequest(3, name, mechanism, credentials)))
        self._arm_deadline(msg_id, deadline)
        return msg_id

    def search_async(
        self,
        req: SearchRequest,
        on_done: DoneCallback,
        controls: Tuple[Control, ...] = (),
        deadline: Optional[float] = None,
        trace=None,
        on_entry: Optional[Callable[[RawEntry], None]] = None,
    ) -> int:
        """Start one search.

        With *on_entry* the search **streams**: each result fires
        ``on_entry(raw_entry)`` as its frame arrives — an undecoded
        :class:`~repro.ldap.protocol.RawEntry` whose bytes may alias the
        receive buffer (``detach()`` anything retained past the
        callback) — and the final ``on_done`` outcome carries an empty
        entry list.  Without it the client accumulates decoded entries
        as before.
        """
        if deadline is not None and not req.time_limit:
            # Advertise the budget on the wire so deadline-aware servers
            # (and chained children) stop working when it expires.
            req = replace(req, time_limit=max(1, math.ceil(deadline)))
        if trace is not None:
            # Export the caller's span so the remote server parents its
            # root span on us instead of minting a disjoint trace.
            ctx = TraceContext(trace.trace_id, trace.span_id, trace.sampled)
            controls = tuple(controls) + (ctx.to_control(),)
            tracer = getattr(trace, "tracer", None)
            if tracer is not None:
                tracer.propagated()
        pending = _Pending("search", on_done=on_done, on_entry=on_entry)
        msg_id = self._allocate(pending)
        self._send(LdapMessage(msg_id, req, controls))
        self._arm_deadline(msg_id, deadline)
        return msg_id

    def abandon(self, msg_id: int) -> None:
        """Abandon an outstanding operation (RFC 4511 §4.11).

        Discards the pending record — its ``on_done`` will never fire —
        and tells the server to stop working on the request.  Used by
        the GIIS to cut off chained children once the parent's size
        budget is met.
        """
        self._abandon(msg_id)

    def add_async(self, entry: Entry, on_done: DoneCallback) -> int:
        pending = _Pending("add", on_done=on_done)
        msg_id = self._allocate(pending)
        self._send(LdapMessage(msg_id, AddRequest.from_entry(entry)))
        return msg_id

    def modify_async(
        self,
        dn: Union[DN, str],
        changes: Sequence[Tuple[int, str, Sequence[str]]],
        on_done: DoneCallback,
    ) -> int:
        pending = _Pending("modify", on_done=on_done)
        msg_id = self._allocate(pending)
        wire = tuple((k, a, tuple(vs)) for k, a, vs in changes)
        self._send(LdapMessage(msg_id, ModifyRequest(str(dn), wire)))
        return msg_id

    def delete_async(self, dn: Union[DN, str], on_done: DoneCallback) -> int:
        pending = _Pending("delete", on_done=on_done)
        msg_id = self._allocate(pending)
        self._send(LdapMessage(msg_id, DeleteRequest(str(dn))))
        return msg_id

    def extended_async(
        self, oid: str, value: bytes, on_done: DoneCallback
    ) -> int:
        pending = _Pending("extended", on_done=on_done)
        msg_id = self._allocate(pending)
        self._send(LdapMessage(msg_id, ExtendedRequest(oid, value)))
        return msg_id

    def subscribe(
        self,
        req: SearchRequest,
        on_change: Callable[[Entry, int], None],
        changes_only: bool = True,
        change_types: int = ChangeType.ALL,
    ) -> SubscriptionHandle:
        """Open a persistent search (GRIP push mode).

        *on_change* receives ``(entry, change_type)``; entries from the
        initial result set (when ``changes_only=False``) carry change
        type 0 since they are state, not changes.
        """
        pending = _Pending("subscribe", on_change=on_change)
        msg_id = self._allocate(pending)
        # Attach the handle before sending so however the pending
        # concludes — server SearchResultDone, disconnect, deadline —
        # _complete can flip it inactive.
        handle = SubscriptionHandle(self, msg_id)
        pending.handle = handle
        psc = PersistentSearchControl(
            change_types=change_types, changes_only=changes_only
        )
        self._send(LdapMessage(msg_id, req, (psc.to_control(),)))
        return handle

    # -- blocking wrappers ------------------------------------------------------

    def _blocking(self, starter, timeout: float) -> SearchResult:
        done = threading.Event()
        box: List[SearchResult] = []

        def on_done(result: SearchResult, _error: Optional[LdapError]) -> None:
            box.append(result)
            done.set()

        msg_id = starter(on_done)
        with self._lock:
            pending = self._pending.get(msg_id)
        if pending is not None:
            pending.event = done
        if self.driver is not None:
            for _ in range(1_000_000):
                if done.is_set():
                    break
                self.driver()
        if not done.wait(0 if self.driver is not None else timeout):
            raise LdapError.transport(f"timeout after {timeout}s")
        return box[0]

    def bind(
        self,
        name: str = "",
        mechanism: str = "simple",
        credentials: bytes = b"",
        timeout: float = 10.0,
    ) -> LdapResult:
        out = self._blocking(
            lambda cb: self.bind_async(cb, name, mechanism, credentials), timeout
        )
        if not out.result.ok:
            raise LdapError(out.result)
        return out.result

    def search(
        self,
        base: Union[DN, str],
        scope: Scope = Scope.SUBTREE,
        filter: Union[Filter, str] = "(objectclass=*)",
        attrs: Sequence[str] = (),
        size_limit: int = 0,
        timeout: float = 10.0,
        check: bool = True,
        controls: Tuple[Control, ...] = (),
        trace=None,
    ) -> SearchResult:
        filt = parse_filter(filter) if isinstance(filter, str) else filter
        req = SearchRequest(
            base=str(base),
            scope=scope,
            size_limit=size_limit,
            filter=filt,
            attributes=tuple(attrs),
        )
        out = self._blocking(
            lambda cb: self.search_async(req, cb, controls=controls, trace=trace),
            timeout,
        )
        if check and not out.result.ok:
            raise LdapError(out.result)
        return out

    def add(self, entry: Entry, timeout: float = 10.0) -> LdapResult:
        out = self._blocking(lambda cb: self.add_async(entry, cb), timeout)
        if not out.result.ok:
            raise LdapError(out.result)
        return out.result

    def modify(
        self,
        dn: Union[DN, str],
        changes: Sequence[Tuple[int, str, Sequence[str]]],
        timeout: float = 10.0,
    ) -> LdapResult:
        out = self._blocking(lambda cb: self.modify_async(dn, changes, cb), timeout)
        if not out.result.ok:
            raise LdapError(out.result)
        return out.result

    def delete(self, dn: Union[DN, str], timeout: float = 10.0) -> LdapResult:
        out = self._blocking(lambda cb: self.delete_async(dn, cb), timeout)
        if not out.result.ok:
            raise LdapError(out.result)
        return out.result

    def whoami(self, timeout: float = 10.0) -> str:
        from .server import WHOAMI_OID

        out = self._blocking(
            lambda cb: self.extended_async(WHOAMI_OID, b"", cb), timeout
        )
        if not out.result.ok:
            raise LdapError(out.result)
        return out.referrals[0] if out.referrals else ""

    def unbind(self) -> None:
        if not self.closed:
            try:
                self.conn.send(encode_message(LdapMessage(0, UnbindRequest())))
            except ConnectionClosed:
                pass
        self.conn.close()
        self.closed = True
