"""LDAP search filters (RFC 4515 string form, RFC 4511 semantics).

GRIP adopts LDAP's query language; "a filter can be used in all cases to
specify a set of criteria to be matched" (paper §4.1).  This module
implements the full string grammar::

    (&(objectclass=computer)(system=*linux*)(!(load5>=2.0))(cpucount>=4))

with AND / OR / NOT, equality, presence (``attr=*``), substring
(initial/any/final components), ordering (``>=``, ``<=``) and approximate
(``~=``) matches, plus RFC 4515 ``\\xx`` escapes.  Evaluation follows
LDAP's three-valued logic collapsed to boolean: comparing against an
absent attribute is simply false (undefined).

The AST round-trips: ``parse(str(ast)) == ast``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .attributes import normalize_attr_name, rule_for
from .entry import Entry

__all__ = [
    "FilterError",
    "Filter",
    "And",
    "Or",
    "Not",
    "Equality",
    "Presence",
    "Substring",
    "GreaterOrEqual",
    "LessOrEqual",
    "Approx",
    "parse",
    "present",
    "eq",
    "compile_filter",
]

# A compiled filter: entry -> bool, with all constant-side work
# (attribute-name normalization, matching-rule lookup, constant
# normalization/numeric parse) hoisted out of the per-entry call.
Matcher = Callable[[Entry], bool]


class FilterError(ValueError):
    """Raised on malformed filter strings."""


# Characters that must be escaped inside filter values (RFC 4515 §3).
_MUST_ESCAPE = {"(": "\\28", ")": "\\29", "*": "\\2a", "\\": "\\5c", "\x00": "\\00"}


def escape_value(value: str) -> str:
    return "".join(_MUST_ESCAPE.get(ch, ch) for ch in value)


class Filter:
    """Base class for filter AST nodes."""

    def matches(self, entry: Entry) -> bool:
        raise NotImplementedError

    def compile(self) -> Matcher:
        """Compile this node into a matcher closure.

        ``f.compile()(e) == f.matches(e)`` for every entry; the compiled
        form normalizes the filter's constants exactly once instead of
        once per candidate, and tests equality against the entry's
        pre-normalized value memos.  Compile once per request, then
        apply per entry (see :func:`compile_filter`).
        """
        return self.matches  # safe fallback for exotic subclasses

    def attributes(self) -> set[str]:
        """All attribute types this filter references (for index planning)."""
        raise NotImplementedError

    def __str__(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"


@dataclass(frozen=True, repr=False)
class And(Filter):
    clauses: Tuple[Filter, ...]

    def matches(self, entry: Entry) -> bool:
        return all(c.matches(entry) for c in self.clauses)

    def compile(self) -> Matcher:
        kids = tuple(c.compile() for c in self.clauses)

        def match(entry: Entry) -> bool:
            for k in kids:
                if not k(entry):
                    return False
            return True

        return match

    def attributes(self) -> set[str]:
        out: set[str] = set()
        for c in self.clauses:
            out |= c.attributes()
        return out

    def __str__(self) -> str:
        return "(&" + "".join(str(c) for c in self.clauses) + ")"


@dataclass(frozen=True, repr=False)
class Or(Filter):
    clauses: Tuple[Filter, ...]

    def matches(self, entry: Entry) -> bool:
        return any(c.matches(entry) for c in self.clauses)

    def compile(self) -> Matcher:
        kids = tuple(c.compile() for c in self.clauses)

        def match(entry: Entry) -> bool:
            for k in kids:
                if k(entry):
                    return True
            return False

        return match

    def attributes(self) -> set[str]:
        out: set[str] = set()
        for c in self.clauses:
            out |= c.attributes()
        return out

    def __str__(self) -> str:
        return "(|" + "".join(str(c) for c in self.clauses) + ")"


@dataclass(frozen=True, repr=False)
class Not(Filter):
    clause: Filter

    def matches(self, entry: Entry) -> bool:
        return not self.clause.matches(entry)

    def compile(self) -> Matcher:
        kid = self.clause.compile()
        return lambda entry: not kid(entry)

    def attributes(self) -> set[str]:
        return self.clause.attributes()

    def __str__(self) -> str:
        return f"(!{self.clause})"


@dataclass(frozen=True, repr=False)
class Equality(Filter):
    attr: str
    value: str

    def matches(self, entry: Entry) -> bool:
        return entry.has_value(self.attr, self.value)

    def compile(self) -> Matcher:
        key = normalize_attr_name(self.attr)
        want = rule_for(self.attr).normalize(self.value)

        def match(entry: Entry) -> bool:
            av = entry._attrs.get(key)
            return av is not None and want in av.normalized

        return match

    def attributes(self) -> set[str]:
        return {normalize_attr_name(self.attr)}

    def __str__(self) -> str:
        return f"({self.attr}={escape_value(self.value)})"


@dataclass(frozen=True, repr=False)
class Presence(Filter):
    attr: str

    def matches(self, entry: Entry) -> bool:
        return entry.has(self.attr)

    def compile(self) -> Matcher:
        key = normalize_attr_name(self.attr)
        return lambda entry: key in entry._attrs

    def attributes(self) -> set[str]:
        return {normalize_attr_name(self.attr)}

    def __str__(self) -> str:
        return f"({self.attr}=*)"


@dataclass(frozen=True, repr=False)
class Substring(Filter):
    """``attr=initial*any1*any2*final`` — empty initial/final allowed."""

    attr: str
    initial: Optional[str]
    any: Tuple[str, ...]
    final: Optional[str]

    def matches(self, entry: Entry) -> bool:
        rule = rule_for(self.attr)
        initial, anys, final = self._patterns(rule)
        for raw in entry.get(self.attr):
            if _substring_match(rule.substring_haystack(raw), initial, anys, final):
                return True
        return False

    def _patterns(self, rule) -> Tuple[Optional[str], Tuple[str, ...], Optional[str]]:
        """The components normalized into haystack form."""
        return (
            rule.substring_haystack(self.initial) if self.initial is not None else None,
            tuple(rule.substring_haystack(p) for p in self.any),
            rule.substring_haystack(self.final) if self.final is not None else None,
        )

    def compile(self) -> Matcher:
        key = normalize_attr_name(self.attr)
        rule = rule_for(self.attr)
        initial, anys, final = self._patterns(rule)
        haystack = rule.substring_haystack

        def match(entry: Entry) -> bool:
            av = entry._attrs.get(key)
            if av is None:
                return False
            for raw in av.raw:
                if _substring_match(haystack(raw), initial, anys, final):
                    return True
            return False

        return match

    def attributes(self) -> set[str]:
        return {normalize_attr_name(self.attr)}

    def __str__(self) -> str:
        parts = [escape_value(self.initial) if self.initial is not None else ""]
        parts.extend(escape_value(a) for a in self.any)
        parts.append(escape_value(self.final) if self.final is not None else "")
        return f"({self.attr}={'*'.join(parts)})"


def _substring_match(
    hay: str,
    initial: Optional[str],
    anys: Tuple[str, ...],
    final: Optional[str],
) -> bool:
    """Match one normalized haystack against normalized components."""
    pos = 0
    if initial is not None:
        if not hay.startswith(initial):
            return False
        pos = len(initial)
    for pat in anys:
        idx = hay.find(pat, pos)
        if idx < 0:
            return False
        pos = idx + len(pat)
    if final is not None:
        if len(hay) - pos < len(final) or not hay.endswith(final):
            return False
    return True


class _Ordering(Filter):
    op = "?"

    def __init__(self, attr: str, value: str):
        self.attr = attr
        self.value = value

    def _cmp_ok(self, c: int) -> bool:
        raise NotImplementedError

    def matches(self, entry: Entry) -> bool:
        rule = rule_for(self.attr)
        return any(
            self._cmp_ok(rule.compare(v, self.value)) for v in entry.get(self.attr)
        )

    def compile(self) -> Matcher:
        key = normalize_attr_name(self.attr)
        cmp = rule_for(self.attr).comparer(self.value)
        ok = self._cmp_ok

        def match(entry: Entry) -> bool:
            av = entry._attrs.get(key)
            if av is None:
                return False
            for v in av.raw:
                if ok(cmp(v)):
                    return True
            return False

        return match

    def attributes(self) -> set[str]:
        return {normalize_attr_name(self.attr)}

    def __str__(self) -> str:
        return f"({self.attr}{self.op}{escape_value(self.value)})"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.attr == other.attr  # type: ignore[attr-defined]
            and self.value == other.value  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.attr, self.value))


class GreaterOrEqual(_Ordering):
    """``attr>=value`` under the attribute's ordering rule."""

    op = ">="

    def _cmp_ok(self, c: int) -> bool:
        return c >= 0


class LessOrEqual(_Ordering):
    """``attr<=value`` under the attribute's ordering rule."""

    op = "<="

    def _cmp_ok(self, c: int) -> bool:
        return c <= 0


@dataclass(frozen=True, repr=False)
class Approx(Filter):
    """``~=``: equal after aggressive normalization (alnum only)."""

    attr: str
    value: str

    @staticmethod
    def _squash(value: str) -> str:
        return "".join(ch for ch in value.lower() if ch.isalnum())

    def matches(self, entry: Entry) -> bool:
        want = self._squash(self.value)
        return any(self._squash(v) == want for v in entry.get(self.attr))

    def compile(self) -> Matcher:
        key = normalize_attr_name(self.attr)
        want = self._squash(self.value)
        squash = self._squash

        def match(entry: Entry) -> bool:
            av = entry._attrs.get(key)
            if av is None:
                return False
            for v in av.raw:
                if squash(v) == want:
                    return True
            return False

        return match

    def attributes(self) -> set[str]:
        return {normalize_attr_name(self.attr)}

    def __str__(self) -> str:
        return f"({self.attr}~={escape_value(self.value)})"


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, msg: str) -> FilterError:
        return FilterError(f"{msg} at offset {self.pos} in {self.text!r}")

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def take(self) -> str:
        ch = self.peek()
        self.pos += 1
        return ch

    def expect(self, ch: str) -> None:
        if self.take() != ch:
            self.pos -= 1
            raise self.error(f"expected {ch!r}")

    def parse_filter(self) -> Filter:
        self.expect("(")
        ch = self.peek()
        if ch == "&":
            self.take()
            node: Filter = And(tuple(self.parse_filter_list()))
        elif ch == "|":
            self.take()
            node = Or(tuple(self.parse_filter_list()))
        elif ch == "!":
            self.take()
            node = Not(self.parse_filter())
        else:
            node = self.parse_item()
        self.expect(")")
        return node

    def parse_filter_list(self) -> List[Filter]:
        clauses: List[Filter] = []
        while self.peek() == "(":
            clauses.append(self.parse_filter())
        if not clauses:
            raise self.error("empty filter list")
        return clauses

    def parse_item(self) -> Filter:
        attr = self.parse_attr()
        ch = self.take()
        if ch == ">":
            self.expect("=")
            return GreaterOrEqual(attr, self.parse_value())
        if ch == "<":
            self.expect("=")
            return LessOrEqual(attr, self.parse_value())
        if ch == "~":
            self.expect("=")
            return Approx(attr, self.parse_value())
        if ch != "=":
            self.pos -= 1
            raise self.error("expected one of = >= <= ~=")
        return self.parse_equality_or_substring(attr)

    def parse_attr(self) -> str:
        start = self.pos
        while self.peek() and (self.peek().isalnum() or self.peek() in "-._;"):
            self.take()
        attr = self.text[start : self.pos]
        if not attr:
            raise self.error("missing attribute description")
        return attr

    def parse_value(self, stop: str = ")") -> str:
        out: List[str] = []
        while True:
            ch = self.peek()
            if ch == "" or ch in stop:
                return "".join(out)
            if ch == "(":
                raise self.error("unescaped '(' in value")
            if ch == "\\":
                self.take()
                hexpair = self.text[self.pos : self.pos + 2]
                if len(hexpair) != 2 or not all(
                    c in "0123456789abcdefABCDEF" for c in hexpair
                ):
                    raise self.error("invalid escape; expected \\XX hex pair")
                out.append(chr(int(hexpair, 16)))
                self.pos += 2
                continue
            out.append(self.take())

    def parse_equality_or_substring(self, attr: str) -> Filter:
        # Collect star-separated chunks up to ')'.
        chunks: List[str] = [self.parse_value(stop=")*")]
        stars = 0
        while self.peek() == "*":
            self.take()
            stars += 1
            chunks.append(self.parse_value(stop=")*"))
        if stars == 0:
            return Equality(attr, chunks[0])
        if stars == 1 and chunks == ["", ""]:
            return Presence(attr)
        initial = chunks[0] if chunks[0] else None
        final = chunks[-1] if chunks[-1] else None
        middle = tuple(c for c in chunks[1:-1] if c != "")
        if len(middle) != len(chunks) - 2:
            raise self.error("empty substring component (consecutive '*')")
        return Substring(attr, initial, middle, final)


def compile_filter(f: Optional[Filter]) -> Matcher:
    """Compile *f* into a per-entry matcher (None matches everything).

    The hot-path form of filter evaluation: the search path compiles the
    request filter once, then applies the matcher per candidate — no
    re-normalization of filter constants, no matching-rule lookups, and
    equality runs directly against each attribute's pre-normalized
    value memo set.  Semantically identical to ``f.matches``.
    """
    if f is None:
        return lambda entry: True
    return f.compile()


def parse(text: str) -> Filter:
    """Parse an RFC 4515 filter string into an AST."""
    p = _Parser(text.strip())
    node = p.parse_filter()
    if p.pos != len(p.text):
        raise p.error("trailing characters after filter")
    return node


def present(attr: str) -> Filter:
    return Presence(attr)


def eq(attr: str, value: str) -> Filter:
    return Equality(attr, value)
