"""Secondary-index engine: equality and presence postings.

The paper builds GIIS directories from "pluggable indices" (§6.3) and
the MDS2 performance study (Zhang & Schopf) found query servicing — not
registration — to be the scaling bottleneck.  This module is the one
index implementation shared by every layer that searches:

* the :class:`~repro.ldap.dit.DIT` keys it by entry DN and consults it
  through the :mod:`~repro.ldap.plan` query planner;
* GIIS registrant selection keys it by service URL to route queries to
  the registered children whose namespaces overlap the search base;
* GIIS pull indexes (``giis/indexes.py``) reuse it through an indexed
  DIT holding pulled provider snapshots.

For each configured attribute the index maintains *equality postings*
(normalized value → key set) and a *presence set* (keys holding any
value).  Values are normalized with the attribute's own matching rule
(:func:`~repro.ldap.attributes.rule_for`), exactly as
``AttributeValues.contains`` normalizes both sides of an equality
filter, so an equality posting list is the *exact* match set for that
assertion — no false positives and, crucially for planner correctness,
no false negatives.

The index holds no lock of its own: every owner (DIT, GIIS backend)
already serializes reads and writes under its store lock, and the sets
returned by :meth:`equality` / :meth:`presence` are live views that must
only be consumed under that same lock (or copied).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from .attributes import MatchingRule, normalize_attr_name, rule_for

__all__ = ["AttributeIndex"]

_EMPTY: FrozenSet = frozenset()


class AttributeIndex:
    """Equality + presence postings over an attribute subset.

    Keys are opaque hashables (entry DNs for the DIT, service URLs for
    GIIS registrant selection).  ``get_values`` callables map an
    attribute name to the stored values for one key — e.g. a bound
    ``Entry.get`` — so the index never retains entry objects.
    """

    __slots__ = ("_attrs", "_rules", "_eq", "_presence", "_by_key")

    def __init__(
        self,
        attrs: Iterable[str] = (),
        rules: Optional[Dict[str, MatchingRule]] = None,
    ):
        self._attrs: Set[str] = {normalize_attr_name(a) for a in attrs}
        self._rules: Dict[str, MatchingRule] = {
            normalize_attr_name(a): r for a, r in (rules or {}).items()
        }
        # attr -> normalized value -> set of keys
        self._eq: Dict[str, Dict[str, Set[Hashable]]] = {a: {} for a in self._attrs}
        # attr -> set of keys holding any value for attr
        self._presence: Dict[str, Set[Hashable]] = {a: set() for a in self._attrs}
        # Reverse map: key -> [(attr, normalized value), ...] so discard
        # needs no access to the (possibly already mutated) old values.
        self._by_key: Dict[Hashable, List[Tuple[str, str]]] = {}

    def _rule(self, attr: str) -> MatchingRule:
        return self._rules.get(attr) or rule_for(attr)

    # -- maintenance ---------------------------------------------------------

    def add(
        self, key: Hashable, get_values: Callable[[str], Sequence[str]]
    ) -> None:
        """Index *key*; call :meth:`discard` first when re-indexing."""
        pairs: List[Tuple[str, str]] = []
        for attr in self._attrs:
            values = get_values(attr)
            if not values:
                continue
            self._presence[attr].add(key)
            rule = self._rule(attr)
            postings = self._eq[attr]
            for value in values:
                norm = rule.normalize(value)
                postings.setdefault(norm, set()).add(key)
                pairs.append((attr, norm))
        self._by_key[key] = pairs

    def replace(
        self, key: Hashable, get_values: Callable[[str], Sequence[str]]
    ) -> None:
        self.discard(key)
        self.add(key, get_values)

    def discard(self, key: Hashable) -> bool:
        """Drop *key* from every posting list; False if it was unknown."""
        pairs = self._by_key.pop(key, None)
        if pairs is None:
            return False
        attrs_seen: Set[str] = set()
        for attr, norm in pairs:
            postings = self._eq.get(attr)
            if postings is None:  # attr was dropped by a reconfigure
                continue
            bucket = postings.get(norm)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del postings[norm]
            attrs_seen.add(attr)
        for attr in attrs_seen:
            presence = self._presence.get(attr)
            if presence is not None:
                presence.discard(key)
        return True

    def clear(self) -> None:
        for postings in self._eq.values():
            postings.clear()
        for presence in self._presence.values():
            presence.clear()
        self._by_key.clear()

    # -- lookups -------------------------------------------------------------

    def covers(self, attr: str) -> bool:
        return normalize_attr_name(attr) in self._attrs

    def equality(self, attr: str, value: str) -> Optional[Set[Hashable]]:
        """Keys whose *attr* contains *value*; None when not indexed.

        The returned set is a live view — treat it as read-only and only
        under the owner's lock.
        """
        attr = normalize_attr_name(attr)
        postings = self._eq.get(attr)
        if postings is None:
            return None
        return postings.get(self._rule(attr).normalize(value), _EMPTY)

    def presence(self, attr: str) -> Optional[Set[Hashable]]:
        """Keys holding any value for *attr*; None when not indexed."""
        return self._presence.get(normalize_attr_name(attr))

    # -- introspection -------------------------------------------------------

    def attrs(self) -> FrozenSet[str]:
        return frozenset(self._attrs)

    def size(self, attr: str) -> int:
        """Number of keys indexed under *attr* (presence cardinality)."""
        presence = self._presence.get(normalize_attr_name(attr))
        return len(presence) if presence is not None else 0

    def sizes(self) -> Dict[str, int]:
        return {attr: len(keys) for attr, keys in self._presence.items()}

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._by_key
