"""Directory Information Tree: the hierarchical entry store.

LDAP organizes entries in a tree keyed by DN (Figure 3).  The DIT
supports the three RFC 4511 search scopes — ``BASE`` (the named entry
only), ``ONELEVEL`` (immediate children), ``SUBTREE`` (entry and all
descendants) — plus size limits, attribute selection, and optional
schema validation on write.

The store is a small storage engine: alongside the tree it maintains an
:class:`~repro.ldap.index.AttributeIndex` (equality + presence postings,
``objectclass`` always indexed, more attributes via ``index_attrs``)
kept incrementally consistent on every write.  Searches consult the
:mod:`~repro.ldap.plan` planner first and fall back to the full subtree
walk when the filter is not index-answerable; candidates are always
re-verified with ``filt.matches`` so planned and scanned results are
byte-identical.

Every mutator (``add``/``replace``/``modify``/``delete``/``clear``/
``load``) is a thin wrapper that performs the LDAP semantic checks,
normalizes the write into one typed
:class:`~repro.ldap.storage.ChangeOp`, and funnels it through a single
choke point (:meth:`DIT._apply`) onto a pluggable
:class:`~repro.ldap.storage.StorageEngine`.  The default engine is
in-memory (byte-identical to the historical behavior); WAL and sqlite
engines persist every op so the tree — registrations, cached entries,
and all — survives a crash and replays on restart (paper §10.2 rode on
OpenLDAP's persistent indexed backends for exactly this).  Indexes are
rebuilt from the replayed entries at construction time.

This store backs the GRIS/GIIS servers when they hold materialized data;
providers that generate entries lazily plug in at the backend layer
instead (paper §4.1: "there is no requirement that an information
provider explicitly store information about its entity(s)").
"""

from __future__ import annotations

import enum
import threading
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set

from typing import TYPE_CHECKING

from .attributes import normalize_attr_name
from .dn import DN
from .entry import Entry, WireCache
from .filter import Filter, compile_filter
from .index import AttributeIndex
from .plan import candidates_for
from .schema import Schema
from .storage import ChangeKind, ChangeOp, MemoryEngine, StorageEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry

__all__ = [
    "Scope",
    "DitError",
    "NoSuchEntry",
    "EntryExists",
    "SizeLimitExceeded",
    "DIT",
    "in_scope",
]

OBJECTCLASS = "objectclass"

# Candidate-set-size buckets: how much of the entry space the planner
# had to verify (powers of four up to 64k entries).
_CANDIDATE_BUCKETS = (0, 1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)


class Scope(enum.IntEnum):
    """RFC 4511 search scopes (wire values)."""

    BASE = 0
    ONELEVEL = 1
    SUBTREE = 2


class DitError(Exception):
    """Base class for DIT operation failures."""


class NoSuchEntry(DitError):
    """The named entry does not exist (LDAP noSuchObject)."""

    def __init__(self, dn: DN):
        super().__init__(f"no such entry: {dn}")
        self.dn = dn


class EntryExists(DitError):
    """An add collided with an existing entry (entryAlreadyExists)."""

    def __init__(self, dn: DN):
        super().__init__(f"entry already exists: {dn}")
        self.dn = dn


class NotAllowedOnNonLeaf(DitError):
    def __init__(self, dn: DN):
        super().__init__(f"entry has children: {dn}")
        self.dn = dn


class SizeLimitExceeded(DitError):
    """A search produced more entries than its size limit allows.

    Per LDAP sizeLimitExceeded semantics the first ``limit`` entries (in
    canonical result order) are still delivered: they ride on
    ``partial`` for the backend to return alongside the error code.
    """

    def __init__(self, limit: int, partial: Optional[List[Entry]] = None):
        super().__init__(f"size limit {limit} exceeded")
        self.limit = limit
        self.partial: List[Entry] = partial if partial is not None else []


def in_scope(dn: DN, base: DN, scope: Scope) -> bool:
    """Whether *dn* falls inside the (base, scope) search cone."""
    if scope == Scope.BASE:
        return dn == base
    if scope == Scope.ONELEVEL:
        return not dn.is_root() and dn.parent() == base
    return dn.is_within(base)


class DIT:
    """A thread-safe hierarchical entry store with secondary indexes.

    Entries may be added under any DN; missing intermediate ("glue")
    nodes are tolerated, as OpenLDAP-backed GRIS instances materialize
    subtrees piecemeal from providers.

    ``index_attrs`` selects extra equality/presence-indexed attributes
    (``objectclass`` is always indexed).  Pass a shared
    :class:`MetricsRegistry` to expose planner counters and per-index
    size gauges under ``cn=monitor``; ``name`` labels them when one
    process hosts several DITs.

    ``storage`` selects the persistence engine (default: volatile
    in-memory).  A durable engine is replayed at construction — the DIT
    comes up holding whatever survived the last crash, with its indexes
    rebuilt over the recovered entries — and every subsequent write is
    persisted through the same :meth:`_apply` choke point the in-memory
    state goes through.
    """

    def __init__(
        self,
        schema: Optional[Schema] = None,
        index_attrs: Iterable[str] = (),
        metrics: Optional["MetricsRegistry"] = None,
        name: str = "",
        storage: Optional[StorageEngine] = None,
    ):
        self._schema = schema
        self._lock = threading.RLock()
        self.storage: StorageEngine = storage if storage is not None else MemoryEngine()
        self.replayed_ops = self.storage.replay()
        # Reads alias the engine's maps; engines mutate them in place
        # (CLEAR included) so these references stay valid for the
        # DIT's lifetime.
        self._entries: Dict[DN, Entry] = self.storage.entries
        self._children: Dict[DN, Set[DN]] = self.storage.children
        # Replay bypasses _apply, so recovered entries need their
        # encode-cache cells attached here or they would never cache.
        for recovered in self._entries.values():
            recovered._wire = WireCache()
        self._name = name
        if metrics is None:
            # Imported lazily: repro.obs pulls in the monitor backend,
            # which imports this module (a cycle at import time only).
            from ..obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        self._labels = {"dit": name} if name else None
        self._planned = self.metrics.counter("ldap.search.planned", self._labels)
        self._scanned = self.metrics.counter("ldap.search.scanned", self._labels)
        self._candidate_sizes = self.metrics.histogram(
            "ldap.search.candidates", self._labels, buckets=_CANDIDATE_BUCKETS
        )
        self._index = AttributeIndex(())
        self._gauged_attrs: Set[str] = set()
        self.set_index_attrs(index_attrs)

    # -- index management ------------------------------------------------------

    @property
    def index_attrs(self) -> frozenset:
        """The currently indexed attribute names (always has objectclass)."""
        return self._index.attrs()

    def set_index_attrs(self, attrs: Iterable[str]) -> None:
        """Reconfigure the indexed attribute set and rebuild postings."""
        wanted = {OBJECTCLASS}
        wanted.update(normalize_attr_name(a) for a in attrs or ())
        with self._lock:
            self._index = AttributeIndex(wanted)
            for dn, entry in self._entries.items():
                self._index.add(dn, entry.get)
            for attr in sorted(wanted - self._gauged_attrs):
                labels = dict(self._labels or {})
                labels["attr"] = attr
                self.metrics.gauge_fn(
                    "ldap.index.size",
                    lambda a=attr: float(self._index.size(a)),
                    labels,
                )
            for attr in sorted(self._gauged_attrs - wanted):
                labels = dict(self._labels or {})
                labels["attr"] = attr
                self.metrics.unregister("ldap.index.size", labels)
            self._gauged_attrs = set(wanted)

    def index_sizes(self) -> Dict[str, int]:
        with self._lock:
            return self._index.sizes()

    @property
    def stats_planned(self) -> int:
        return int(self._planned.value)

    @property
    def stats_scanned(self) -> int:
        return int(self._scanned.value)

    # -- write ops -----------------------------------------------------------
    #
    # Each mutator performs its LDAP semantic checks, then normalizes
    # the write into a ChangeOp and hands it to _apply — the single
    # point where in-memory state, secondary indexes, and (for durable
    # engines) the on-disk log all move together.

    def _apply(self, op: ChangeOp) -> Optional[Entry]:
        """The mutation choke point: engine state + index, under the lock."""
        if op.kind == ChangeKind.PUT:
            if op.dn in self._entries:
                self._index.discard(op.dn)
            stored = self.storage.apply(op)
            # Every post-image gets a fresh (empty) encode-cache cell:
            # copies served to clients share it, and replacing the cell
            # on the next PUT is what invalidates the cached encoding.
            stored._wire = WireCache()
            self._index.add(op.dn, stored.get)
            return stored
        if op.kind == ChangeKind.DELETE:
            self.storage.apply(op)
            self._index.discard(op.dn)
            return None
        # CLEAR: the index is emptied in place so the per-attribute
        # ldap.index.size gauges (closures over this index) read zero
        # immediately, not stale pre-clear sizes.
        self.storage.apply(op)
        self._index.clear()
        return None

    def add(self, entry: Entry, replace: bool = False) -> None:
        if self._schema is not None:
            self._schema.validate(entry)
        with self._lock:
            if not replace and entry.dn in self._entries:
                raise EntryExists(entry.dn)
            self._apply(ChangeOp.put(entry.copy(), exclusive=not replace))

    def replace(self, entry: Entry) -> None:
        self.add(entry, replace=True)

    def delete(self, dn: DN | str, force: bool = False) -> None:
        dn = DN.of(dn)
        with self._lock:
            if dn not in self._entries:
                raise NoSuchEntry(dn)
            kids = self._children.get(dn)
            if kids and not force:
                raise NotAllowedOnNonLeaf(dn)
            if force:
                for kid in list(kids or ()):
                    if kid in self._entries:
                        self.delete(kid, force=True)
                    else:  # glue node: delete the subtree beneath it
                        for sub in list(self._children.get(kid, ())):
                            self.delete(sub, force=True)
            self._apply(ChangeOp.delete(dn, force=force))

    def modify(self, dn: DN | str, mutator: Callable[[Entry], None]) -> Entry:
        """Apply *mutator* to a copy of the entry and store it back.

        The mutator runs once, here; what reaches the storage engine is
        the resulting post-image, so durable replay never re-runs
        caller code.
        """
        dn = DN.of(dn)
        with self._lock:
            current = self._entries.get(dn)
            if current is None:
                raise NoSuchEntry(dn)
            updated = current.copy()
            mutator(updated)
            updated.dn = dn  # DN is immutable under modify
            if self._schema is not None:
                self._schema.validate(updated)
            self._apply(ChangeOp.put(updated))
            return updated.copy()

    def clear(self) -> None:
        with self._lock:
            self._apply(ChangeOp.clear())

    # -- read ops -------------------------------------------------------------

    def get(self, dn: DN | str) -> Entry:
        dn = DN.of(dn)
        with self._lock:
            entry = self._entries.get(dn)
            if entry is None:
                raise NoSuchEntry(dn)
            return entry.copy()

    def exists(self, dn: DN | str) -> bool:
        with self._lock:
            return DN.of(dn) in self._entries

    def children(self, dn: DN | str) -> List[DN]:
        with self._lock:
            return sorted(
                self._children.get(DN.of(dn), ()), key=lambda d: d.sort_key
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def dns(self) -> List[DN]:
        with self._lock:
            return list(self._entries)

    def candidates(self, filt: Optional[Filter]) -> Optional[Set[DN]]:
        """Planner probe for external engines (the GRIS materialized view).

        Returns a *copy* of the candidate DN set for *filt*, or None when
        the filter is not index-answerable.  Counts toward the
        planned/scanned statistics like a search would.
        """
        with self._lock:
            candidates = candidates_for(filt, self._index)
            if candidates is None:
                self._scanned.inc()
                return None
            self._planned.inc()
            self._candidate_sizes.observe(float(len(candidates)))
            return set(candidates)

    def search(
        self,
        base: DN | str,
        scope: Scope = Scope.SUBTREE,
        filt: Optional[Filter] = None,
        attrs: Optional[Sequence[str]] = None,
        size_limit: int = 0,
    ) -> List[Entry]:
        """Scoped, filtered search returning projected entry copies.

        A missing base yields an empty result for ONELEVEL/SUBTREE (the
        GIIS merges results from many providers, some of which may not
        hold the subtree) and raises for BASE, matching LDAP semantics.

        When the filter is index-answerable the planner verifies only the
        candidate DNs; otherwise the subtree is walked.  Either way every
        result passed ``filt.matches``, and results are sorted into
        canonical order before the size limit applies, so the two paths
        are byte-identical — including the partial set carried on
        :class:`SizeLimitExceeded`.
        """
        base = DN.of(base)
        matched: List[Entry] = []
        # Compile once per search: candidate verification is the hot
        # loop, and the compiled matcher hoists all constant-side
        # normalization out of it.
        match = compile_filter(filt) if filt is not None else None
        with self._lock:
            candidates = (
                candidates_for(filt, self._index)
                if scope != Scope.BASE
                else None
            )
            if scope == Scope.BASE:
                if base not in self._entries:
                    raise NoSuchEntry(base)
                entry = self._entries[base]
                if match is None or match(entry):
                    matched.append(entry)
            elif candidates is not None:
                self._planned.inc()
                self._candidate_sizes.observe(float(len(candidates)))
                for dn in candidates:
                    entry = self._entries.get(dn)
                    if entry is None:
                        continue
                    if not in_scope(dn, base, scope):
                        continue
                    if match is not None and not match(entry):
                        continue
                    matched.append(entry)
            else:
                self._scanned.inc()
                for dn in self._candidates(base, scope):
                    entry = self._entries.get(dn)
                    if entry is None:
                        continue
                    if match is not None and not match(entry):
                        continue
                    matched.append(entry)
            matched.sort(key=lambda e: e.dn.sort_key)
            if size_limit and len(matched) > size_limit:
                raise SizeLimitExceeded(
                    size_limit,
                    partial=[e.project(attrs) for e in matched[:size_limit]],
                )
            return [e.project(attrs) for e in matched]

    def _candidates(self, base: DN, scope: Scope) -> Iterator[DN]:
        if scope == Scope.BASE:
            if base not in self._entries:
                raise NoSuchEntry(base)
            yield base
            return
        if scope == Scope.ONELEVEL:
            yield from self._children.get(base, ())
            return
        # SUBTREE: iterative depth-first walk (LIFO stack).  The base
        # entry itself may be a glue node with no stored entry; descend
        # regardless — callers re-sort results, so visit order is free.
        stack = [base]
        if base in self._entries:
            yield base
        while stack:
            cur = stack.pop()
            for kid in self._children.get(cur, ()):
                yield kid
                stack.append(kid)

    # -- bulk -----------------------------------------------------------------

    def load(self, entries: Sequence[Entry], replace: bool = True) -> int:
        """Add many entries (parents before children not required)."""
        count = 0
        for e in sorted(entries, key=lambda e: len(e.dn)):
            self.add(e, replace=replace)
            count += 1
        return count

    def dump(self) -> List[Entry]:
        with self._lock:
            return [
                self._entries[dn].copy()
                for dn in sorted(self._entries, key=lambda d: d.sort_key)
            ]
