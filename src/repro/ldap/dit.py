"""Directory Information Tree: the hierarchical entry store.

LDAP organizes entries in a tree keyed by DN (Figure 3).  The DIT
supports the three RFC 4511 search scopes — ``BASE`` (the named entry
only), ``ONELEVEL`` (immediate children), ``SUBTREE`` (entry and all
descendants) — plus size limits, attribute selection, and optional
schema validation on write.

This store backs the GRIS/GIIS servers when they hold materialized data;
providers that generate entries lazily plug in at the backend layer
instead (paper §4.1: "there is no requirement that an information
provider explicitly store information about its entity(s)").
"""

from __future__ import annotations

import enum
import threading
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set

from .dn import DN
from .entry import Entry
from .filter import Filter
from .schema import Schema

__all__ = ["Scope", "DitError", "NoSuchEntry", "EntryExists", "SizeLimitExceeded", "DIT"]


class Scope(enum.IntEnum):
    """RFC 4511 search scopes (wire values)."""

    BASE = 0
    ONELEVEL = 1
    SUBTREE = 2


class DitError(Exception):
    """Base class for DIT operation failures."""


class NoSuchEntry(DitError):
    """The named entry does not exist (LDAP noSuchObject)."""

    def __init__(self, dn: DN):
        super().__init__(f"no such entry: {dn}")
        self.dn = dn


class EntryExists(DitError):
    """An add collided with an existing entry (entryAlreadyExists)."""

    def __init__(self, dn: DN):
        super().__init__(f"entry already exists: {dn}")
        self.dn = dn


class NotAllowedOnNonLeaf(DitError):
    def __init__(self, dn: DN):
        super().__init__(f"entry has children: {dn}")
        self.dn = dn


class SizeLimitExceeded(DitError):
    """A search produced more entries than its size limit allows."""

    def __init__(self, limit: int):
        super().__init__(f"size limit {limit} exceeded")
        self.limit = limit


class DIT:
    """A thread-safe hierarchical entry store.

    Entries may be added under any DN; missing intermediate ("glue")
    nodes are tolerated, as OpenLDAP-backed GRIS instances materialize
    subtrees piecemeal from providers.
    """

    def __init__(self, schema: Optional[Schema] = None):
        self._schema = schema
        self._lock = threading.RLock()
        self._entries: Dict[DN, Entry] = {}
        self._children: Dict[DN, Set[DN]] = {}

    # -- write ops -----------------------------------------------------------

    def add(self, entry: Entry, replace: bool = False) -> None:
        if self._schema is not None:
            self._schema.validate(entry)
        with self._lock:
            if entry.dn in self._entries and not replace:
                raise EntryExists(entry.dn)
            self._entries[entry.dn] = entry.copy()
            self._link(entry.dn)

    def _link(self, dn: DN) -> None:
        # Register the whole ancestor chain so subtree traversal crosses
        # glue nodes (ancestors with no stored entry of their own).
        cur = dn
        for parent in dn.ancestors():
            kids = self._children.setdefault(parent, set())
            if cur in kids:
                break
            kids.add(cur)
            cur = parent

    def _unlink(self, dn: DN) -> None:
        # Prune upward: drop parent->child links for chains that hold
        # neither an entry nor any descendants.
        cur = dn
        while not cur.is_root():
            if cur in self._entries or self._children.get(cur):
                break
            parent = cur.parent()
            kids = self._children.get(parent)
            if kids:
                kids.discard(cur)
                if not kids:
                    del self._children[parent]
            cur = parent

    def replace(self, entry: Entry) -> None:
        self.add(entry, replace=True)

    def delete(self, dn: DN | str, force: bool = False) -> None:
        dn = DN.of(dn)
        with self._lock:
            if dn not in self._entries:
                raise NoSuchEntry(dn)
            kids = self._children.get(dn)
            if kids and not force:
                raise NotAllowedOnNonLeaf(dn)
            if force:
                for kid in list(kids or ()):
                    if kid in self._entries:
                        self.delete(kid, force=True)
                    else:  # glue node: delete the subtree beneath it
                        for sub in list(self._children.get(kid, ())):
                            self.delete(sub, force=True)
            del self._entries[dn]
            self._unlink(dn)

    def modify(self, dn: DN | str, mutator: Callable[[Entry], None]) -> Entry:
        """Apply *mutator* to a copy of the entry and store it back."""
        dn = DN.of(dn)
        with self._lock:
            current = self._entries.get(dn)
            if current is None:
                raise NoSuchEntry(dn)
            updated = current.copy()
            mutator(updated)
            updated.dn = dn  # DN is immutable under modify
            if self._schema is not None:
                self._schema.validate(updated)
            self._entries[dn] = updated
            return updated.copy()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._children.clear()

    # -- read ops -------------------------------------------------------------

    def get(self, dn: DN | str) -> Entry:
        dn = DN.of(dn)
        with self._lock:
            entry = self._entries.get(dn)
            if entry is None:
                raise NoSuchEntry(dn)
            return entry.copy()

    def exists(self, dn: DN | str) -> bool:
        with self._lock:
            return DN.of(dn) in self._entries

    def children(self, dn: DN | str) -> List[DN]:
        with self._lock:
            return sorted(
                self._children.get(DN.of(dn), ()), key=lambda d: str(d).lower()
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def dns(self) -> List[DN]:
        with self._lock:
            return list(self._entries)

    def search(
        self,
        base: DN | str,
        scope: Scope = Scope.SUBTREE,
        filt: Optional[Filter] = None,
        attrs: Optional[Sequence[str]] = None,
        size_limit: int = 0,
    ) -> List[Entry]:
        """Scoped, filtered search returning projected entry copies.

        A missing base yields an empty result for ONELEVEL/SUBTREE (the
        GIIS merges results from many providers, some of which may not
        hold the subtree) and raises for BASE, matching LDAP semantics.
        """
        base = DN.of(base)
        results: List[Entry] = []
        with self._lock:
            for dn in self._candidates(base, scope):
                entry = self._entries.get(dn)
                if entry is None:
                    continue
                if filt is not None and not filt.matches(entry):
                    continue
                results.append(entry.project(attrs))
                if size_limit and len(results) > size_limit:
                    raise SizeLimitExceeded(size_limit)
        results.sort(key=lambda e: (len(e.dn), str(e.dn).lower()))
        return results

    def _candidates(self, base: DN, scope: Scope) -> Iterator[DN]:
        if scope == Scope.BASE:
            if base not in self._entries:
                raise NoSuchEntry(base)
            yield base
            return
        if scope == Scope.ONELEVEL:
            yield from self._children.get(base, ())
            return
        # SUBTREE: iterative depth-first walk (LIFO stack).  The base
        # entry itself may be a glue node with no stored entry; descend
        # regardless — callers re-sort results, so visit order is free.
        stack = [base]
        if base in self._entries:
            yield base
        while stack:
            cur = stack.pop()
            for kid in self._children.get(cur, ()):
                yield kid
                stack.append(kid)

    # -- bulk -----------------------------------------------------------------

    def load(self, entries: Sequence[Entry], replace: bool = True) -> int:
        """Add many entries (parents before children not required)."""
        count = 0
        for e in sorted(entries, key=lambda e: len(e.dn)):
            self.add(e, replace=replace)
            count += 1
        return count

    def dump(self) -> List[Entry]:
        with self._lock:
            return [
                self._entries[dn].copy()
                for dn in sorted(
                    self._entries, key=lambda d: (len(d), str(d).lower())
                )
            ]
