"""Attribute values and matching rules.

LDAP attributes are typed, multi-valued, and compared under a *matching
rule*.  MDS-2 data (Figure 3 of the paper) mixes free-text values
(``system: mips irix``), numbers (``load5: 3.2``), sizes (``free: 33515
MB``) and URLs.  We implement the three matching rules the paper's data
model needs:

* ``caseIgnoreMatch`` — default for directory strings: case-insensitive,
  internal runs of whitespace collapsed;
* ``integerMatch`` / ``numericMatch`` — numeric comparison when both sides
  parse as numbers (so ``load5 >= 2.5`` orders numerically, not
  lexically);
* ``caseExactMatch`` — for URLs and DNs stored as values.

Values are stored as strings on the wire (LDAP transmits octet strings)
and coerced for comparison.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional

__all__ = [
    "normalize_attr_name",
    "normalize_value",
    "numeric_value",
    "MatchingRule",
    "CaseIgnoreMatch",
    "CaseExactMatch",
    "NumericMatch",
    "rule_for",
    "AttributeValues",
]

_WS = re.compile(r"\s+")

# Pattern for values like "33515 MB" / "1.5 GB" that should order by size.
_SIZE = re.compile(
    r"^\s*(-?\d+(?:\.\d+)?)\s*(b|kb|mb|gb|tb|pb)?\s*$", re.IGNORECASE
)
_UNIT_SCALE = {
    None: 1.0,
    "b": 1.0,
    "kb": 1024.0,
    "mb": 1024.0**2,
    "gb": 1024.0**3,
    "tb": 1024.0**4,
    "pb": 1024.0**5,
}


def normalize_attr_name(name: str) -> str:
    """Attribute descriptors are case-insensitive (RFC 4512)."""
    return name.strip().lower()


def normalize_value(value: str) -> str:
    """caseIgnore normalization: trim, collapse whitespace, lowercase."""
    return _WS.sub(" ", value.strip()).lower()


def numeric_value(value: str) -> Optional[float]:
    """Parse a numeric or size-with-unit value, or None."""
    m = _SIZE.match(value)
    if not m:
        return None
    unit = m.group(2)
    return float(m.group(1)) * _UNIT_SCALE[unit.lower() if unit else None]


class MatchingRule:
    """Equality and ordering semantics for one attribute type."""

    name = "abstract"

    def normalize(self, value: str) -> str:
        raise NotImplementedError

    def equals(self, a: str, b: str) -> bool:
        return self.normalize(a) == self.normalize(b)

    def compare(self, a: str, b: str) -> int:
        """Three-way compare: negative, zero, positive."""
        na, nb = self.normalize(a), self.normalize(b)
        return (na > nb) - (na < nb)

    def substring_haystack(self, value: str) -> str:
        """The string that substring filters match against."""
        return self.normalize(value)

    def comparer(self, constant: str):
        """A one-argument three-way compare against a pre-normalized
        *constant* — the per-request compilation of :meth:`compare`.

        ``rule.comparer(b)(a) == rule.compare(a, b)`` for every rule;
        compiling hoists the constant's normalization (and numeric
        parse, for the numeric-aware rules) out of the per-entry loop.
        """
        nb = self.normalize(constant)

        def cmp(a: str) -> int:
            na = self.normalize(a)
            return (na > nb) - (na < nb)

        return cmp


class CaseIgnoreMatch(MatchingRule):
    """Default directoryString rule: case/whitespace-insensitive, with
    numeric comparison when both operands parse as numbers."""

    name = "caseIgnoreMatch"

    def normalize(self, value: str) -> str:
        return normalize_value(value)

    def compare(self, a: str, b: str) -> int:
        # Numeric comparison when both sides are numbers/sizes; this is
        # what makes "(load5<=2.0)" behave the way grid brokers expect.
        fa, fb = numeric_value(a), numeric_value(b)
        if fa is not None and fb is not None:
            return (fa > fb) - (fa < fb)
        return super().compare(a, b)

    def comparer(self, constant: str):
        fb = numeric_value(constant)
        nb = self.normalize(constant)

        def cmp(a: str) -> int:
            if fb is not None:
                fa = numeric_value(a)
                if fa is not None:
                    return (fa > fb) - (fa < fb)
            na = self.normalize(a)
            return (na > nb) - (na < nb)

        return cmp


class CaseExactMatch(MatchingRule):
    """Case-sensitive matching for URLs and DN-valued attributes."""

    name = "caseExactMatch"

    def normalize(self, value: str) -> str:
        return _WS.sub(" ", value.strip())


class NumericMatch(MatchingRule):
    """Numeric equality/ordering with canonicalized values
    (so \"3.20\" equals \"3.2\" and \"1 GB\" exceeds \"900 MB\")."""

    name = "numericMatch"

    def normalize(self, value: str) -> str:
        f = numeric_value(value)
        if f is None:
            return normalize_value(value)
        # Canonical form so equality works across "3.20" vs "3.2".
        return repr(f)

    def compare(self, a: str, b: str) -> int:
        fa, fb = numeric_value(a), numeric_value(b)
        if fa is not None and fb is not None:
            return (fa > fb) - (fa < fb)
        return super().compare(a, b)

    def comparer(self, constant: str):
        fb = numeric_value(constant)
        nb = self.normalize(constant)

        def cmp(a: str) -> int:
            if fb is not None:
                fa = numeric_value(a)
                if fa is not None:
                    return (fa > fb) - (fa < fb)
            na = self.normalize(a)
            return (na > nb) - (na < nb)

        return cmp


CASE_IGNORE = CaseIgnoreMatch()
CASE_EXACT = CaseExactMatch()
NUMERIC = NumericMatch()

# Attribute types with non-default matching rules.  Everything else uses
# caseIgnoreMatch, matching OpenLDAP's directoryString default.
_RULES = {
    "url": CASE_EXACT,
    "labeleduri": CASE_EXACT,
    "ref": CASE_EXACT,
    "load1": NUMERIC,
    "load5": NUMERIC,
    "load15": NUMERIC,
    "free": NUMERIC,
    "total": NUMERIC,
    "cpucount": NUMERIC,
    "memorysize": NUMERIC,
    "period": NUMERIC,
    "bandwidth": NUMERIC,
    "latency": NUMERIC,
    "ttl": NUMERIC,
}


def rule_for(attr: str) -> MatchingRule:
    return _RULES.get(normalize_attr_name(attr), CASE_IGNORE)


class AttributeValues:
    """An ordered, duplicate-free multi-set of values for one attribute.

    LDAP forbids duplicate values under the attribute's equality rule;
    insertion order is preserved for readable LDIF output.
    """

    __slots__ = ("attr", "rule", "_values", "_normalized")

    def __init__(self, attr: str, values: Iterable[str] = ()):
        self.attr = attr
        self.rule = rule_for(attr)
        self._values: List[str] = []
        self._normalized: set[str] = set()
        for v in values:
            self.add(v)

    def add(self, value: str) -> bool:
        """Add a value; returns False if an equal value was present."""
        value = str(value)
        key = self.rule.normalize(value)
        if key in self._normalized:
            return False
        self._normalized.add(key)
        self._values.append(value)
        return True

    def remove(self, value: str) -> bool:
        key = self.rule.normalize(str(value))
        if key not in self._normalized:
            return False
        self._normalized.discard(key)
        self._values = [v for v in self._values if self.rule.normalize(v) != key]
        return True

    def contains(self, value: str) -> bool:
        return self.rule.normalize(str(value)) in self._normalized

    def values(self) -> List[str]:
        return list(self._values)

    @property
    def raw(self) -> List[str]:
        """The live value list (read-only by convention; no copy).

        Compiled filter matchers iterate this on the per-entry hot path
        where :meth:`values`'s defensive copy showed up in profiles.
        """
        return self._values

    @property
    def normalized(self) -> "set[str]":
        """The pre-normalized value memo set (read-only by convention).

        Membership here is equality under the attribute's matching rule
        — the per-entry test compiled equality filters run against.
        """
        return self._normalized

    @property
    def first(self) -> str:
        return self._values[0]

    def copy(self) -> "AttributeValues":
        # Clone state directly: re-normalizing through __init__ dominated
        # the entry-copy profile (every search result copies entries).
        clone = AttributeValues.__new__(AttributeValues)
        clone.attr = self.attr
        clone.rule = self.rule
        clone._values = list(self._values)
        clone._normalized = set(self._normalized)
        return clone

    def __iter__(self):
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AttributeValues):
            return (
                normalize_attr_name(self.attr) == normalize_attr_name(other.attr)
                and self._normalized == other._normalized
            )
        if isinstance(other, (list, tuple)):
            return self._normalized == {self.rule.normalize(str(v)) for v in other}
        return NotImplemented

    def __repr__(self) -> str:
        return f"AttributeValues({self.attr!r}, {self._values!r})"
