"""Client-side referral chasing (paper §10.4).

When a directory cannot (or will not) proxy data, it returns "the name
of the information provider directly to the client in the form of a
LDAP URL using the referral mechanisms defined as part of the standard
LDAP protocol."  The client then contacts the provider itself — which
also means re-authenticating there, so per-provider access control is
applied to the *client's* identity, not the directory's (§7).

:func:`chase_referrals` performs that follow-up over any dial function.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Set, Union

from .client import LdapClient, SearchResult
from .dit import Scope
from .dn import DN
from .entry import Entry
from .filter import Filter
from .url import LdapUrl, LdapUrlError

__all__ = ["chase_referrals", "search_following_referrals"]

# Dial a referral target; returns a ready (possibly bound) client.
Dial = Callable[[LdapUrl], LdapClient]


def chase_referrals(
    initial: SearchResult,
    dial: Dial,
    filter: Union[Filter, str] = "(objectclass=*)",
    scope: Scope = Scope.SUBTREE,
    attrs: Sequence[str] = (),
    max_hops: int = 8,
    timeout: float = 10.0,
) -> SearchResult:
    """Resolve *initial*'s referrals into entries.

    Each referral URL is dialled and searched (base = the URL's DN,
    falling back to the given scope/filter when the URL doesn't carry
    its own).  Referrals returned by referred-to servers are chased
    recursively up to *max_hops*; entries are deduplicated by DN.
    Unreachable targets are skipped — partial results, per §2.2.
    """
    merged: Dict[DN, Entry] = {e.dn: e for e in initial.entries}
    visited: Set[str] = set()
    frontier: List[str] = list(initial.referrals)
    hops = 0
    while frontier and hops < max_hops:
        hops += 1
        next_frontier: List[str] = []
        for uri in frontier:
            if uri in visited:
                continue
            visited.add(uri)
            try:
                url = LdapUrl.parse(uri)
            except LdapUrlError:
                continue
            try:
                client = dial(url)
            except Exception:  # noqa: BLE001 - dead provider: partial results
                continue
            try:
                out = client.search(
                    url.dn,
                    url.scope if url.scope is not None else scope,
                    url.filter if url.filter is not None else filter,
                    attrs=tuple(url.attrs) if url.attrs else tuple(attrs),
                    timeout=timeout,
                    check=False,
                )
            except Exception:  # noqa: BLE001
                continue
            for entry in out.entries:
                merged.setdefault(entry.dn, entry)
            next_frontier.extend(out.referrals)
        frontier = next_frontier
    entries = sorted(merged.values(), key=lambda e: e.dn.sort_key)
    return SearchResult(entries=entries, referrals=frontier, result=initial.result)


def search_following_referrals(
    client: LdapClient,
    dial: Dial,
    base: Union[DN, str],
    scope: Scope = Scope.SUBTREE,
    filter: Union[Filter, str] = "(objectclass=*)",
    attrs: Sequence[str] = (),
    max_hops: int = 8,
    timeout: float = 10.0,
) -> SearchResult:
    """One search against *client*, with referral chasing."""
    initial = client.search(
        base, scope, filter, attrs=attrs, timeout=timeout, check=False
    )
    return chase_referrals(
        initial, dial, filter=filter, scope=scope, attrs=attrs,
        max_hops=max_hops, timeout=timeout,
    )
