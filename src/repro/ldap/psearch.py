"""Persistent search: GRIP's subscription mode.

The paper adopts the LDAP "persistent search" extension [32] so that
"an initial subscription request requests subsequent asynchronous
delivery" (§6).  A client attaches the persistent-search control to a
SearchRequest; the server keeps the search open and pushes a
SearchResultEntry whenever a matching entry is added, modified, or
deleted, each tagged with an Entry Change Notification control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from . import ber
from .ber import TlvReader
from .backend import ChangeType
from .protocol import Control

__all__ = [
    "PSEARCH_OID",
    "ENTRY_CHANGE_OID",
    "PersistentSearchControl",
    "EntryChangeNotification",
]

# OIDs from draft-ietf-ldapext-psearch-03 (reference [32] of the paper).
PSEARCH_OID = "2.16.840.1.113730.3.4.3"
ENTRY_CHANGE_OID = "2.16.840.1.113730.3.4.7"


@dataclass(frozen=True)
class PersistentSearchControl:
    """Request control: which changes to stream.

    *changes_only* suppresses the initial result set; *return_ecs* asks
    for Entry Change Notification controls on pushed entries.
    """

    change_types: int = ChangeType.ALL
    changes_only: bool = False
    return_ecs: bool = True

    def to_control(self, critical: bool = True) -> Control:
        value = ber.encode_sequence(
            [
                ber.encode_integer(self.change_types),
                ber.encode_boolean(self.changes_only),
                ber.encode_boolean(self.return_ecs),
            ]
        )
        return Control(PSEARCH_OID, critical, value)

    @classmethod
    def from_control(cls, control: Control) -> "PersistentSearchControl":
        r = TlvReader(control.value)
        seq = r.read_sequence()
        change_types = seq.read_integer()
        changes_only = seq.read_boolean()
        return_ecs = seq.read_boolean()
        seq.expect_end()
        r.expect_end()
        return cls(change_types, changes_only, return_ecs)

    @classmethod
    def find(cls, controls) -> Optional["PersistentSearchControl"]:
        for control in controls:
            if control.oid == PSEARCH_OID:
                return cls.from_control(control)
        return None


@dataclass(frozen=True)
class EntryChangeNotification:
    """Response control: what kind of change produced this entry."""

    change_type: int

    def to_control(self) -> Control:
        value = ber.encode_sequence([ber.encode_enumerated(self.change_type)])
        return Control(ENTRY_CHANGE_OID, False, value)

    @classmethod
    def from_control(cls, control: Control) -> "EntryChangeNotification":
        r = TlvReader(control.value)
        seq = r.read_sequence()
        change_type = seq.read_enumerated()
        return cls(change_type)

    @classmethod
    def find(cls, controls) -> Optional["EntryChangeNotification"]:
        for control in controls:
            if control.oid == ENTRY_CHANGE_OID:
                return cls.from_control(control)
        return None
