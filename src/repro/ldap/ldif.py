"""LDIF (LDAP Data Interchange Format, RFC 2849 subset).

GRIS instances are configured with static host information from files,
and operators inspect directory contents as text; LDIF is the standard
format for both.  Supports multi-record files, comments, line folding,
and base64 values (``attr:: ...``) for unsafe strings.
"""

from __future__ import annotations

import base64
from typing import Iterable, Iterator, List

from .entry import Entry

__all__ = ["LdifError", "parse_ldif", "format_ldif", "format_entry"]

_SAFE_INIT = set(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
)


class LdifError(ValueError):
    """Raised on malformed LDIF input."""


def _needs_base64(value: str) -> bool:
    if value == "":
        return False
    if value[0] in (" ", ":", "<") or value != value.strip():
        return True
    try:
        raw = value.encode("ascii")
    except UnicodeEncodeError:
        return True
    return any(b < 0x20 or b == 0x7F for b in raw)


def _fold(line: str, width: int = 76) -> Iterator[str]:
    if len(line) <= width:
        yield line
        return
    yield line[:width]
    pos = width
    while pos < len(line):
        yield " " + line[pos : pos + width - 1]
        pos += width - 1


def format_entry(entry: Entry) -> str:
    """Serialize one entry as an LDIF record (no trailing blank line)."""
    lines: List[str] = []
    dn_text = str(entry.dn)
    if _needs_base64(dn_text):
        lines.extend(_fold("dn:: " + base64.b64encode(dn_text.encode()).decode()))
    else:
        lines.extend(_fold("dn: " + dn_text))
    for attr, values in entry.items():
        for value in values:
            if _needs_base64(value):
                encoded = base64.b64encode(value.encode("utf-8")).decode()
                lines.extend(_fold(f"{attr}:: {encoded}"))
            else:
                lines.extend(_fold(f"{attr}: {value}"))
    return "\n".join(lines)


def format_ldif(entries: Iterable[Entry]) -> str:
    """Serialize entries as an LDIF document."""
    return "\n\n".join(format_entry(e) for e in entries) + "\n"


def _unfold(text: str) -> Iterator[str]:
    current: List[str] = []
    for raw in text.splitlines():
        if raw.startswith(" ") and current:
            current.append(raw[1:])
            continue
        if current:
            yield "".join(current)
        current = [raw]
    if current:
        yield "".join(current)


def parse_ldif(text: str) -> List[Entry]:
    """Parse an LDIF document into entries."""
    entries: List[Entry] = []
    record: List[str] = []

    def flush() -> None:
        if not record:
            return
        entries.append(_parse_record(record))
        record.clear()

    for line in _unfold(text):
        if line.startswith("#"):
            continue
        if not line.strip():
            flush()
            continue
        record.append(line)
    flush()
    return entries


def _parse_record(lines: List[str]) -> Entry:
    if not lines[0].lower().startswith("dn:"):
        raise LdifError(f"record must start with dn:, got {lines[0]!r}")
    dn_text = _parse_value(lines[0][3:])
    entry = Entry(dn_text)
    for line in lines[1:]:
        if ":" not in line:
            raise LdifError(f"malformed LDIF line {line!r}")
        attr, rest = line.split(":", 1)
        attr = attr.strip()
        if not attr or not all(c in _SAFE_INIT or c in "-._;" for c in attr):
            raise LdifError(f"invalid attribute name {attr!r}")
        entry.add_value(attr, _parse_value(rest))
    return entry


def _parse_value(rest: str) -> str:
    if rest.startswith(":"):
        try:
            return base64.b64decode(rest[1:].strip(), validate=True).decode("utf-8")
        except Exception as exc:  # noqa: BLE001 - normalize to LdifError
            raise LdifError(f"bad base64 value: {exc}") from exc
    if rest.startswith("<"):
        raise LdifError("URL-valued LDIF attributes are not supported")
    return rest[1:] if rest.startswith(" ") else rest
