"""Minimal BER/DER (Basic Encoding Rules) codec.

LDAP messages are ASN.1 structures carried as BER-encoded TLV
(tag-length-value) records.  This module implements the subset of BER that
the LDAP v3 protocol (RFC 4511) actually uses, with DER-style definite
lengths on the encoding side:

* universal primitives: BOOLEAN, INTEGER, ENUMERATED, OCTET STRING, NULL
* constructed types: SEQUENCE, SET
* context-specific and application tags (implicit tagging), which LDAP uses
  heavily to discriminate protocol-op choices.

The decoder is strict: truncated or trailing bytes raise :class:`BerError`
so malformed network input never silently mis-parses.

Decoding is **zero-copy**: :class:`TlvReader` walks a single
:class:`memoryview` over the received frame, and every nested
constructed value is a sub-view of the same buffer — no intermediate
``bytes`` slices per TLV.  Payload bytes are materialized only at the
leaves that escape the decoder (``read_octet_string`` returns ``bytes``,
``read_string`` returns ``str``); the raw :meth:`TlvReader.read` and
:func:`decode_tlv` return views into the frame, so callers that let a
value outlive the decode must copy it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

__all__ = [
    "BerError",
    "Tag",
    "TagClass",
    "encode_tlv",
    "decode_tlv",
    "decode_tlv_stream",
    "encode_boolean",
    "encode_integer",
    "encode_enumerated",
    "encode_octet_string",
    "encode_null",
    "encode_sequence",
    "encode_set",
    "decode_boolean",
    "decode_integer",
    "TlvReader",
]


class BerError(ValueError):
    """Raised on malformed BER input or unencodable values."""


class TagClass:
    """BER tag-class bits (high two bits of the identifier octet)."""

    UNIVERSAL = 0x00
    APPLICATION = 0x40
    CONTEXT = 0x80
    PRIVATE = 0xC0


# Universal tag numbers used by LDAP.
TAG_BOOLEAN = 0x01
TAG_INTEGER = 0x02
TAG_OCTET_STRING = 0x04
TAG_NULL = 0x05
TAG_ENUMERATED = 0x0A
TAG_SEQUENCE = 0x30  # 0x10 | constructed bit
TAG_SET = 0x31  # 0x11 | constructed bit

_CONSTRUCTED = 0x20

# Shared decoded-tag cache, filled lazily by Tag.from_octet.
_TAG_CACHE: dict = {}


@dataclass(frozen=True)
class Tag:
    """A decoded identifier octet.

    Only low-tag-number form (tag number < 31) is supported; LDAP never
    uses multi-byte tag numbers.
    """

    number: int
    constructed: bool = False
    tag_class: int = TagClass.UNIVERSAL

    def __post_init__(self) -> None:
        if not 0 <= self.number < 31:
            raise BerError(f"tag number {self.number} out of low-tag range")
        if self.tag_class not in (
            TagClass.UNIVERSAL,
            TagClass.APPLICATION,
            TagClass.CONTEXT,
            TagClass.PRIVATE,
        ):
            raise BerError(f"invalid tag class {self.tag_class:#x}")

    @property
    def octet(self) -> int:
        return self.tag_class | (_CONSTRUCTED if self.constructed else 0) | self.number

    @classmethod
    def from_octet(cls, octet: int) -> "Tag":
        # Tags are immutable and there are only 256 octets: decode once,
        # share forever (this is the hottest call in message decoding).
        tag = _TAG_CACHE.get(octet)
        if tag is None:
            if octet & 0x1F == 0x1F:
                raise BerError("high-tag-number form not supported")
            tag = cls(
                number=octet & 0x1F,
                constructed=bool(octet & _CONSTRUCTED),
                tag_class=octet & 0xC0,
            )
            _TAG_CACHE[octet] = tag
        return tag

    @classmethod
    def application(cls, number: int, constructed: bool = True) -> "Tag":
        return cls(number, constructed, TagClass.APPLICATION)

    @classmethod
    def context(cls, number: int, constructed: bool = False) -> "Tag":
        return cls(number, constructed, TagClass.CONTEXT)

    @classmethod
    def universal(cls, number: int, constructed: bool = False) -> "Tag":
        return cls(number, constructed, TagClass.UNIVERSAL)


def _encode_length(length: int) -> bytes:
    if length < 0:
        raise BerError("negative length")
    if length < 0x80:
        return bytes([length])
    payload = length.to_bytes((length.bit_length() + 7) // 8, "big")
    if len(payload) > 126:
        raise BerError("length too large to encode")
    return bytes([0x80 | len(payload)]) + payload


def encode_tlv(tag: Tag | int, value: bytes) -> bytes:
    """Encode one TLV record with a definite length."""
    octet = tag.octet if isinstance(tag, Tag) else tag
    return bytes([octet]) + _encode_length(len(value)) + value


def decode_tlv(
    data: "bytes | memoryview", offset: int = 0
) -> Tuple[Tag, "bytes | memoryview", int]:
    """Decode one TLV record starting at *offset*.

    Returns ``(tag, value, next_offset)``.  Raises :class:`BerError` if the
    record is truncated or uses an indefinite length.

    The value is a slice of *data* — ``bytes`` for ``bytes`` input, a
    zero-copy :class:`memoryview` for ``memoryview`` input.
    """
    if offset >= len(data):
        raise BerError("empty input where TLV expected")
    tag = Tag.from_octet(data[offset])
    offset += 1
    if offset >= len(data):
        raise BerError("truncated TLV: missing length")
    first = data[offset]
    offset += 1
    if first < 0x80:
        length = first
    elif first == 0x80:
        raise BerError("indefinite lengths are not supported")
    else:
        nbytes = first & 0x7F
        if offset + nbytes > len(data):
            raise BerError("truncated TLV: length bytes missing")
        length = int.from_bytes(data[offset : offset + nbytes], "big")
        offset += nbytes
    if offset + length > len(data):
        raise BerError(
            f"truncated TLV: need {length} value bytes, have {len(data) - offset}"
        )
    return tag, data[offset : offset + length], offset + length


def decode_tlv_stream(data: bytes) -> Iterator[Tuple[Tag, bytes]]:
    """Yield every TLV record in *data*, requiring exact consumption."""
    offset = 0
    while offset < len(data):
        tag, value, offset = decode_tlv(data, offset)
        yield tag, value


# ---------------------------------------------------------------------------
# Primitive value codecs
# ---------------------------------------------------------------------------


def encode_boolean(value: bool, tag: Tag | int = TAG_BOOLEAN) -> bytes:
    return encode_tlv(tag, b"\xff" if value else b"\x00")


def decode_boolean(value: bytes) -> bool:
    if len(value) != 1:
        raise BerError("BOOLEAN must be exactly one byte")
    return value != b"\x00"


def _integer_bytes(value: int) -> bytes:
    # Two's-complement, minimal length (DER).
    if value == 0:
        return b"\x00"
    nbytes = (value.bit_length() + 8) // 8  # +8 leaves room for the sign bit
    raw = value.to_bytes(nbytes, "big", signed=True)
    # Strip redundant leading sign octets.
    while (
        len(raw) > 1
        and (
            (raw[0] == 0x00 and not raw[1] & 0x80)
            or (raw[0] == 0xFF and raw[1] & 0x80)
        )
    ):
        raw = raw[1:]
    return raw


def encode_integer(value: int, tag: Tag | int = TAG_INTEGER) -> bytes:
    return encode_tlv(tag, _integer_bytes(value))


def encode_enumerated(value: int, tag: Tag | int = TAG_ENUMERATED) -> bytes:
    return encode_tlv(tag, _integer_bytes(value))


def decode_integer(value: bytes) -> int:
    if not value:
        raise BerError("INTEGER must have at least one byte")
    return int.from_bytes(value, "big", signed=True)


def encode_octet_string(value: bytes | str, tag: Tag | int = TAG_OCTET_STRING) -> bytes:
    if isinstance(value, str):
        value = value.encode("utf-8")
    return encode_tlv(tag, value)


def encode_null(tag: Tag | int = TAG_NULL) -> bytes:
    return encode_tlv(tag, b"")


def encode_sequence(parts: List[bytes] | bytes, tag: Tag | int = TAG_SEQUENCE) -> bytes:
    if isinstance(parts, list):
        parts = b"".join(parts)
    return encode_tlv(tag, parts)


def encode_set(parts: List[bytes] | bytes, tag: Tag | int = TAG_SET) -> bytes:
    if isinstance(parts, list):
        parts = b"".join(parts)
    return encode_tlv(tag, parts)


class TlvReader:
    """Sequential zero-copy reader over the contents of a constructed value.

    Protocol decoders use this to walk SEQUENCE bodies::

        r = TlvReader(body)
        version = r.read_integer()
        name = r.read_octet_string()
        r.expect_end()

    The reader holds one :class:`memoryview` over the input; nested
    readers (:meth:`read_sequence`, :meth:`read_set`) and the raw
    :meth:`read`/:meth:`remaining` surface are sub-views of that same
    buffer.  Only the leaf accessors materialize: ``read_octet_string``
    returns ``bytes`` and ``read_string`` returns ``str``, so decoded
    values that escape the decoder never alias network buffers.
    """

    __slots__ = ("_data", "_offset")

    def __init__(self, data: "bytes | bytearray | memoryview"):
        self._data = data if type(data) is memoryview else memoryview(data)
        self._offset = 0

    def at_end(self) -> bool:
        return self._offset >= len(self._data)

    def remaining(self) -> memoryview:
        """The unread tail as a zero-copy view (copy it if it escapes)."""
        return self._data[self._offset :]

    def peek_tag(self) -> Tag:
        if self.at_end():
            raise BerError("peek past end of TLV stream")
        return Tag.from_octet(self._data[self._offset])

    def read(self) -> Tuple[Tag, memoryview]:
        tag, value, self._offset = decode_tlv(self._data, self._offset)
        return tag, value

    def read_raw(self) -> memoryview:
        """The next complete TLV record — tag, length, and value octets —
        as a zero-copy view.

        This is the relay primitive: a protocol op read this way can be
        re-framed under a new message header without ever being decoded
        (see :func:`repro.ldap.protocol.encode_message_with_op`).
        """
        start = self._offset
        _, _, self._offset = decode_tlv(self._data, self._offset)
        return self._data[start : self._offset]

    def read_expect(self, expected: Tag | int) -> memoryview:
        tag, value = self.read()
        want = expected.octet if isinstance(expected, Tag) else expected
        if tag.octet != want:
            raise BerError(f"expected tag {want:#04x}, got {tag.octet:#04x}")
        return value

    def read_integer(self) -> int:
        return decode_integer(self.read_expect(TAG_INTEGER))

    def read_enumerated(self) -> int:
        return decode_integer(self.read_expect(TAG_ENUMERATED))

    def read_boolean(self) -> bool:
        return decode_boolean(self.read_expect(TAG_BOOLEAN))

    def read_octet_string(self) -> bytes:
        return bytes(self.read_expect(TAG_OCTET_STRING))

    def read_string(self) -> str:
        return str(self.read_expect(TAG_OCTET_STRING), "utf-8")

    def read_sequence(self) -> "TlvReader":
        return TlvReader(self.read_expect(TAG_SEQUENCE))

    def read_set(self) -> "TlvReader":
        return TlvReader(self.read_expect(TAG_SET))

    def expect_end(self) -> None:
        if not self.at_end():
            raise BerError(f"{len(self._data) - self._offset} trailing bytes")
