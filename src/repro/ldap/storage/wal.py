"""Append-only write-ahead log with periodic snapshots and compaction.

Layout under the engine's data directory::

    <dir>/snapshot.json   # atomic full checkpoint: {"entries": [...]}
    <dir>/wal.log         # ops applied after the snapshot was taken

Each WAL record is length-prefixed and checksummed::

    uint32 LE  payload length
    uint32 LE  CRC-32 of the payload
    payload    canonical JSON of ChangeOp.to_record()

Recovery loads the snapshot (if any), then replays records until EOF, a
short read, or a CRC mismatch — a torn tail from a crash mid-append is
discarded, never half-applied, so a crash at *any* byte boundary
recovers exactly the prefix of fully-written ops.

Compaction lifecycle: ``snapshot()`` writes the checkpoint to a temp
file, fsyncs it, atomically renames it over ``snapshot.json``, fsyncs
the directory, and only then truncates the WAL.  A crash between the
rename and the truncate replays the old WAL on top of its own snapshot,
which is harmless because every op is an idempotent post-image —
that is what buys crash safety without sequence numbers.

The fsync policy trades durability for append latency: ``always``
fsyncs per append (no acknowledged op is ever lost), ``batch`` fsyncs
every ``batch_size`` appends and at every snapshot/close (bounded loss
window), ``never`` leaves flushing to the OS (crash loses whatever the
kernel had not written — soft-state refresh repopulates it, the MDS
answer to lost writes).
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import threading
import time
import zlib
from typing import List, Tuple

from .api import ChangeOp, StorageError, entry_from_record, entry_to_record
from .memory import MemoryEngine

__all__ = ["WalEngine", "read_wal", "WAL_HEADER"]

_HEADER = struct.Struct("<II")
WAL_HEADER = _HEADER.size  # bytes of (length, crc) framing per record

SNAPSHOT_FILE = "snapshot.json"
WAL_FILE = "wal.log"


def _encode_record(op: ChangeOp) -> bytes:
    payload = json.dumps(
        op.to_record(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_records(raw: bytes) -> Tuple[List[ChangeOp], int]:
    """Decode complete, checksum-valid records; return (ops, clean_bytes).

    Stops at the first torn or corrupt record: everything after a bad
    frame is unreachable (frame boundaries are gone), which is exactly
    the crash-tail semantics recovery wants.
    """
    ops: List[ChangeOp] = []
    offset = 0
    while offset + WAL_HEADER <= len(raw):
        length, crc = _HEADER.unpack_from(raw, offset)
        start = offset + WAL_HEADER
        end = start + length
        if end > len(raw):
            break  # torn tail: record was being appended at the crash
        payload = raw[start:end]
        if zlib.crc32(payload) != crc:
            break  # corrupt frame: discard it and everything after
        try:
            ops.append(ChangeOp.from_record(json.loads(payload.decode("utf-8"))))
        except (ValueError, KeyError, StorageError):
            break
        offset = end
    return ops, offset


def read_wal(path: str | pathlib.Path) -> List[ChangeOp]:
    """Decode the clean prefix of a WAL file (diagnostics and tests)."""
    try:
        raw = pathlib.Path(path).read_bytes()
    except FileNotFoundError:
        return []
    return _scan_records(raw)[0]


class WalEngine(MemoryEngine):
    """Durable engine: in-memory serving, append-only durability."""

    backend_name = "wal"

    def __init__(
        self,
        path: str | pathlib.Path,
        fsync: str = "batch",
        snapshot_every: int = 10000,
        batch_size: int = 64,
        metrics=None,
        tracer=None,
        name: str = "",
    ):
        super().__init__()
        if fsync not in ("always", "batch", "never"):
            raise StorageError(f"unknown fsync policy {fsync!r}")
        self.dir = pathlib.Path(path)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.snapshot_every = snapshot_every
        self.batch_size = max(1, batch_size)
        self.tracer = tracer
        self._lock = threading.RLock()
        self._wal_path = self.dir / WAL_FILE
        self._snapshot_path = self.dir / SNAPSHOT_FILE
        self._fh = open(self._wal_path, "ab")
        self._unsynced = 0
        self._ops_since_snapshot = 0
        self._replayed = False
        labels = {"store": name} if name else None
        if metrics is not None:
            self._appends = metrics.counter("storage.wal.appends", labels)
            self._bytes = metrics.counter("storage.wal.bytes", labels)
            self._snapshot_seconds = metrics.histogram(
                "storage.snapshot.seconds", labels
            )
            self._replay_ops = metrics.counter("storage.replay.ops", labels)
            metrics.gauge_fn(
                "storage.entries", lambda: float(len(self.entries)), labels
            )
            # Fsync lag: appended-but-unsynced records under the batch
            # policy.  A crash loses at most this many operations, so
            # the health model watches it as a durability signal.
            metrics.gauge_fn(
                "storage.wal.unsynced", lambda: float(self._unsynced), labels
            )
        else:
            self._appends = self._bytes = self._replay_ops = None
            self._snapshot_seconds = None

    # -- write path ------------------------------------------------------------

    def apply(self, op: ChangeOp):
        with self._lock:
            result = self._apply_memory(op)
            self._append(op)
            if (
                self.snapshot_every > 0
                and self._ops_since_snapshot >= self.snapshot_every
            ):
                self.snapshot()
            return result

    def _append(self, op: ChangeOp) -> None:
        record = _encode_record(op)
        self._fh.write(record)
        self._fh.flush()
        self._ops_since_snapshot += 1
        if self.fsync == "always":
            os.fsync(self._fh.fileno())
        elif self.fsync == "batch":
            self._unsynced += 1
            if self._unsynced >= self.batch_size:
                os.fsync(self._fh.fileno())
                self._unsynced = 0
        if self._appends is not None:
            self._appends.inc()
            self._bytes.inc(len(record))

    # -- recovery --------------------------------------------------------------

    def replay(self) -> int:
        with self._lock:
            if self._replayed:
                return 0
            self._replayed = True
            span = (
                self.tracer.start("storage.replay", backend=self.backend_name)
                if self.tracer is not None
                else None
            )
            snapshot_entries = 0
            try:
                data = json.loads(self._snapshot_path.read_text())
            except FileNotFoundError:
                data = None
            except (ValueError, OSError) as exc:
                raise StorageError(
                    f"corrupt snapshot {self._snapshot_path}: {exc}"
                ) from exc
            if data is not None:
                for record in data.get("entries", ()):
                    entry = entry_from_record(record)
                    self.entries[entry.dn] = entry
                    self._link(entry.dn)
                snapshot_entries = len(data.get("entries", ()))
            try:
                raw = self._wal_path.read_bytes()
            except FileNotFoundError:
                raw = b""
            ops, _clean = _scan_records(raw)
            for op in ops:
                self._apply_memory(op)
            self._ops_since_snapshot = len(ops)
            if self._replay_ops is not None:
                self._replay_ops.inc(len(ops))
            if span is not None:
                span.tag("ops", len(ops)).tag(
                    "snapshot_entries", snapshot_entries
                ).finish()
            return len(ops)

    # -- checkpoint + compaction -----------------------------------------------

    def snapshot(self) -> int:
        with self._lock:
            span = (
                self.tracer.start("storage.snapshot", backend=self.backend_name)
                if self.tracer is not None
                else None
            )
            started = time.monotonic()
            records = [
                entry_to_record(self.entries[dn])
                for dn in sorted(self.entries, key=lambda d: d.sort_key)
            ]
            tmp = self._snapshot_path.with_suffix(".tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"entries": records}, fh, separators=(",", ":"))
                fh.flush()
                if self.fsync != "never":
                    os.fsync(fh.fileno())
            os.replace(tmp, self._snapshot_path)
            if self.fsync != "never":
                self._fsync_dir()
            # The snapshot is durable; the log up to here is redundant.
            # (A crash before this truncate replays the old log over the
            # snapshot — idempotent post-images make that a no-op.)
            self._fh.close()
            self._fh = open(self._wal_path, "wb")
            if self.fsync != "never":
                os.fsync(self._fh.fileno())
            self._unsynced = 0
            self._ops_since_snapshot = 0
            if self._snapshot_seconds is not None:
                self._snapshot_seconds.observe(time.monotonic() - started)
            if span is not None:
                span.tag("entries", len(records)).finish()
            return len(records)

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fsync
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def close(self) -> None:
        with self._lock:
            if self._fh.closed:
                return
            self._fh.flush()
            if self.fsync != "never":
                os.fsync(self._fh.fileno())
            self._fh.close()

    # -- introspection ---------------------------------------------------------

    @property
    def wal_size(self) -> int:
        """Bytes currently in the live WAL file."""
        try:
            return self._wal_path.stat().st_size
        except FileNotFoundError:
            return 0

    @property
    def ops_since_snapshot(self) -> int:
        return self._ops_since_snapshot
