"""The default in-memory engine: the historical DIT behavior, verbatim.

Owns the entry map and the parent→children adjacency (including glue
nodes) that used to live inline in :class:`~repro.ldap.dit.DIT`.  Apply
is mechanical — upsert, remove-if-present, clear — and mutates the maps
*in place* so owners that alias ``entries``/``children`` for reads stay
valid across a ``CLEAR``.  Holds no lock of its own: the owner (DIT or
GIIS) serializes calls, exactly as :class:`AttributeIndex` documents.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..dn import DN
from ..entry import Entry
from .api import ChangeKind, ChangeOp, StorageEngine

__all__ = ["MemoryEngine"]


class MemoryEngine(StorageEngine):
    """Volatile tree state; ``replay``/``snapshot`` are no-ops."""

    backend_name = "memory"

    def __init__(self):
        self.entries: Dict[DN, Entry] = {}
        self.children: Dict[DN, Set[DN]] = {}

    # -- the choke point -------------------------------------------------------

    def apply(self, op: ChangeOp) -> Optional[Entry]:
        return self._apply_memory(op)

    def _apply_memory(self, op: ChangeOp) -> Optional[Entry]:
        """Mutate the in-memory maps only (shared with durable replay)."""
        if op.kind == ChangeKind.PUT:
            self.entries[op.dn] = op.entry
            self._link(op.dn)
            return op.entry
        if op.kind == ChangeKind.DELETE:
            if self.entries.pop(op.dn, None) is not None:
                self._unlink(op.dn)
            return None
        if op.kind == ChangeKind.CLEAR:
            self.entries.clear()
            self.children.clear()
            return None
        raise ValueError(f"unknown change kind {op.kind!r}")

    # -- tree adjacency --------------------------------------------------------

    def _link(self, dn: DN) -> None:
        # Register the whole ancestor chain so subtree traversal crosses
        # glue nodes (ancestors with no stored entry of their own).
        cur = dn
        for parent in dn.ancestors():
            kids = self.children.setdefault(parent, set())
            if cur in kids:
                break
            kids.add(cur)
            cur = parent

    def _unlink(self, dn: DN) -> None:
        # Prune upward: drop parent->child links for chains that hold
        # neither an entry nor any descendants.
        cur = dn
        while not cur.is_root():
            if cur in self.entries or self.children.get(cur):
                break
            parent = cur.parent()
            kids = self.children.get(parent)
            if kids:
                kids.discard(cur)
                if not kids:
                    del self.children[parent]
            cur = parent

    # -- durability (none) -----------------------------------------------------

    def replay(self) -> int:
        return 0

    def snapshot(self) -> int:
        return 0

    def close(self) -> None:
        pass
