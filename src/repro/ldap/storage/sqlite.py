"""SQLite-backed engine: entries mirrored into one indexed table.

Serving stays in-RAM (the inherited :class:`MemoryEngine` maps back the
DIT exactly like the other engines, so searches are byte-identical);
sqlite is the durability layer, the way OpenLDAP fronts back-bdb with an
entry cache.  Every ``apply`` mirrors the op into the ``entries`` table
inside sqlite's own transaction/journal, so crash recovery is a plain
table scan — no separate log to manage.

The primary key is the *canonical* DN form (normalized RDN tuples), not
the display string: ``HN=a,o=G`` and ``hn=a, o=G`` name the same entry
and must hit the same row.  The display DN survives inside the JSON
payload.

fsync policy maps onto ``PRAGMA synchronous``: ``always`` → FULL,
``batch`` → NORMAL, ``never`` → OFF.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
import threading
import time

from ..dn import DN
from .api import ChangeKind, ChangeOp, StorageError, entry_from_record, entry_to_record
from .memory import MemoryEngine

__all__ = ["SqliteEngine"]

_SYNCHRONOUS = {"always": "FULL", "batch": "NORMAL", "never": "OFF"}


def _key(dn: DN) -> str:
    """Canonical row key two equal DNs always share."""
    return repr(dn.normalized())


class SqliteEngine(MemoryEngine):
    """Durable engine over a single-file sqlite database."""

    backend_name = "sqlite"

    def __init__(
        self,
        path: str | pathlib.Path,
        fsync: str = "batch",
        metrics=None,
        tracer=None,
        name: str = "",
    ):
        super().__init__()
        if fsync not in _SYNCHRONOUS:
            raise StorageError(f"unknown fsync policy {fsync!r}")
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.tracer = tracer
        self._lock = threading.RLock()
        # Engine calls are serialized under self._lock; the connection
        # may still be touched from several executor threads over time.
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(f"PRAGMA synchronous={_SYNCHRONOUS[fsync]}")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            "  dn TEXT PRIMARY KEY,"
            "  record TEXT NOT NULL"
            ")"
        )
        self._conn.commit()
        self._replayed = False
        labels = {"store": name} if name else None
        if metrics is not None:
            self._appends = metrics.counter("storage.wal.appends", labels)
            self._bytes = metrics.counter("storage.wal.bytes", labels)
            self._snapshot_seconds = metrics.histogram(
                "storage.snapshot.seconds", labels
            )
            self._replay_ops = metrics.counter("storage.replay.ops", labels)
            metrics.gauge_fn(
                "storage.entries", lambda: float(len(self.entries)), labels
            )
        else:
            self._appends = self._bytes = self._replay_ops = None
            self._snapshot_seconds = None

    # -- write path ------------------------------------------------------------

    def apply(self, op: ChangeOp):
        with self._lock:
            result = self._apply_memory(op)
            if op.kind == ChangeKind.PUT:
                payload = json.dumps(
                    entry_to_record(op.entry), sort_keys=True, separators=(",", ":")
                )
                self._conn.execute(
                    "INSERT OR REPLACE INTO entries (dn, record) VALUES (?, ?)",
                    (_key(op.dn), payload),
                )
                written = len(payload)
            elif op.kind == ChangeKind.DELETE:
                self._conn.execute(
                    "DELETE FROM entries WHERE dn = ?", (_key(op.dn),)
                )
                written = 0
            else:  # CLEAR
                self._conn.execute("DELETE FROM entries")
                written = 0
            self._conn.commit()
            if self._appends is not None:
                self._appends.inc()
                self._bytes.inc(written)
            return result

    # -- recovery --------------------------------------------------------------

    def replay(self) -> int:
        with self._lock:
            if self._replayed:
                return 0
            self._replayed = True
            span = (
                self.tracer.start("storage.replay", backend=self.backend_name)
                if self.tracer is not None
                else None
            )
            count = 0
            try:
                rows = self._conn.execute("SELECT record FROM entries")
                for (payload,) in rows:
                    entry = entry_from_record(json.loads(payload))
                    self.entries[entry.dn] = entry
                    self._link(entry.dn)
                    count += 1
            except (sqlite3.DatabaseError, ValueError, KeyError) as exc:
                raise StorageError(f"corrupt sqlite store {self.path}: {exc}") from exc
            if self._replay_ops is not None:
                self._replay_ops.inc(count)
            if span is not None:
                span.tag("ops", count).finish()
            return count

    # -- checkpoint ------------------------------------------------------------

    def snapshot(self) -> int:
        """Checkpoint sqlite's own WAL back into the main database file."""
        with self._lock:
            span = (
                self.tracer.start("storage.snapshot", backend=self.backend_name)
                if self.tracer is not None
                else None
            )
            started = time.monotonic()
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            if self._snapshot_seconds is not None:
                self._snapshot_seconds.observe(time.monotonic() - started)
            if span is not None:
                span.tag("entries", len(self.entries)).finish()
            return len(self.entries)

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.commit()
                self._conn.close()
            except sqlite3.ProgrammingError:  # pragma: no cover - already closed
                pass
