"""Pluggable DIT storage engines (memory, write-ahead log, sqlite).

See :mod:`repro.ldap.storage.api` for the ``ChangeOp``/``StorageEngine``
contract and :func:`make_storage` for the config-driven factory used by
``grid-info-server --storage/--data-dir``.
"""

from .api import (
    BACKENDS,
    FSYNC_POLICIES,
    ChangeKind,
    ChangeOp,
    StorageEngine,
    StorageError,
    StorageSpec,
    entry_from_record,
    entry_to_record,
    make_storage,
    parse_storage_spec,
)
from .memory import MemoryEngine
from .sqlite import SqliteEngine
from .wal import WAL_HEADER, WalEngine, read_wal

__all__ = [
    "BACKENDS",
    "FSYNC_POLICIES",
    "ChangeKind",
    "ChangeOp",
    "StorageEngine",
    "StorageError",
    "StorageSpec",
    "MemoryEngine",
    "WalEngine",
    "SqliteEngine",
    "entry_from_record",
    "entry_to_record",
    "make_storage",
    "parse_storage_spec",
    "read_wal",
    "WAL_HEADER",
]
