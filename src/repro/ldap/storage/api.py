"""The storage-engine API: one typed choke point for every DIT write.

The paper's deployment rides on OpenLDAP's *persistent* indexed
backends (§10.2); this reproduction was purely in-RAM until now, so a
GIIS restart lost every registration and cached entry until soft-state
refresh repopulated it.  This package makes the mutation surface
pluggable the way production descendants split their storage layers
(diracx-db's ``db/sql`` vs ``db/os``):

* :class:`ChangeOp` — a typed, serializable description of one write.
  The six ad-hoc DIT mutators (``add``/``replace``/``modify``/
  ``delete``/``clear``/``load``) all normalize into three mechanical
  kinds: ``PUT`` (post-image upsert), ``DELETE`` (single DN), and
  ``CLEAR``.  Post-image logging makes every op idempotent, which is
  what lets crash recovery replay a write-ahead log over its own
  snapshot without sequence numbers.
* :class:`StorageEngine` — the four-method protocol every backend
  implements: ``apply``, ``replay``, ``snapshot``, ``close``.  Engines
  own the in-memory tree state (``entries`` + ``children``); the DIT
  keeps semantic checks (entryAlreadyExists, noSuchObject, non-leaf
  delete) and secondary-index maintenance in its thin wrappers, so
  engines stay mechanical and replay can never fail a check that
  already passed before the crash.
* :func:`make_storage` — the validated factory behind the
  ``grid-info-server`` ``"storage"`` config object and the
  ``--storage``/``--data-dir`` flags (mirroring the ``--transport``
  endpoint factory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from ..dn import DN
from ..entry import Entry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...obs.metrics import MetricsRegistry

__all__ = [
    "StorageError",
    "ChangeKind",
    "ChangeOp",
    "StorageEngine",
    "StorageSpec",
    "make_storage",
    "entry_to_record",
    "entry_from_record",
    "BACKENDS",
    "FSYNC_POLICIES",
]

BACKENDS = ("memory", "wal", "sqlite")
FSYNC_POLICIES = ("always", "batch", "never")


class StorageError(Exception):
    """Raised on invalid storage configuration or a corrupt store."""


class ChangeKind:
    """The three mechanical write kinds every mutator normalizes into."""

    PUT = "put"
    DELETE = "delete"
    CLEAR = "clear"

    ALL = (PUT, DELETE, CLEAR)


def entry_to_record(entry: Entry) -> Dict[str, object]:
    """A JSON-able description of one entry (attr case preserved)."""
    return {"dn": str(entry.dn), "attrs": {a: list(v) for a, v in entry.items()}}


def entry_from_record(data: Dict[str, object]) -> Entry:
    return Entry(str(data["dn"]), {str(a): v for a, v in data["attrs"].items()})


@dataclass(frozen=True)
class ChangeOp:
    """One write, normalized to a mechanical post-image operation.

    ``PUT`` carries the full entry as it must exist afterwards (the
    *post-image*): ``add``, ``replace``, and ``modify`` all reduce to
    it, which keeps replay deterministic — no mutator callables or
    pre-images to re-run.  ``exclusive``/``force`` record the original
    intent for engines that care (and for audit tooling reading a WAL),
    but replay ignores them: an op only reaches a log after its checks
    passed.
    """

    kind: str
    dn: Optional[DN] = None
    entry: Optional[Entry] = None
    exclusive: bool = False  # PUT: came from an LDAP add (no overwrite)
    force: bool = False  # DELETE: came from a cascading subtree delete

    @classmethod
    def put(cls, entry: Entry, exclusive: bool = False) -> "ChangeOp":
        return cls(ChangeKind.PUT, dn=entry.dn, entry=entry, exclusive=exclusive)

    @classmethod
    def delete(cls, dn: DN | str, force: bool = False) -> "ChangeOp":
        return cls(ChangeKind.DELETE, dn=DN.of(dn), force=force)

    @classmethod
    def clear(cls) -> "ChangeOp":
        return cls(ChangeKind.CLEAR)

    def to_record(self) -> Dict[str, object]:
        """The JSON-able WAL payload for this op."""
        if self.kind == ChangeKind.PUT:
            return {"op": self.kind, **entry_to_record(self.entry)}
        if self.kind == ChangeKind.DELETE:
            return {"op": self.kind, "dn": str(self.dn)}
        return {"op": self.kind}

    @classmethod
    def from_record(cls, data: Dict[str, object]) -> "ChangeOp":
        kind = data.get("op")
        if kind == ChangeKind.PUT:
            entry = entry_from_record(data)
            return cls(kind, dn=entry.dn, entry=entry)
        if kind == ChangeKind.DELETE:
            return cls(kind, dn=DN.parse(str(data["dn"])))
        if kind == ChangeKind.CLEAR:
            return cls(kind)
        raise StorageError(f"unknown change kind {kind!r} in storage record")


class StorageEngine:
    """Protocol for pluggable DIT storage backends.

    An engine owns the canonical in-memory tree state — ``entries``
    (DN → Entry) and ``children`` (DN → child DN set, spanning glue
    nodes) — and implements exactly four methods.  Owners (the DIT, a
    GIIS persisting registrations) alias these dicts for reads and
    serialize every call under their own lock; durable engines take an
    internal lock as well so a bare engine shared without a DIT stays
    consistent.

    * ``apply(op)`` — mutate the in-memory state and, for durable
      engines, persist the op.  Mechanical: semantic LDAP checks happen
      in the caller before the op is built.  Returns the stored entry
      for ``PUT``, else None.
    * ``replay()`` — recover persisted state into the in-memory maps
      (snapshot load + WAL replay, or a table scan).  Idempotent:
      second and later calls return 0.  Returns the number of replayed
      log ops.
    * ``snapshot()`` — force a durable checkpoint and compact the log.
      Returns the number of entries written.
    * ``close()`` — flush and release file handles; the engine must not
      be used afterwards.
    """

    backend_name = "abstract"

    entries: Dict[DN, Entry]
    children: Dict[DN, Set[DN]]

    def apply(self, op: ChangeOp) -> Optional[Entry]:
        raise NotImplementedError

    def replay(self) -> int:
        raise NotImplementedError

    def snapshot(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class StorageSpec:
    """A validated storage configuration (the ``"storage"`` object).

    ``path`` is the data *directory*; each consumer in one process gets
    its own namespace under it (``giis-registrations/``, ``gris-view/``)
    so a server hosting both a GIIS and a GRIS view shares one
    ``--data-dir``.
    """

    backend: str = "memory"
    path: str = ""
    fsync: str = "batch"
    snapshot_every: int = 10000
    extra: Dict[str, object] = field(default_factory=dict)

    def validate(self, require_path: bool = True) -> "StorageSpec":
        """Check the spec; ``require_path=False`` defers the path check.

        Config parsing validates with ``require_path=False`` because the
        data directory may arrive later from ``--data-dir``; the factory
        re-validates fully once both sources have been merged.
        """
        if self.backend not in BACKENDS:
            raise StorageError(
                f"unknown storage backend {self.backend!r} "
                f"(choose from {', '.join(BACKENDS)})"
            )
        if self.fsync not in FSYNC_POLICIES:
            raise StorageError(
                f"unknown fsync policy {self.fsync!r} "
                f"(choose from {', '.join(FSYNC_POLICIES)})"
            )
        if require_path and self.backend != "memory" and not self.path:
            raise StorageError(
                f"storage backend {self.backend!r} requires a data "
                "directory ('path' in the storage object, or --data-dir)"
            )
        if self.snapshot_every < 0:
            raise StorageError("snapshot_every must be >= 0 (0 = manual only)")
        return self


def make_storage(
    spec: StorageSpec | str,
    path: Optional[str] = None,
    *,
    subdir: str = "",
    metrics: Optional["MetricsRegistry"] = None,
    tracer=None,
    name: str = "",
) -> StorageEngine:
    """Build a storage engine from a spec (the ``--storage`` factory).

    Accepts either a :class:`StorageSpec` or a bare backend name plus
    ``path``.  ``subdir`` namespaces one consumer inside a shared data
    directory.  Raises :class:`StorageError` with an actionable message
    on bad configuration, mirroring the transport factory's behavior.
    """
    if isinstance(spec, str):
        spec = StorageSpec(backend=spec, path=path or "")
    elif path:
        spec = StorageSpec(
            backend=spec.backend,
            path=path,
            fsync=spec.fsync,
            snapshot_every=spec.snapshot_every,
            extra=spec.extra,
        )
    spec.validate()
    if spec.backend == "memory":
        from .memory import MemoryEngine

        return MemoryEngine()
    import pathlib

    root = pathlib.Path(spec.path)
    if subdir:
        root = root / subdir
    if spec.backend == "wal":
        from .wal import WalEngine

        return WalEngine(
            root,
            fsync=spec.fsync,
            snapshot_every=spec.snapshot_every,
            metrics=metrics,
            tracer=tracer,
            name=name or subdir,
        )
    from .sqlite import SqliteEngine

    return SqliteEngine(
        root.with_suffix(".sqlite") if root.suffix else root / "store.sqlite",
        fsync=spec.fsync,
        metrics=metrics,
        tracer=tracer,
        name=name or subdir,
    )


def parse_storage_spec(data: Dict[str, object]) -> StorageSpec:
    """Parse a JSON ``"storage"`` object into a validated spec."""
    if not isinstance(data, dict):
        raise StorageError("'storage' must be an object")
    known = {"backend", "path", "fsync", "snapshot_every"}
    extra = {k: v for k, v in data.items() if k not in known}
    if extra:
        raise StorageError(
            f"unknown storage option(s): {', '.join(sorted(extra))} "
            f"(expected {', '.join(sorted(known))})"
        )
    try:
        spec = StorageSpec(
            backend=str(data.get("backend", "memory")),
            path=str(data.get("path", "")),
            fsync=str(data.get("fsync", "batch")),
            snapshot_every=int(data.get("snapshot_every", 10000)),
        )
    except (TypeError, ValueError) as exc:
        raise StorageError(f"bad storage object: {exc}") from exc
    return spec.validate(require_path=False)
