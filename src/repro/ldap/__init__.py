"""LDAP substrate: data model, query language, and wire protocol.

The paper adopts LDAP "as a data model, query language, and protocol,
not an implementation vehicle" (§4.1); this package is our from-scratch
implementation of the subset MDS-2 exercises.
"""

from .attributes import AttributeValues, rule_for
from .dit import DIT, DitError, EntryExists, NoSuchEntry, Scope, SizeLimitExceeded
from .dn import DN, RDN, DNError
from .entry import Entry
from .filter import Filter, FilterError, parse as parse_filter
from .index import AttributeIndex
from .plan import candidates_for, is_plannable
from .ldif import format_ldif, parse_ldif
from .referral import chase_referrals, search_following_referrals
from .schema import GRID_SCHEMA, ObjectClass, Schema, SchemaError
from .url import LdapUrl, LdapUrlError

__all__ = [
    "AttributeValues",
    "rule_for",
    "DIT",
    "DitError",
    "EntryExists",
    "NoSuchEntry",
    "Scope",
    "SizeLimitExceeded",
    "DN",
    "RDN",
    "DNError",
    "Entry",
    "Filter",
    "FilterError",
    "parse_filter",
    "AttributeIndex",
    "candidates_for",
    "is_plannable",
    "format_ldif",
    "parse_ldif",
    "chase_referrals",
    "search_following_referrals",
    "GRID_SCHEMA",
    "ObjectClass",
    "Schema",
    "SchemaError",
    "LdapUrl",
    "LdapUrlError",
]
