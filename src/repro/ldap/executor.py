"""Request execution: cancellation tokens and the bounded worker pool.

MDS-2 positions a GRIS/GIIS as a server that must stay responsive while
dispatching to slow information providers and chaining to remote
directories (§10.3/§10.4).  Executing a search inline on the transport
reader thread makes every connection head-of-line blocked: one stalled
provider probe or GIIS fan-out delays every later operation on that
connection — including the Abandon that should cancel it.

This module supplies the two primitives the front end uses to fix that:

* :class:`CancelToken` — a per-request cancellation/deadline carrier,
  threaded through :class:`~repro.ldap.backend.RequestContext` so
  backends (GIIS chaining, GRIS provider collection) can stop in-flight
  work when the client abandons, unbinds, or disconnects, or when the
  request's time limit expires.
* :class:`RequestExecutor` — a sized worker pool with a bounded queue.
  Decode stays on the reader thread; search execution is submitted
  here.  Queue overflow is *backpressure*: :meth:`RequestExecutor.submit`
  refuses and the server answers ``BUSY`` instead of stalling the
  connection.  ``workers=0`` selects *inline* mode (run on the caller's
  thread), which keeps the discrete-event simulator single-threaded and
  deterministic while exercising the same code path.

Both are instrumented on a :class:`~repro.obs.metrics.MetricsRegistry`,
so pool depth, queue wait, rejections, and cancellations are visible
under ``cn=monitor`` like every other operational signal.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..net.clock import Clock, WallClock
from ..obs.metrics import MetricsRegistry

__all__ = ["CancelToken", "RequestExecutor"]


class CancelToken:
    """One request's cancellation state plus optional absolute deadline.

    Created by the front end per operation and handed to the backend via
    ``ctx.token``.  Cancellation is level-triggered and sticky: callbacks
    registered after :meth:`cancel` fire immediately, so late observers
    (a chained child completing after an Abandon) cannot miss it.
    """

    __slots__ = ("deadline", "_lock", "_cancelled", "_reason", "_callbacks")

    def __init__(self, deadline: Optional[float] = None):
        self.deadline = deadline
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason = ""
        self._callbacks: List[Callable[[], None]] = []

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def reason(self) -> str:
        """Why the request was cancelled ('' while still live)."""
        return self._reason

    def cancel(self, reason: str = "cancelled") -> None:
        """Idempotent; fires every registered callback exactly once."""
        with self._lock:
            if self._cancelled:
                return
            self._cancelled = True
            self._reason = reason
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback()
            except Exception:  # noqa: BLE001 - observers must not break cancel
                pass

    def on_cancel(self, callback: Callable[[], None]) -> None:
        """Run *callback* on cancellation (immediately if already cancelled)."""
        with self._lock:
            if not self._cancelled:
                self._callbacks.append(callback)
                return
        callback()

    # -- deadline arithmetic --------------------------------------------------

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def remaining(self, now: float) -> Optional[float]:
        """Budget left before the deadline; None when unbounded."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - now)

    def clamp(self, now: float, timeout: float) -> float:
        """*timeout* reduced to the remaining deadline budget."""
        remaining = self.remaining(now)
        return timeout if remaining is None else min(timeout, remaining)


class RequestExecutor:
    """A bounded worker pool with queue-overflow backpressure.

    ``workers > 0`` starts that many daemon threads draining a FIFO of
    at most *queue_limit* pending tasks; :meth:`submit` refuses (returns
    ``False``) when the queue is full, which the LDAP front end maps to
    a ``BUSY`` result — the client sees fast failure, never a silent
    stall.  ``workers=0`` is inline mode: tasks run synchronously on the
    submitting thread, preserving the old single-threaded semantics for
    the simulator and for embedded use.

    Metric families (all under the supplied registry, hence under
    ``cn=monitor`` when that registry is served):

    * ``ldap.executor.workers`` / ``ldap.executor.queue.limit`` — sizing
    * ``ldap.executor.queue.depth`` / ``ldap.executor.active`` — live load
    * ``ldap.executor.queue.wait.seconds`` — decode-to-execute latency
    * ``ldap.executor.submitted`` / ``completed`` / ``rejected`` /
      ``errors`` — lifecycle counters
    """

    def __init__(
        self,
        workers: int = 0,
        queue_limit: int = 64,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Clock] = None,
        name: str = "ldap",
        metric_prefix: str = "ldap.executor",
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.workers = workers
        self.queue_limit = queue_limit
        self.metrics = metrics or MetricsRegistry()
        self.clock = clock or WallClock()
        self.name = name
        # The pool is generic: the LDAP front end uses the default
        # "ldap.executor" family, the GRIS provider pool registers as
        # "gris.executor" — same instruments, distinct metric namespace.
        self.metric_prefix = metric_prefix
        labels = {"pool": name}
        self._submitted = self.metrics.counter(f"{metric_prefix}.submitted", labels)
        self._rejected = self.metrics.counter(f"{metric_prefix}.rejected", labels)
        self._completed = self.metrics.counter(f"{metric_prefix}.completed", labels)
        self._errors = self.metrics.counter(f"{metric_prefix}.errors", labels)
        self._queue_wait = self.metrics.histogram(
            f"{metric_prefix}.queue.wait.seconds", labels
        )
        self.metrics.gauge_fn(f"{metric_prefix}.workers", lambda: self.workers, labels)
        self.metrics.gauge_fn(
            f"{metric_prefix}.queue.limit", lambda: self.queue_limit, labels
        )
        self.metrics.gauge_fn(
            f"{metric_prefix}.queue.depth", lambda: len(self._queue), labels
        )
        self.metrics.gauge_fn(f"{metric_prefix}.active", lambda: self._active, labels)
        self._queue: Deque[Tuple[Callable[[], None], float]] = deque()
        self._cv = threading.Condition()
        self._active = 0
        self._closed = False
        self._threads: List[threading.Thread] = []
        for i in range(workers):
            thread = threading.Thread(
                target=self._worker, name=f"{name}-exec-{i}", daemon=True
            )
            self._threads.append(thread)
            thread.start()

    @property
    def inline(self) -> bool:
        """True when tasks run on the submitting thread (workers=0)."""
        return self.workers == 0

    def submit(self, task: Callable[[], None]) -> bool:
        """Queue *task*; False = queue full (caller should answer BUSY)."""
        if self.inline:
            self._submitted.inc()
            self._queue_wait.observe(0.0)
            self._run(task)
            return True
        with self._cv:
            if self._closed or len(self._queue) >= self.queue_limit:
                self._rejected.inc()
                return False
            self._queue.append((task, self.clock.now()))
            self._submitted.inc()
            self._cv.notify()
        return True

    def _run(self, task: Callable[[], None]) -> None:
        self._active += 1
        try:
            task()
        except Exception:  # noqa: BLE001 - a task must not kill its worker
            self._errors.inc()
        finally:
            self._active -= 1
            self._completed.inc()

    def _worker(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if self._closed and not self._queue:
                    return
                task, enqueued = self._queue.popleft()
            self._queue_wait.observe(self.clock.now() - enqueued)
            self._run(task)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; drain the queue, then stop the workers."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=5.0)
