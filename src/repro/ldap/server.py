"""The LDAP server front end — MDS-2's "standard protocol interpreter".

Per §10.1 of the paper, "the interpreter handles all authentication,
data formatting, query interpretation, results filtering, network
connection management, and dispatch to the appropriate backend", and
per §10.3 result filtering "is not a performance optimization, but a
necessary step to ensure that the protocol's search semantics are
implemented correctly" — backends (cached providers especially) may
return supersets.

Responsibilities here:

* decode/encode LDAPMessages on any :class:`~repro.net.transport.Connection`;
* binds via a pluggable :class:`~repro.security.sasl.Authenticator`;
* per-request access control via an :class:`~repro.security.acl.AccessPolicy`
  (filter evaluation happens on the *policy-visible* entry, so restricted
  attributes are neither returned nor searchable — no oracle leaks);
* authoritative filter matching, attribute selection, size limits;
* persistent-search subscriptions and Abandon;
* dispatch of everything else to the :class:`~repro.ldap.backend.Backend`.

Execution model (the §10.1 interpreter under load): message decode and
connection state stay on the transport reader thread, but *search*
execution is submitted to a :class:`~repro.ldap.executor.RequestExecutor`
— a bounded worker pool.  Binds, unbinds, writes, and Abandons remain
serialized on the reader thread (so authentication state changes are
ordered with respect to the requests that follow them), while searches
on one connection run concurrently: a slow GIIS fan-out or GRIS provider
probe no longer head-of-line blocks the Abandon meant to cancel it.
Queue overflow answers ``BUSY`` (backpressure, not stalling); each
search carries a deadline derived from the LDAP ``timeLimit`` and the
server-wide default, answering ``TIME_LIMIT_EXCEEDED`` on expiry; and a
:class:`~repro.ldap.executor.CancelToken` threaded through the
:class:`~repro.ldap.backend.RequestContext` lets Abandon/Unbind/close
stop in-flight backend work instead of letting it run to completion.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

from ..net.clock import Clock, WallClock
from ..net.transport import Connection, ConnectionClosed
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..security.acl import ANONYMOUS, AccessPolicy, open_policy
from ..security.gsi import AuthError
from ..security.sasl import AnonymousOnly, Authenticator
from .backend import Backend, ChangeType, RequestContext, Subscription
from .dit import Scope
from .dn import DN, intern_cache_stats
from .entry import Entry
from .executor import CancelToken, RequestExecutor
from .filter import compile_filter
from .protocol import (
    AbandonRequest,
    AddRequest,
    AddResponse,
    BindRequest,
    BindResponse,
    Control,
    DeleteRequest,
    DeleteResponse,
    ExtendedRequest,
    ExtendedResponse,
    LdapMessage,
    LdapResult,
    ModifyRequest,
    ModifyResponse,
    ProtocolError,
    RawEntry,
    ResultCode,
    SearchRequest,
    SearchResultDone,
    SearchResultEntry,
    SearchResultReference,
    TRACE_CONTEXT_OID,
    TraceContext,
    UnbindRequest,
    decode_message,
    encode_message,
    encode_message_with_op,
    encode_search_entry,
)
from .psearch import EntryChangeNotification, PersistentSearchControl

__all__ = ["LdapServer", "WHOAMI_OID"]

WHOAMI_OID = "1.3.6.1.4.1.4203.1.11.3"
VENDOR_NAME = "repro-mds2"


class LdapServer:
    """A transport-agnostic LDAP server.

    Attach to any listener via :meth:`handle_connection`::

        server = LdapServer(backend)
        node.listen(2135, server.handle_connection)       # simulator
        endpoint.listen(2135, server.handle_connection)   # real TCP
    """

    def __init__(
        self,
        backend: Backend,
        authenticator: Optional[Authenticator] = None,
        policy: Optional[AccessPolicy] = None,
        clock: Optional[Clock] = None,
        allow_anonymous_writes: bool = True,
        name: str = "ldap-server",
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        executor: Optional[RequestExecutor] = None,
        default_time_limit: float = 0.0,
        encode_cache: bool = True,
    ):
        self.backend = backend
        self.authenticator = authenticator or AnonymousOnly()
        self.policy = policy or open_policy()
        self.clock = clock or WallClock()
        self.allow_anonymous_writes = allow_anonymous_writes
        self.name = name
        # Server-side ceiling on search execution time (seconds); the
        # effective deadline is the tighter of this and the request's
        # own timeLimit.  0 = no server-imposed limit.
        self.default_time_limit = default_time_limit
        # Per-operation counters and latency histograms live on the
        # metrics registry (share one across components to aggregate a
        # whole process under cn=monitor); `stats` stays as the
        # backward-compatible read view.
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer
        self.stats = _ServerStats(self.metrics)
        self._connections = self.metrics.counter("ldap.connections")
        self._protocol_errors = self.metrics.counter("ldap.protocol.errors")
        self._trace_malformed = self.metrics.counter("trace.context.malformed")
        self._entries_returned = self.metrics.counter("ldap.entries.returned")
        self._entries_suppressed = self.metrics.counter("ldap.entries.suppressed")
        self._requests = {
            op: self.metrics.counter("ldap.requests", {"op": op})
            for op in ("search", "bind", "add", "modify", "delete")
        }
        self._latency = {
            op: self.metrics.histogram("ldap.request.seconds", {"op": op})
            for op in ("search", "bind", "add", "modify", "delete")
        }
        # Search execution happens off the reader thread on this pool;
        # the default inline executor (workers=0) preserves synchronous
        # single-threaded semantics for the simulator and embedded use.
        self.executor = (
            executor
            if executor is not None
            else RequestExecutor(
                workers=0, metrics=self.metrics, clock=self.clock, name=name
            )
        )
        self._search_rejected = self.metrics.counter("ldap.search.rejected")
        self._search_expired = self.metrics.counter("ldap.search.deadline_expired")
        # Wire-path fast lanes: per-entry encode caching (off = always
        # re-encode, the pre-cache behavior; the wire bytes are identical
        # either way) plus codec traffic and DN intern-cache visibility.
        self.encode_cache = encode_cache
        self._codec_messages = self.metrics.counter("ldap.codec.messages")
        self._codec_bytes = self.metrics.counter("ldap.codec.bytes")
        self._encode_hits = self.metrics.counter("ldap.encode.cache.hits")
        self._encode_misses = self.metrics.counter("ldap.encode.cache.misses")
        self._encode_uncached = self.metrics.counter("ldap.encode.cache.uncached")
        # Entries relayed as raw child frames (zero decode/re-encode) —
        # a subset of ldap.entries.returned.
        self._entries_relayed = self.metrics.counter("ldap.entries.relayed")
        for key in ("size", "hits", "misses", "evictions"):
            self.metrics.gauge_fn(
                f"ldap.dn.cache.{key}",
                lambda k=key: float(intern_cache_stats()[k]),
            )

    def observe_result(self, op: str, code: int, started: float) -> None:
        """Record one finished operation: result-code count + latency."""
        self.metrics.counter("ldap.results", {"op": op, "code": int(code)}).inc()
        self._latency[op].observe(self.clock.now() - started)

    def observe_cancelled(self, reason: str) -> None:
        """Count one in-flight search cancelled before completion."""
        self.metrics.counter("ldap.search.cancelled", {"reason": reason}).inc()

    def handle_connection(self, conn: Connection) -> None:
        self._connections.inc()
        _ServerConnection(self, conn)


class _ServerStats:
    """Read view over the registry-backed front-end counters.

    Attribute-compatible with the old ad-hoc counter bag; all writes go
    through :attr:`LdapServer.metrics` now.
    """

    def __init__(self, metrics: MetricsRegistry) -> None:
        self._m = metrics

    def _count(self, name: str, labels=None) -> int:
        return int(self._m.counter(name, labels).value)

    @property
    def connections(self) -> int:
        return self._count("ldap.connections")

    @property
    def searches(self) -> int:
        return self._count("ldap.requests", {"op": "search"})

    @property
    def binds(self) -> int:
        return self._count("ldap.requests", {"op": "bind"})

    @property
    def adds(self) -> int:
        return self._count("ldap.requests", {"op": "add"})

    @property
    def modifies(self) -> int:
        return self._count("ldap.requests", {"op": "modify"})

    @property
    def deletes(self) -> int:
        return self._count("ldap.requests", {"op": "delete"})

    @property
    def entries_returned(self) -> int:
        return self._count("ldap.entries.returned")

    @property
    def entries_suppressed(self) -> int:
        return self._count("ldap.entries.suppressed")

    @property
    def protocol_errors(self) -> int:
        return self._count("ldap.protocol.errors")


class _InFlightSearch:
    """Conclude-once bookkeeping for one search being executed."""

    __slots__ = ("token", "started", "timer")

    def __init__(self, token: CancelToken, started: float):
        self.token = token
        self.started = started
        self.timer = None  # deadline TimerHandle, when armed


class _ServerConnection:
    """Per-connection protocol state machine.

    Threading: `_lock` serializes dispatch on the transport reader
    thread (decode order = processing order for bind/unbind/writes/
    Abandon).  Searches leave the reader thread via the server's
    executor, so `_ops_lock` guards the tables shared with worker
    threads and timer callbacks: in-flight searches and subscriptions.
    Each search concludes exactly once — whoever pops its record
    (completion, deadline expiry, Abandon, Unbind, or close) owns the
    response; everyone else drops theirs.
    """

    def __init__(self, server: LdapServer, conn: Connection):
        self.server = server
        self.conn = conn
        self.identity = ANONYMOUS
        self._lock = threading.Lock()  # serializes dispatch on TCP threads
        self._ops_lock = threading.Lock()  # guards the two tables below
        self._subscriptions: Dict[int, Subscription] = {}
        self._inflight: Dict[int, _InFlightSearch] = {}
        conn.set_close_handler(self._on_close)
        conn.set_receiver(self._on_message)

    # -- plumbing -----------------------------------------------------------

    def _send(self, message: LdapMessage) -> None:
        self._send_raw(encode_message(message))

    def _send_raw(self, data: bytes) -> None:
        try:
            self.conn.send(data)
        except ConnectionClosed:
            self._on_close()

    def _on_close(self) -> None:
        """Connection gone: drop subscriptions AND abandon in-flight work.

        Cancelling the in-flight tokens is what stops orphaned GIIS
        chain queries and GRIS provider dispatch for clients that
        disconnected mid-search.
        """
        with self._ops_lock:
            subscriptions = list(self._subscriptions.values())
            self._subscriptions.clear()
            inflight = list(self._inflight.values())
            self._inflight.clear()
        for sub in subscriptions:
            sub.cancel()
        for record in inflight:
            if record.timer is not None:
                record.timer.cancel()
            record.token.cancel("connection closed")
            self.server.observe_cancelled("disconnect")

    def _take_inflight(self, msg_id: int) -> Optional[_InFlightSearch]:
        """Claim the right to conclude *msg_id*; None = already concluded."""
        with self._ops_lock:
            record = self._inflight.pop(msg_id, None)
        if record is not None and record.timer is not None:
            record.timer.cancel()
        return record

    def _context(self) -> RequestContext:
        return RequestContext(
            identity=self.identity,
            now=self.server.clock.now(),
            peer=self.conn.peer,
        )

    def _on_message(self, raw: bytes) -> None:
        self.server._codec_messages.inc()
        self.server._codec_bytes.inc(len(raw))
        try:
            message = decode_message(raw)
        except ProtocolError:
            self.server._protocol_errors.inc()
            self.conn.close()
            self._on_close()
            return
        with self._lock:
            try:
                self._dispatch(message)
            except Exception as exc:  # noqa: BLE001 - never kill the server
                self._send_error_for(message, exc)

    def _send_error_for(self, message: LdapMessage, exc: Exception) -> None:
        result = LdapResult(ResultCode.OTHER, message=f"internal error: {exc}")
        op = message.op
        if isinstance(op, SearchRequest):
            self._send(LdapMessage(message.message_id, SearchResultDone(result)))
        elif isinstance(op, BindRequest):
            self._send(LdapMessage(message.message_id, BindResponse(result)))
        elif isinstance(op, AddRequest):
            self._send(LdapMessage(message.message_id, AddResponse(result)))
        elif isinstance(op, ModifyRequest):
            self._send(LdapMessage(message.message_id, ModifyResponse(result)))
        elif isinstance(op, DeleteRequest):
            self._send(LdapMessage(message.message_id, DeleteResponse(result)))

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, message: LdapMessage) -> None:
        op = message.op
        if isinstance(op, BindRequest):
            self._handle_bind(message.message_id, op)
        elif isinstance(op, UnbindRequest):
            self._on_close()
            self.conn.close()
        elif isinstance(op, SearchRequest):
            self._handle_search(message.message_id, op, message.controls)
        elif isinstance(op, AddRequest):
            self._handle_write(
                message.message_id,
                AddResponse,
                lambda ctx: self.server.backend.add(op, ctx),
                "add",
            )
        elif isinstance(op, ModifyRequest):
            self._handle_write(
                message.message_id,
                ModifyResponse,
                lambda ctx: self.server.backend.modify(op, ctx),
                "modify",
            )
        elif isinstance(op, DeleteRequest):
            self._handle_write(
                message.message_id,
                DeleteResponse,
                lambda ctx: self.server.backend.delete(op.dn, ctx),
                "delete",
            )
        elif isinstance(op, AbandonRequest):
            self._abandon(op.message_id)
        elif isinstance(op, ExtendedRequest):
            self._handle_extended(message.message_id, op)
        else:
            # A response op arriving at a server is a protocol violation.
            self.server._protocol_errors.inc()
            self.conn.close()
            self._on_close()

    def _abandon(self, target_id: int) -> None:
        """Abandon a persistent search or an in-flight operation.

        No response in either case (RFC 4511 §4.11); cancelling the
        token makes the backend stop chaining/dispatching and makes the
        eventual completion callback a silent no-op.
        """
        with self._ops_lock:
            sub = self._subscriptions.pop(target_id, None)
        if sub is not None:
            sub.cancel()
            return
        record = self._take_inflight(target_id)
        if record is not None:
            record.token.cancel("abandoned")
            self.server.observe_cancelled("abandon")

    def _handle_bind(self, msg_id: int, op: BindRequest) -> None:
        self.server._requests["bind"].inc()
        started = self.server.clock.now()
        try:
            outcome = self.server.authenticator.authenticate(
                op.name, op.mechanism, op.credentials, self.server.clock.now()
            )
        except AuthError as exc:
            self.identity = ANONYMOUS
            self.server.observe_result(
                "bind", ResultCode.INVALID_CREDENTIALS, started
            )
            self._send(
                LdapMessage(
                    msg_id,
                    BindResponse(
                        LdapResult(ResultCode.INVALID_CREDENTIALS, message=str(exc))
                    ),
                )
            )
            return
        self.identity = outcome.identity
        self.server.observe_result("bind", ResultCode.SUCCESS, started)
        self._send(
            LdapMessage(
                msg_id,
                BindResponse(LdapResult(), outcome.server_credentials),
            )
        )

    def _handle_write(
        self,
        msg_id: int,
        response_cls,
        action: Callable[[RequestContext], LdapResult],
        op: str,
    ) -> None:
        self.server._requests[op].inc()
        started = self.server.clock.now()
        if self.identity == ANONYMOUS and not self.server.allow_anonymous_writes:
            result = LdapResult(
                ResultCode.INSUFFICIENT_ACCESS_RIGHTS,
                message="writes require authentication",
            )
        else:
            result = action(self._context())
        self.server.observe_result(op, result.code, started)
        self._send(LdapMessage(msg_id, response_cls(result)))

    def _handle_extended(self, msg_id: int, op: ExtendedRequest) -> None:
        if op.oid == WHOAMI_OID:
            self._send(
                LdapMessage(
                    msg_id,
                    ExtendedResponse(
                        LdapResult(), op.oid, self.identity.encode("utf-8")
                    ),
                )
            )
            return
        self._send(
            LdapMessage(
                msg_id,
                ExtendedResponse(
                    LdapResult(
                        ResultCode.PROTOCOL_ERROR,
                        message=f"unsupported extended op {op.oid}",
                    )
                ),
            )
        )

    # -- search ---------------------------------------------------------------

    def _visible(
        self, req: SearchRequest, entry: Entry, match=None
    ) -> Optional[Entry]:
        """Access control + authoritative filter + attribute selection.

        The filter is evaluated against the policy-visible entry so a
        query cannot probe values of attributes it may not read.
        *match* is the request's compiled filter when the caller holds
        one (the per-entry search loops); it falls back to the AST.
        """
        visible = self.server.policy.filter_entry(self.identity, entry)
        if visible is None:
            self.server._entries_suppressed.inc()
            return None
        if match is None:
            match = req.filter.matches
        if not match(visible):
            return None
        return visible.project(req.wants())

    def _root_dse(self) -> Entry:
        """The server-descriptive entry at the empty DN (RFC 4512 §5.1).

        Lets clients discover which suffixes a server holds — the
        automated end of the §9 configuration story.
        """
        from .psearch import PSEARCH_OID

        dse = Entry(DN.root(), objectclass=["top", "extensibleobject"])
        contexts = self.server.backend.naming_contexts()
        if contexts:
            dse.put("namingcontexts", contexts)
        dse.put("supportedcontrol", [PSEARCH_OID])
        dse.put("supportedextension", [WHOAMI_OID])
        dse.put("vendorname", VENDOR_NAME)
        dse.put("servername", self.server.name)
        return dse

    def _wire_entry(self, req: SearchRequest, entry: Entry) -> SearchResultEntry:
        sre = SearchResultEntry.from_entry(entry)
        if req.types_only:
            sre = SearchResultEntry(
                sre.dn, tuple((attr, ()) for attr, _ in sre.attributes)
            )
        return sre

    def _fast_lane(self, req: SearchRequest) -> bool:
        """Whether this search may serve cached whole-entry encodings.

        Eligible when the response is the entry verbatim: no attribute
        selection, no typesOnly, and a policy that is transparent for
        this identity (so the per-entry ACL rebuild is an identity
        transform).  The wire bytes are identical on both lanes; the
        fast lane just skips the per-client copy and re-encode.
        """
        return (
            self.server.encode_cache
            and not req.types_only
            and req.wants() is None
            and self.server.policy.is_transparent(self.identity)
        )

    def _send_entry(
        self, msg_id: int, req: SearchRequest, entry: Entry, fast: bool
    ) -> None:
        """Send one matched entry, via the encode cache when eligible."""
        if not fast:
            self._send(LdapMessage(msg_id, self._wire_entry(req, entry)))
            return
        server = self.server
        cell = entry._wire
        if cell is None:
            # Not served from a cacheable store (provider-generated,
            # GIIS-merged, projected): encode per response.
            body = encode_search_entry(entry)
            server._encode_uncached.inc()
        else:
            body = cell.body
            if body is None:
                body = encode_search_entry(entry)
                cell.body = body
                server._encode_misses.inc()
            else:
                server._encode_hits.inc()
        self._send_raw(encode_message_with_op(msg_id, body))

    def _deadline_for(self, req: SearchRequest, now: float) -> Optional[float]:
        """Absolute deadline: tighter of the request's timeLimit and the
        server default; None when neither bounds the search."""
        limits = [
            float(limit)
            for limit in (req.time_limit, self.server.default_time_limit)
            if limit and limit > 0
        ]
        return (now + min(limits)) if limits else None

    def _handle_search(
        self, msg_id: int, req: SearchRequest, controls: Tuple[Control, ...]
    ) -> None:
        """Admit one search: bookkeeping and executor hand-off.

        Runs on the reader thread and must stay cheap — the actual work
        happens in :meth:`_execute_search` on the executor (inline when
        the pool has no workers).  Three exits: queued/executed, BUSY on
        queue overflow, or TIME_LIMIT_EXCEEDED if the deadline timer
        wins the race before execution concludes.
        """
        self.server._requests["search"].inc()
        started = self.server.clock.now()
        token = CancelToken(deadline=self._deadline_for(req, started))
        ctx = self._context()
        ctx.controls = controls
        ctx.token = token
        record = _InFlightSearch(token, started)
        with self._ops_lock:
            self._inflight[msg_id] = record
        if token.deadline is not None:
            record.timer = self.server.clock.call_later(
                token.deadline - started,
                lambda: self._deadline_expired(msg_id),
            )
        accepted = self.server.executor.submit(
            lambda: self._run_search_safely(msg_id, req, ctx, started)
        )
        if not accepted:
            # Backpressure: refuse fast instead of stalling the client.
            record = self._take_inflight(msg_id)
            if record is None:
                return  # deadline fired first and already answered
            record.token.cancel("queue full")
            self.server._search_rejected.inc()
            self.server.observe_result("search", ResultCode.BUSY, started)
            self._send(
                LdapMessage(
                    msg_id,
                    SearchResultDone(
                        LdapResult(
                            ResultCode.BUSY,
                            message="server busy: request queue full",
                        )
                    ),
                )
            )

    def _run_search_safely(
        self, msg_id: int, req: SearchRequest, ctx: RequestContext, started: float
    ) -> None:
        """Executor entry point: a crashing search answers OTHER, never
        leaves the message id dangling or kills its worker."""
        try:
            self._execute_search(msg_id, req, ctx, started)
        except Exception as exc:  # noqa: BLE001 - never kill the server
            if self._take_inflight(msg_id) is None:
                return
            self.server.observe_result("search", ResultCode.OTHER, started)
            self._send(
                LdapMessage(
                    msg_id,
                    SearchResultDone(
                        LdapResult(
                            ResultCode.OTHER, message=f"internal error: {exc}"
                        )
                    ),
                )
            )

    def _deadline_expired(self, msg_id: int) -> None:
        record = self._take_inflight(msg_id)
        if record is None:
            return  # completed (or was abandoned) just in time
        record.token.cancel("time limit exceeded")
        self.server._search_expired.inc()
        self.server.observe_result(
            "search", ResultCode.TIME_LIMIT_EXCEEDED, record.started
        )
        self._send(
            LdapMessage(
                msg_id,
                SearchResultDone(
                    LdapResult(
                        ResultCode.TIME_LIMIT_EXCEEDED,
                        message="search exceeded its time limit",
                    )
                ),
            )
        )

    def _execute_search(
        self,
        msg_id: int,
        req: SearchRequest,
        ctx: RequestContext,
        started: float,
    ) -> None:
        """Execute one admitted search (executor worker or inline).

        Every response path must first claim the in-flight record via
        :meth:`_take_inflight`; a None claim means the deadline timer,
        an Abandon, or a close already concluded this message id and the
        outcome is dropped.
        """
        token = ctx.token
        if token.cancelled:
            return  # cancelled while queued

        # Root DSE: BASE search at the empty DN describes the server.
        if req.scope == Scope.BASE and not req.base.strip():
            if self._take_inflight(msg_id) is None:
                return
            dse = self._root_dse()
            if req.filter.matches(dse):
                self.server._entries_returned.inc()
                self._send(
                    LdapMessage(
                        msg_id, self._wire_entry(req, dse.project(req.wants()))
                    )
                )
            self.server.observe_result("search", ResultCode.SUCCESS, started)
            self._send(LdapMessage(msg_id, SearchResultDone(LdapResult())))
            return
        try:
            psc = PersistentSearchControl.find(ctx.controls)
        except Exception:
            if self._take_inflight(msg_id) is None:
                return
            self.server.observe_result("search", ResultCode.PROTOCOL_ERROR, started)
            self._send(
                LdapMessage(
                    msg_id,
                    SearchResultDone(
                        LdapResult(
                            ResultCode.PROTOCOL_ERROR,
                            message="malformed persistent search control",
                        )
                    ),
                )
            )
            return

        span = None
        if self.server.tracer is not None:
            # Parent the root span on the remote caller when the request
            # carries a trace-context control; the control is
            # non-critical, so a malformed payload is counted and the
            # search proceeds with a fresh local trace.
            remote = None
            for control in ctx.controls or ():
                if control.oid == TRACE_CONTEXT_OID:
                    try:
                        tc = TraceContext.from_control(control)
                        remote = (tc.trace_id, tc.parent_span_id, tc.sampled)
                    except ProtocolError:
                        self.server._trace_malformed.inc()
                    break
            span = self.server.tracer.start(
                "ldap.search",
                remote=remote,
                base=req.base,
                scope=int(req.scope),
                filter=str(req.filter),
            )
            ctx.trace = span

        def after_initial() -> None:
            if psc is not None:
                sub = self.server.backend.subscribe(
                    req, ctx, self._pusher(msg_id, req, psc), psc.change_types
                )
                if sub is None:
                    self._send(
                        LdapMessage(
                            msg_id,
                            SearchResultDone(
                                LdapResult(
                                    ResultCode.UNWILLING_TO_PERFORM,
                                    message="subscriptions not supported by backend",
                                )
                            ),
                        )
                    )
                    return
                with self._ops_lock:
                    self._subscriptions[msg_id] = sub
                if self.conn.closed:
                    # Lost the race with a disconnect: _on_close may
                    # already have swept the table before we registered.
                    with self._ops_lock:
                        sub = self._subscriptions.pop(msg_id, None)
                    if sub is not None:
                        sub.cancel()
                # No SearchResultDone: the search stays open until Abandon.
                return
            self._send(LdapMessage(msg_id, SearchResultDone(LdapResult())))

        def conclude(code: int, sent: int) -> None:
            self.server.observe_result("search", code, started)
            if span is not None:
                span.tag("entries", sent).tag("code", code).finish()

        # Streaming delivery: the backend pushes results one at a time
        # and each is sent as it arrives — the first entry reaches the
        # wire before the backend finishes producing (or, for a chaining
        # GIIS, before slower children have even answered).
        #
        # On the fast lane the ACL rebuild is an identity transform, so
        # only the (still authoritative) filter match runs per entry and
        # the encoded body can come from the entry's cache cell.  A
        # RawEntry is the relay case: its frame came verbatim from an
        # authoritative child that already ran this same filter and a
        # transparent policy, so it is re-framed under our message id
        # with zero decode and zero re-encode.  All lanes produce the
        # same bytes.
        fast = self._fast_lane(req)
        ctx.transparent = fast
        match = compile_filter(req.filter)
        sent_box = [0]

        def over_limit() -> bool:
            """Conclude with sizeLimitExceeded on the (limit+1)-th
            visible entry; cancelling the token afterwards makes a
            chaining backend Abandon its outstanding children."""
            if not req.size_limit or sent_box[0] < req.size_limit:
                return False
            if self._take_inflight(msg_id) is not None:
                conclude(ResultCode.SIZE_LIMIT_EXCEEDED, sent_box[0])
                self._send(
                    LdapMessage(
                        msg_id,
                        SearchResultDone(
                            LdapResult(ResultCode.SIZE_LIMIT_EXCEEDED)
                        ),
                    )
                )
                token.cancel("size limit satisfied")
            return True

        def on_entry(item) -> None:
            if token.cancelled:
                return
            if isinstance(item, RawEntry):
                if fast:
                    if over_limit():
                        return
                    self.server._entries_returned.inc()
                    self.server._entries_relayed.inc()
                    sent_box[0] += 1
                    self._send_raw(
                        encode_message_with_op(msg_id, item.op_bytes)
                    )
                    return
                # The front end must project/filter after all: decode.
                entry = item.to_entry()
            else:
                entry = item
            if fast:
                if not match(entry):
                    return
                visible = entry
            else:
                visible = self._visible(req, entry, match)
                if visible is None:
                    return
            if over_limit():
                return
            self.server._entries_returned.inc()
            sent_box[0] += 1
            self._send_entry(msg_id, req, visible, fast)

        def on_done(outcome) -> None:
            if self._take_inflight(msg_id) is None:
                # Deadline/Abandon/close/size-limit answered first:
                # drop silently.
                if span is not None:
                    span.tag("dropped", token.reason or True).finish()
                return
            if not outcome.result.ok:
                # A non-ok outcome ends the stream with the backend's
                # code; partial entry sets (sizeLimitExceeded) were
                # already streamed above.
                conclude(outcome.result.code, sent_box[0])
                self._send(LdapMessage(msg_id, SearchResultDone(outcome.result)))
                return
            for uri in outcome.referrals:
                self._send(LdapMessage(msg_id, SearchResultReference((uri,))))
            conclude(ResultCode.SUCCESS, sent_box[0])
            after_initial()

        if psc is not None and psc.changes_only:
            if self._take_inflight(msg_id) is None:
                return
            conclude(ResultCode.SUCCESS, 0)
            after_initial()
        else:
            self.server.backend.submit_search_stream(req, ctx, on_entry, on_done)

    def _pusher(
        self, msg_id: int, req: SearchRequest, psc: PersistentSearchControl
    ):
        def push(entry: Entry, change: int) -> None:
            if change == ChangeType.DELETE:
                # Deletes can't be filter-matched; report DN visibility only.
                visible = self.server.policy.filter_entry(self.identity, entry)
                if visible is None:
                    return
                projected = visible.project(req.wants())
            else:
                projected = self._visible(req, entry)
                if projected is None:
                    return
            controls: Tuple[Control, ...] = ()
            if psc.return_ecs:
                controls = (EntryChangeNotification(change).to_control(),)
            try:
                self.conn.send(
                    encode_message(
                        LdapMessage(msg_id, self._wire_entry(req, projected), controls)
                    )
                )
            except ConnectionClosed:
                with self._ops_lock:
                    sub = self._subscriptions.pop(msg_id, None)
                if sub is not None:
                    sub.cancel()

        return push
