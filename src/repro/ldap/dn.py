"""Distinguished names (RFC 4514 subset).

The LDAP data model names every entry with a *distinguished name* — a
sequence of relative distinguished names (RDNs) ordered leaf-first, e.g.
``perf=load5, hn=hostX, o=O1``.  MDS-2 uses DNs both to name resources
within a provider and, combined with the provider's own address, to form
globally unique names (paper §4.1).

This module implements parsing with RFC 4514 escaping (``\\,`` ``\\=`` and
``\\xx`` hex pairs), normalization (case-insensitive attribute types and
values, whitespace trimming), and the hierarchy operations the DIT needs
(parent, ancestry tests, relative naming).  Multi-valued RDNs
(``a=1+b=2``) are supported since LDAP allows them, though MDS-2 data
never needs more than one AVA per RDN.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import total_ordering
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "DNError",
    "RDN",
    "DN",
    "configure_intern_cache",
    "intern_cache_stats",
]


class DNError(ValueError):
    """Raised on malformed DN strings."""


_ESCAPED_CHARS = set(',+"\\<>;=#')


def _escape_value(value: str) -> str:
    out: List[str] = []
    for i, ch in enumerate(value):
        if ch in _ESCAPED_CHARS:
            out.append("\\" + ch)
        elif ch in (" ",) and (i == 0 or i == len(value) - 1):
            out.append("\\" + ch)
        elif ord(ch) < 0x20:
            out.append("\\%02x" % ord(ch))
        else:
            out.append(ch)
    return "".join(out)


def _split_unescaped(text: str, seps: str) -> Iterator[Tuple[str, str]]:
    """Yield ``(piece, separator)`` splitting on unescaped separator chars.

    The final piece is yielded with an empty separator.
    """
    buf: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            if i + 1 >= len(text):
                raise DNError("dangling escape at end of DN")
            buf.append(text[i : i + 2])
            i += 2
            continue
        if ch in seps:
            yield "".join(buf), ch
            buf = []
            i += 1
            continue
        buf.append(ch)
        i += 1
    yield "".join(buf), ""


def _unescape(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(value):
            raise DNError("dangling escape")
        nxt = value[i + 1]
        if nxt in _ESCAPED_CHARS or nxt == " ":
            out.append(nxt)
            i += 2
            continue
        if i + 2 <= len(value) and _is_hex(value[i + 1 : i + 3]):
            out.append(chr(int(value[i + 1 : i + 3], 16)))
            i += 3
            continue
        raise DNError(f"invalid escape \\{nxt!r}")
    return "".join(out)


def _is_hex(s: str) -> bool:
    return len(s) == 2 and all(c in "0123456789abcdefABCDEF" for c in s)


def _parse_rdn_fast(text: str) -> "RDN":
    """Parse one RDN known to contain no ``\\`` escapes.

    ``str.split``/``str.partition`` replace the char-by-char escape
    state machine; behavior (including errors) matches the slow path
    for every escape-free input.
    """
    avas: List[Tuple[str, str]] = []
    for comp in text.split("+"):
        attr, eq, value = comp.partition("=")
        if not eq or "=" in value:
            raise DNError(f"RDN component {comp!r} must be attr=value")
        attr = attr.strip()
        if not attr:
            raise DNError(f"missing attribute type in {comp!r}")
        avas.append((attr, value.strip()))
    return RDN(tuple(avas))


# --------------------------------------------------------------------------
# DN.parse intern cache
# --------------------------------------------------------------------------
#
# GRIS/GIIS re-parse the same handful of DN strings — search bases, entry
# DNs in write requests, suffixes in registrations — once per request.
# Parsed DNs are immutable and memoize their normalization and hash, so a
# bounded LRU keyed on the *raw* string can hand every request the same
# shared object: a hit skips parsing, normalization, and hashing at once.

_INTERN_LOCK = threading.Lock()
_INTERN_CAPACITY = 4096
_INTERN: "OrderedDict[str, DN]" = OrderedDict()
_INTERN_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def configure_intern_cache(capacity: int) -> None:
    """Resize the :meth:`DN.parse` intern cache (0 disables it)."""
    global _INTERN_CAPACITY
    with _INTERN_LOCK:
        _INTERN_CAPACITY = max(0, int(capacity))
        while len(_INTERN) > _INTERN_CAPACITY:
            _INTERN.popitem(last=False)


def intern_cache_stats() -> Dict[str, int]:
    """Point-in-time cache counters: size, capacity, hits, misses, evictions."""
    with _INTERN_LOCK:
        return {
            "size": len(_INTERN),
            "capacity": _INTERN_CAPACITY,
            **_INTERN_STATS,
        }


@total_ordering
@dataclass(frozen=True)
class RDN:
    """A relative distinguished name: one or more attribute-value pairs."""

    avas: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.avas:
            raise DNError("empty RDN")
        for attr, _ in self.avas:
            if not attr or not attr.replace("-", "").replace(".", "").isalnum():
                raise DNError(f"invalid attribute type {attr!r}")

    @classmethod
    def single(cls, attr: str, value: str) -> "RDN":
        return cls(((attr, value),))

    @classmethod
    def parse(cls, text: str) -> "RDN":
        if "\\" not in text:
            return _parse_rdn_fast(text)
        avas: List[Tuple[str, str]] = []
        for piece, _sep in _split_unescaped(text, "+"):
            parts = list(_split_unescaped(piece, "="))
            if len(parts) != 2:
                raise DNError(f"RDN component {piece!r} must be attr=value")
            attr = parts[0][0].strip()
            value = _unescape(parts[1][0].strip())
            if not attr:
                raise DNError(f"missing attribute type in {piece!r}")
            avas.append((attr, value))
        return cls(tuple(avas))

    @property
    def attr(self) -> str:
        """Attribute type of the first (usually only) AVA."""
        return self.avas[0][0]

    @property
    def value(self) -> str:
        """Value of the first (usually only) AVA."""
        return self.avas[0][1]

    def normalized(self) -> Tuple[Tuple[str, str], ...]:
        # Memoized: RDNs are frozen, and normalization backs __eq__ and
        # __hash__, both hot in every DIT dictionary operation.
        cached = self.__dict__.get("_normalized")
        if cached is None:
            cached = tuple(
                sorted((a.lower(), " ".join(v.lower().split())) for a, v in self.avas)
            )
            object.__setattr__(self, "_normalized", cached)
        return cached

    def __str__(self) -> str:
        return "+".join(f"{a}={_escape_value(v)}" for a, v in self.avas)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RDN):
            return NotImplemented
        return self.normalized() == other.normalized()

    def __lt__(self, other: "RDN") -> bool:
        return self.normalized() < other.normalized()

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(self.normalized())
            object.__setattr__(self, "_hash", cached)
        return cached


@dataclass(frozen=True)
class DN:
    """An LDAP distinguished name, leaf RDN first.

    ``DN.parse("perf=load5, hn=hostX")`` names the ``perf=load5`` entry
    directly under ``hn=hostX``.  The empty DN (``DN.root()``) is the DIT
    root suffix.
    """

    rdns: Tuple[RDN, ...] = ()

    @classmethod
    def root(cls) -> "DN":
        return cls(())

    @classmethod
    def parse(cls, text: str) -> "DN":
        if cls is DN and _INTERN_CAPACITY:
            with _INTERN_LOCK:
                dn = _INTERN.get(text)
                if dn is not None:
                    _INTERN.move_to_end(text)
                    _INTERN_STATS["hits"] += 1
                    return dn
                _INTERN_STATS["misses"] += 1
        dn = cls._parse(text)
        if cls is DN and _INTERN_CAPACITY:
            # Warm the memos outside the lock so every future hit shares
            # the normalization and hash, not just the parse.
            dn.normalized()
            hash(dn)
            with _INTERN_LOCK:
                _INTERN[text] = dn
                _INTERN.move_to_end(text)
                if len(_INTERN) > _INTERN_CAPACITY:
                    _INTERN.popitem(last=False)
                    _INTERN_STATS["evictions"] += 1
        return dn

    @classmethod
    def _parse(cls, text: str) -> "DN":
        text = text.strip()
        if not text:
            return cls.root()
        rdns = []
        if "\\" not in text:
            for piece in text.replace(";", ",").split(","):
                piece = piece.strip()
                if not piece:
                    raise DNError(f"empty RDN in {text!r}")
                rdns.append(_parse_rdn_fast(piece))
            return cls(tuple(rdns))
        for piece, _sep in _split_unescaped(text, ",;"):
            piece = piece.strip()
            if not piece:
                raise DNError(f"empty RDN in {text!r}")
            rdns.append(RDN.parse(piece))
        return cls(tuple(rdns))

    @classmethod
    def of(cls, value: "DN | str") -> "DN":
        return value if isinstance(value, DN) else cls.parse(value)

    def is_root(self) -> bool:
        return not self.rdns

    @property
    def rdn(self) -> RDN:
        if not self.rdns:
            raise DNError("root DN has no RDN")
        return self.rdns[0]

    def parent(self) -> "DN":
        if not self.rdns:
            raise DNError("root DN has no parent")
        return DN(self.rdns[1:])

    def child(self, rdn: RDN | str) -> "DN":
        if isinstance(rdn, str):
            rdn = RDN.parse(rdn)
        return DN((rdn,) + self.rdns)

    def is_descendant_of(self, ancestor: "DN") -> bool:
        """True if *self* is strictly below *ancestor*."""
        n = len(ancestor.rdns)
        if len(self.rdns) <= n:
            return False
        return DN(self.rdns[len(self.rdns) - n :]) == ancestor

    def is_within(self, ancestor: "DN") -> bool:
        """True if *self* equals *ancestor* or is below it."""
        return self == ancestor or self.is_descendant_of(ancestor)

    def depth_below(self, ancestor: "DN") -> int:
        """Number of RDN levels between *self* and *ancestor* (0 if equal)."""
        if not self.is_within(ancestor):
            raise DNError(f"{self} is not within {ancestor}")
        return len(self.rdns) - len(ancestor.rdns)

    def relative_to(self, suffix: "DN") -> Tuple[RDN, ...]:
        """RDNs of *self* below *suffix*, leaf first."""
        if not self.is_within(suffix):
            raise DNError(f"{self} is not within {suffix}")
        return self.rdns[: len(self.rdns) - len(suffix.rdns)]

    def ancestors(self) -> Iterator["DN"]:
        """Yield parent, grandparent, ..., root."""
        dn = self
        while not dn.is_root():
            dn = dn.parent()
            yield dn

    def normalized(self) -> Tuple[Tuple[Tuple[str, str], ...], ...]:
        cached = self.__dict__.get("_normalized")
        if cached is None:
            cached = tuple(r.normalized() for r in self.rdns)
            object.__setattr__(self, "_normalized", cached)
        return cached

    @property
    def sort_key(self) -> Tuple[int, str]:
        """Canonical result-ordering key: ``(depth, lowercased string)``.

        Memoized on the (frozen) instance — every search re-sorts its
        result set, and rebuilding the lowercased string per comparison
        was measurable O(N log N) string work on the query hot path.
        """
        cached = self.__dict__.get("_sort_key")
        if cached is None:
            cached = (len(self.rdns), str(self).lower())
            object.__setattr__(self, "_sort_key", cached)
        return cached

    def __str__(self) -> str:
        return ", ".join(str(r) for r in self.rdns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DN):
            return NotImplemented
        return self.normalized() == other.normalized()

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(self.normalized())
            object.__setattr__(self, "_hash", cached)
        return cached

    def __len__(self) -> int:
        return len(self.rdns)


def common_suffix(dns: Sequence[DN] | Iterable[DN]) -> DN:
    """Longest DN that every DN in *dns* is within (the shared suffix)."""
    dns = list(dns)
    if not dns:
        return DN.root()
    # Compare suffix-first (reversed RDN order).
    rev = [list(reversed(d.rdns)) for d in dns]
    out: List[RDN] = []
    for level in zip(*rev):
        if all(r == level[0] for r in level[1:]):
            out.append(level[0])
        else:
            break
    return DN(tuple(reversed(out)))
