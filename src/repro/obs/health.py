"""Server health: thresholds over the metrics registry, rolled up.

The paper's meta-monitoring story (§6) is that a Grid service's own
health is *Grid information*: published as ``Mds-Server-*`` attributes,
aggregated by an ordinary GIIS, queried with plain GRIP.  This module
is the judgment layer between raw instruments and that published
record:

* :class:`HealthThresholds` — when does a number become a problem
  (queue saturation, search p95, provider-cache staleness, WAL fsync
  lag, trace-sink drops);
* :class:`HealthModel` — reads one consistent registry snapshot (plus
  the time-series recorder for windowed rates/percentiles when one is
  attached), evaluates every check, and rolls the worst level up into
  ``healthy`` / ``degraded`` / ``unhealthy`` with liveness/readiness
  booleans;
* :meth:`HealthModel.attrs` / :meth:`HealthModel.entry` — the rollup as
  LDAP attributes, consumed by the ``cn=health,cn=monitor`` entry, the
  GRIS/GIIS self-providers, the ``/health`` endpoint, and
  ``grid-info-top``.

Checks are *absence-tolerant*: a GRIS has no GIIS pool, a memory-store
server has no WAL — signals that do not exist simply report ``ok``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..net.clock import Clock
from .metrics import MetricsRegistry, RegistrySnapshot

__all__ = ["HealthThresholds", "HealthCheck", "HealthReport", "HealthModel"]

OK, DEGRADED, UNHEALTHY = 0, 1, 2
_VERDICTS = ("healthy", "degraded", "unhealthy")


@dataclass(frozen=True)
class HealthThresholds:
    """Degraded/unhealthy trip points; generous defaults for a busy
    server that is still keeping up."""

    queue_saturation_warn: float = 0.75  # depth / limit
    queue_saturation_crit: float = 0.95
    search_p95_warn_ms: float = 1000.0
    search_p95_crit_ms: float = 5000.0
    cache_age_warn_s: float = 300.0  # oldest provider snapshot
    cache_age_crit_s: float = 1800.0
    wal_unsynced_warn: int = 1024  # appended-but-unfsynced records
    wal_unsynced_crit: int = 16384
    trace_drop_warn_rps: float = 50.0  # ring-sink drops per second
    trace_drop_crit_rps: float = 1000.0


@dataclass(frozen=True)
class HealthCheck:
    """One evaluated signal."""

    name: str
    level: int  # OK / DEGRADED / UNHEALTHY
    value: float
    detail: str

    @property
    def verdict(self) -> str:
        return _VERDICTS[self.level]


@dataclass(frozen=True)
class HealthReport:
    """The rollup: worst check wins."""

    status: str
    live: bool
    ready: bool
    checks: List[HealthCheck]

    def to_json(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "live": self.live,
            "ready": self.ready,
            "checks": [
                {
                    "name": c.name,
                    "status": c.verdict,
                    "value": c.value,
                    "detail": c.detail,
                }
                for c in self.checks
            ],
        }


def _level(value: float, warn: float, crit: float) -> int:
    if value >= crit:
        return UNHEALTHY
    if value >= warn:
        return DEGRADED
    return OK


class HealthModel:
    """Evaluates the threshold checks against live metrics.

    *recorder* (a :class:`~repro.obs.timeseries.TimeSeriesRecorder`)
    supplies windowed rates and percentiles; without one, req/s falls
    back to lifetime-average and p95 to the cumulative histogram — still
    correct, just less responsive to recent change.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        clock: Clock,
        recorder=None,
        thresholds: Optional[HealthThresholds] = None,
        server_id: str = "",
        window: float = 60.0,
    ):
        self.metrics = metrics
        self.clock = clock
        self.recorder = recorder
        self.thresholds = thresholds or HealthThresholds()
        self.server_id = server_id
        self.window = window
        self.started_at = clock.now()

    # -- signal extraction ----------------------------------------------------

    def _search_count(self, snapshot: RegistrySnapshot) -> float:
        total = 0.0
        for snap in snapshot:
            if snap.name == "ldap.requests":
                total += float(snap.value or 0.0)
        return total

    def _rps(self, snapshot: RegistrySnapshot) -> float:
        if self.recorder is not None:
            rate = self.recorder.rate(
                "ldap.requests{op=search}", window=self.window
            )
            if rate > 0:
                return rate
        # Floor the uptime at one interval's worth of wall time so a
        # poll right after startup reports a sane lifetime average
        # instead of count/epsilon.
        uptime = max(self.clock.now() - self.started_at, 1.0)
        return self._search_count(snapshot) / uptime

    def _search_p95_ms(self, snapshot: RegistrySnapshot) -> float:
        if self.recorder is not None:
            stats = self.recorder.window_stats(
                "ldap.request.seconds{op=search}", window=self.window
            )
            if stats is not None:
                return stats["p95"] * 1000.0
        snap = snapshot.get("ldap.request.seconds", {"op": "search"})
        if snap is not None and snap.data.get("count"):
            return float(snap.data["p95"]) * 1000.0
        return 0.0

    def _queue(self, snapshot: RegistrySnapshot):
        """Worst (depth, limit, saturation) across every executor pool."""
        worst = (0.0, 0.0, 0.0)
        for snap in snapshot:
            if not snap.name.endswith(".queue.depth"):
                continue
            limit_snap = snapshot.get(
                snap.name[: -len(".depth")] + ".limit", dict(snap.labels)
            )
            depth = float(snap.value or 0.0)
            limit = float(limit_snap.value or 0.0) if limit_snap else 0.0
            saturation = depth / limit if limit > 0 else 0.0
            if saturation >= worst[2]:
                worst = (depth, limit, saturation)
        return worst

    def _max_labeled(self, snapshot: RegistrySnapshot, name: str) -> float:
        values = [
            float(s.value or 0.0)
            for s in snapshot
            if s.name == name and s.value == s.value  # skip NaN callbacks
        ]
        return max(values) if values else 0.0

    def _sum_named(self, snapshot: RegistrySnapshot, name: str) -> float:
        return sum(float(s.value or 0.0) for s in snapshot if s.name == name)

    def _trace_drop_rate(self, snapshot: RegistrySnapshot) -> float:
        if self.recorder is not None:
            return self.recorder.rate("trace.ring.dropped", window=self.window)
        return 0.0  # a lifetime total is not a rate; no recorder, no signal

    def _cache_hit_ratio(self, snapshot: RegistrySnapshot) -> Optional[float]:
        """Provider-cache (GRIS) or query-cache (GIIS) hit ratio."""
        for hits_name, misses_name in (
            ("gris.cache.hits", "gris.cache.misses"),
            ("giis.query_cache.hits", "giis.query_cache.misses"),
        ):
            hits = self._sum_named(snapshot, hits_name)
            misses = self._sum_named(snapshot, misses_name)
            if hits + misses > 0:
                return hits / (hits + misses)
        return None

    # -- evaluation -------------------------------------------------------------

    def report(self, snapshot: Optional[RegistrySnapshot] = None) -> HealthReport:
        if snapshot is None:
            snapshot = self.metrics.collect(self.clock.now())
        t = self.thresholds
        checks: List[HealthCheck] = []

        depth, limit, saturation = self._queue(snapshot)
        checks.append(
            HealthCheck(
                "executor-queue",
                _level(saturation, t.queue_saturation_warn, t.queue_saturation_crit),
                saturation,
                f"depth {int(depth)} of limit {int(limit)}",
            )
        )
        p95_ms = self._search_p95_ms(snapshot)
        checks.append(
            HealthCheck(
                "search-p95",
                _level(p95_ms, t.search_p95_warn_ms, t.search_p95_crit_ms),
                p95_ms,
                f"search p95 {p95_ms:.1f} ms over the last {self.window:.0f}s",
            )
        )
        cache_age = self._max_labeled(snapshot, "gris.cache.age")
        checks.append(
            HealthCheck(
                "provider-cache-age",
                _level(cache_age, t.cache_age_warn_s, t.cache_age_crit_s),
                cache_age,
                f"oldest provider snapshot {cache_age:.1f}s",
            )
        )
        unsynced = self._max_labeled(snapshot, "storage.wal.unsynced")
        checks.append(
            HealthCheck(
                "wal-fsync-lag",
                _level(unsynced, t.wal_unsynced_warn, t.wal_unsynced_crit),
                unsynced,
                f"{int(unsynced)} appended record(s) not yet fsynced",
            )
        )
        drop_rate = self._trace_drop_rate(snapshot)
        checks.append(
            HealthCheck(
                "trace-sink-drops",
                _level(drop_rate, t.trace_drop_warn_rps, t.trace_drop_crit_rps),
                drop_rate,
                f"{drop_rate:.1f} spans/s dropped by the ring sink",
            )
        )
        worst = max(c.level for c in checks)
        return HealthReport(
            status=_VERDICTS[worst],
            live=True,  # evaluating at all means the process is serving
            ready=worst < UNHEALTHY,
            checks=checks,
        )

    # -- publication ------------------------------------------------------------

    def attrs(self) -> Dict[str, object]:
        """The Mds-Server-* attribute map for self-publication."""
        snapshot = self.metrics.collect(self.clock.now())
        report = self.report(snapshot)
        rps = self._rps(snapshot)
        p95_ms = self._search_p95_ms(snapshot)
        depth, limit, saturation = self._queue(snapshot)
        hit_ratio = self._cache_hit_ratio(snapshot)
        out: Dict[str, object] = {
            "Mds-Server-Id": self.server_id or "unknown",
            "Mds-Server-Uptime-Seconds": round(
                self.clock.now() - self.started_at, 3
            ),
            "Mds-Server-Rps": round(rps, 3),
            "Mds-Server-Search-P95-Ms": (
                round(p95_ms, 3) if math.isfinite(p95_ms) else "inf"
            ),
            "Mds-Server-Queue-Depth": int(depth),
            "Mds-Server-Queue-Saturation": round(saturation, 4),
            "Mds-Server-Pool-Dials": int(self._sum_named(snapshot, "pool.dials")),
            "Mds-Server-Pool-Reuses": int(self._sum_named(snapshot, "pool.reuses")),
            "Mds-Server-Cache-Age-Seconds": round(
                self._max_labeled(snapshot, "gris.cache.age"), 3
            ),
            "Mds-Server-Wal-Unsynced": int(
                self._max_labeled(snapshot, "storage.wal.unsynced")
            ),
            "Mds-Server-Trace-Drops": int(
                self._sum_named(snapshot, "trace.ring.dropped")
            ),
            "Mds-Server-Health": report.status,
            "Mds-Server-Live": "TRUE" if report.live else "FALSE",
            "Mds-Server-Ready": "TRUE" if report.ready else "FALSE",
        }
        if hit_ratio is not None:
            out["Mds-Server-Cache-Hit-Ratio"] = round(hit_ratio, 4)
        for check in report.checks:
            out[f"Mds-Server-Check-{check.name}"] = check.verdict
        return out

    def entry(self, dn: DN | str) -> Entry:
        """The self-provider entry: this server's health at *dn*."""
        entry = Entry(DN.of(dn), objectclass=["top", "mdsserver"])
        rdn = DN.of(dn).rdn
        entry.put(rdn.attr, rdn.value)
        for attr, value in self.attrs().items():
            entry.put(attr, value)
        return entry
