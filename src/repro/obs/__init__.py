"""Observability: metrics, trace spans, and the ``cn=monitor`` subtree.

The subsystem has three layers:

* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket latency
  histograms behind a :class:`MetricsRegistry`;
* :mod:`repro.obs.trace` — per-request span trees with pluggable sinks;
* :mod:`repro.obs.monitor` — the registry rendered as a live,
  GRIP-queryable ``cn=monitor`` LDAP subtree.

Every instrumented component (LDAP front end, GIIS, GRIS, soft-state
registry, TCP transport) accepts an optional shared registry; see
``grid-info-server --monitor`` for the fully wired deployment.
"""

from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .monitor import MONITOR_SUFFIX, MonitorBackend, MonitoredBackend
from .trace import (
    JsonlSink,
    RemoteSpan,
    RingSink,
    SlowSpanLog,
    Span,
    Tracer,
    format_traceparent,
    parse_traceparent,
    span_record,
)

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MONITOR_SUFFIX",
    "MonitorBackend",
    "MonitoredBackend",
    "JsonlSink",
    "RemoteSpan",
    "RingSink",
    "SlowSpanLog",
    "Span",
    "Tracer",
    "format_traceparent",
    "parse_traceparent",
    "span_record",
]
