"""Observability: metrics, time series, traces, health, and exposition.

The subsystem now has six layers:

* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket latency
  histograms behind a :class:`MetricsRegistry`, with one-pass
  registry-wide snapshots (:meth:`MetricsRegistry.collect`);
* :mod:`repro.obs.timeseries` — a bounded ring-buffer recorder deriving
  counter rates and windowed percentiles from interval samples;
* :mod:`repro.obs.health` — the threshold model rolling raw signals up
  into a liveness/readiness verdict published as ``Mds-Server-*``
  attributes;
* :mod:`repro.obs.trace` — per-request span trees with pluggable sinks;
* :mod:`repro.obs.monitor` — the registry rendered as a live,
  GRIP-queryable ``cn=monitor`` LDAP subtree (plus ``cn=health``);
* :mod:`repro.obs.expo` — Prometheus text-format exposition served from
  a tiny HTTP listener on the service's reactor.

Every instrumented component (LDAP front end, GIIS, GRIS, soft-state
registry, TCP transport) accepts an optional shared registry; see
``grid-info-server --monitor``/``--metrics-port`` for the fully wired
deployment and ``grid-info-top`` for the fleet view.
"""

from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    InstrumentSnapshot,
    MetricsRegistry,
    RegistrySnapshot,
    quantile_from_buckets,
)
from .health import HealthCheck, HealthModel, HealthReport, HealthThresholds
from .timeseries import TimeSeriesRecorder
from .monitor import (
    HEALTH_SUFFIX,
    MONITOR_SUFFIX,
    MonitorBackend,
    MonitoredBackend,
)
from .expo import (
    CONTENT_TYPE,
    MetricsHttpServer,
    parse_exposition,
    render_exposition,
)
from .trace import (
    JsonlSink,
    RemoteSpan,
    RingSink,
    SlowSpanLog,
    Span,
    Tracer,
    format_traceparent,
    parse_traceparent,
    span_record,
)

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentSnapshot",
    "MetricsRegistry",
    "RegistrySnapshot",
    "quantile_from_buckets",
    "HealthCheck",
    "HealthModel",
    "HealthReport",
    "HealthThresholds",
    "TimeSeriesRecorder",
    "HEALTH_SUFFIX",
    "MONITOR_SUFFIX",
    "MonitorBackend",
    "MonitoredBackend",
    "CONTENT_TYPE",
    "MetricsHttpServer",
    "parse_exposition",
    "render_exposition",
    "JsonlSink",
    "RemoteSpan",
    "RingSink",
    "SlowSpanLog",
    "Span",
    "Tracer",
    "format_traceparent",
    "parse_traceparent",
    "span_record",
]
