"""Lightweight per-request trace spans with pluggable sinks.

One GRIP search can fan out across layers — front-end dispatch, GRIS
provider cache, GIIS chaining, per-child sub-queries — and the MDS2
performance studies show the interesting latency usually hides in one
of those hops.  A :class:`Tracer` stitches the hops of one request into
a span tree:

* the LDAP front end opens a root span per operation and threads it to
  the backend via :attr:`RequestContext.trace <repro.ldap.backend.RequestContext>`;
* backends open children (``gris.collect``, ``giis.chain``,
  ``giis.child``) off whatever span the context carries;
* finished spans flow to pluggable sinks — keep the ring buffer for
  ``cn=monitor``-style inspection, or plug in a log writer.

Spans are deliberately tiny (slots, no stack introspection, no context
vars): when no tracer is configured the cost is one ``None`` check.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer", "RingSink"]

# A sink receives each span exactly once, when it finishes.
SpanSink = Callable[["Span"], None]


class Span:
    """One timed operation within a request."""

    __slots__ = (
        "tracer",
        "name",
        "parent",
        "trace_id",
        "span_id",
        "start",
        "end",
        "tags",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: Optional["Span"],
        trace_id: int,
        span_id: int,
        start: float,
    ):
        self.tracer = tracer
        self.name = name
        self.parent = parent
        self.trace_id = trace_id
        self.span_id = span_id
        self.start = start
        self.end: Optional[float] = None
        self.tags: Dict[str, str] = {}

    def tag(self, key: str, value: object) -> "Span":
        self.tags[key] = str(value)
        return self

    def child(self, name: str, **tags: object) -> "Span":
        """Open a sub-span of this span."""
        return self.tracer.start(name, parent=self, **tags)

    def finish(self) -> None:
        if self.end is not None:
            return  # idempotent: racing finishers record once
        self.end = self.tracer.now()
        self.tracer._finished(self)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.tracer.now()) - self.start

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1000:.2f}ms" if self.end else "open"
        return f"Span({self.name!r}, {state}, tags={self.tags!r})"


class Tracer:
    """Factory and fan-out point for spans.

    ``clock_now`` is any zero-argument time source — pass
    ``clock.now`` so simulated and wall time both work.
    """

    def __init__(
        self,
        clock_now: Callable[[], float],
        sinks: Tuple[SpanSink, ...] = (),
    ):
        self.now = clock_now
        self._sinks: List[SpanSink] = list(sinks)
        self._lock = threading.Lock()
        self._next_trace = 0
        self._next_span = 0

    def add_sink(self, sink: SpanSink) -> None:
        self._sinks.append(sink)

    def start(
        self, name: str, parent: Optional[Span] = None, **tags: object
    ) -> Span:
        with self._lock:
            self._next_span += 1
            span_id = self._next_span
            if parent is None:
                self._next_trace += 1
                trace_id = self._next_trace
            else:
                trace_id = parent.trace_id
        span = Span(self, name, parent, trace_id, span_id, self.now())
        for key, value in tags.items():
            span.tag(key, value)
        return span

    def _finished(self, span: Span) -> None:
        for sink in self._sinks:
            try:
                sink(span)
            except Exception:  # noqa: BLE001 - sinks must not break requests
                pass


class RingSink:
    """Keeps the last *capacity* finished spans for inspection."""

    def __init__(self, capacity: int = 512):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    def __call__(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self.capacity:
                del self._spans[: len(self._spans) - self.capacity]

    def spans(self, name: Optional[str] = None) -> List[Span]:
        with self._lock:
            out = list(self._spans)
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def traces(self) -> Dict[int, List[Span]]:
        """Finished spans grouped by trace id, in finish order."""
        out: Dict[int, List[Span]] = {}
        for span in self.spans():
            out.setdefault(span.trace_id, []).append(span)
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
