"""Distributed per-request trace spans with pluggable sinks.

One GRIP search can fan out across layers *and across servers* — a GIIS
chains to child GRIS servers, each of which dispatches providers — and
the MDS2 performance studies show the interesting latency usually hides
in one of those hops.  A :class:`Tracer` stitches the hops of one
request into a span tree:

* ids are globally unique: 128-bit trace ids and 64-bit span ids drawn
  from a per-tracer RNG (seedable, so simulator tests are
  deterministic), rendered as lowercase hex exactly like
  W3C trace-context;
* the LDAP front end opens a root span per operation — parented on the
  *remote caller's* span when the request carries a trace-context
  control (:data:`repro.ldap.protocol.TRACE_CONTEXT_OID`) — and threads
  it to the backend via
  :attr:`RequestContext.trace <repro.ldap.backend.RequestContext>`;
* backends open children (``gris.collect``, ``giis.chain``,
  ``giis.child``) off whatever span the context carries, and
  :class:`~repro.ldap.client.LdapClient` re-exports the context on
  outbound searches, so a four-server chain yields one tree;
* head-based sampling: the root decides (``sample_rate``), children and
  downstream servers honor the root's decision via the propagated
  ``sampled`` flag;
* finished spans flow to pluggable sinks — :class:`RingSink` for
  ``cn=monitor``-style inspection, :class:`JsonlSink` for one-line-per-
  span export that ``grid-info-trace`` merges across servers, and
  :class:`SlowSpanLog` which captures whole trees whose root outlived a
  threshold.

Spans are deliberately tiny (slots, no stack introspection, no context
vars): when no tracer is configured the cost is one ``None`` check, and
id generation is two calls on an already-seeded ``random.Random`` — no
wall-clock or OS entropy on the hot path.
"""

from __future__ import annotations

import json
import random
import threading
from typing import Callable, Dict, List, Optional, Tuple, Union

from .metrics import MetricsRegistry

__all__ = [
    "SCHEMA_VERSION",
    "Span",
    "RemoteSpan",
    "Tracer",
    "RingSink",
    "JsonlSink",
    "SlowSpanLog",
    "span_record",
    "format_traceparent",
    "parse_traceparent",
]

# Version stamped into every exported span record ("v"); bump when the
# record shape changes so multi-server merges can reject mixed dumps.
SCHEMA_VERSION = 1

_TRACE_BITS = 128
_SPAN_BITS = 64
_HEXDIGITS = set("0123456789abcdef")

# A sink receives each sampled span exactly once, when it finishes.
SpanSink = Callable[["Span"], None]


def _is_hex_id(value: object, width: int) -> bool:
    return (
        isinstance(value, str)
        and len(value) == width
        and set(value) <= _HEXDIGITS
    )


def format_traceparent(trace_id: str, span_id: str, sampled: bool) -> str:
    """W3C-traceparent-style rendering: ``00-<trace>-<span>-<flags>``."""
    return f"00-{trace_id}-{span_id}-{'01' if sampled else '00'}"


def parse_traceparent(value: str) -> Optional[Tuple[str, str, bool]]:
    """``(trace_id, span_id, sampled)``; None for anything malformed."""
    parts = value.split("-")
    if len(parts) != 4 or parts[0] != "00":
        return None
    trace_id, span_id, flags = parts[1], parts[2], parts[3]
    if not _is_hex_id(trace_id, _TRACE_BITS // 4):
        return None
    if not _is_hex_id(span_id, _SPAN_BITS // 4):
        return None
    if flags not in ("00", "01"):
        return None
    return trace_id, span_id, flags == "01"


class RemoteSpan:
    """A parent span living in another process (decoded from the wire)."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool = True):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteSpan({format_traceparent(self.trace_id, self.span_id, self.sampled)})"


class Span:
    """One timed operation within a (possibly multi-server) request."""

    __slots__ = (
        "tracer",
        "name",
        "parent",
        "trace_id",
        "span_id",
        "sampled",
        "start",
        "end",
        "tags",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: Optional[Union["Span", RemoteSpan]],
        trace_id: str,
        span_id: str,
        sampled: bool,
        start: float,
    ):
        self.tracer = tracer
        self.name = name
        self.parent = parent
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled
        self.start = start
        self.end: Optional[float] = None
        self.tags: Dict[str, str] = {}

    def tag(self, key: str, value: object) -> "Span":
        # Unsampled spans never reach a sink, so their tags are never
        # read; skipping the str() keeps sampled-out tracing close to
        # free (stringifying a DN costs more than the span itself).
        if self.sampled:
            self.tags[key] = str(value)
        return self

    def child(self, name: str, **tags: object) -> "Span":
        """Open a sub-span of this span."""
        return self.tracer.start(name, parent=self, **tags)

    def finish(self) -> None:
        if self.end is not None:
            return  # idempotent: racing finishers record once
        self.end = self.tracer.now()
        self.tracer._finished(self)

    @property
    def duration(self) -> float:
        """Elapsed seconds, clamped at zero.

        A simulator clock rewound between start and finish (time-travel
        tests, snapshot restores) would otherwise report a negative
        duration and corrupt latency math downstream; the clamp is
        counted so skew does not pass silently.
        """
        end = self.end if self.end is not None else self.tracer.now()
        elapsed = end - self.start
        if elapsed < 0:
            self.tracer._clock_skew.inc()
            return 0.0
        return elapsed

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1000:.2f}ms" if self.end else "open"
        return f"Span({self.name!r}, {state}, tags={self.tags!r})"


def span_record(span: Span, server_id: str = "") -> Dict[str, object]:
    """The one-line export shape shared by JSONL files and cn=monitor."""
    parent = span.parent
    return {
        "v": SCHEMA_VERSION,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_span_id": parent.span_id if parent is not None else None,
        "name": span.name,
        "server_id": server_id or getattr(span.tracer, "server_id", ""),
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "tags": dict(span.tags),
    }


class Tracer:
    """Factory and fan-out point for spans.

    ``clock_now`` is any zero-argument time source — pass ``clock.now``
    so simulated and wall time both work.  ``seed`` fixes the id stream
    for deterministic tests; unseeded tracers draw entropy once at
    construction.  ``sample_rate`` is the head-based sampling
    probability applied at *local* roots only — spans with a parent
    (local or remote) inherit the root's decision, so one trace is
    either exported everywhere or nowhere.
    """

    def __init__(
        self,
        clock_now: Callable[[], float],
        sinks: Tuple[SpanSink, ...] = (),
        seed: Optional[int] = None,
        sample_rate: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
        server_id: str = "",
    ):
        self.now = clock_now
        self.sample_rate = float(sample_rate)
        self.server_id = server_id
        self._sinks: List[SpanSink] = list(sinks)
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self.metrics = metrics or MetricsRegistry()
        self._started = self.metrics.counter("trace.spans.started")
        self._finished_count = self.metrics.counter("trace.spans.finished")
        self._sampled_out = self.metrics.counter("trace.spans.sampled_out")
        self._propagated = self.metrics.counter("trace.propagated")
        self._clock_skew = self.metrics.counter("trace.clock_skew")

    def add_sink(self, sink: SpanSink) -> None:
        self._sinks.append(sink)

    def _new_trace_id(self) -> str:
        return f"{self._rng.getrandbits(_TRACE_BITS):032x}"

    def _new_span_id(self) -> str:
        return f"{self._rng.getrandbits(_SPAN_BITS):016x}"

    def _sample(self) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self._rng.random() < self.sample_rate

    def start(
        self,
        name: str,
        parent: Optional[Union[Span, RemoteSpan]] = None,
        remote: Optional[Union[RemoteSpan, Tuple[str, str, bool]]] = None,
        **tags: object,
    ) -> Span:
        """Open a span.

        *parent* is a local :class:`Span`; *remote* is the decoded
        trace context of a caller in another process (a
        :class:`RemoteSpan` or a ``(trace_id, span_id, sampled)``
        tuple) — the new span joins that trace instead of minting one.
        """
        if parent is None and remote is not None:
            parent = (
                remote
                if isinstance(remote, RemoteSpan)
                else RemoteSpan(*remote)
            )
        with self._lock:
            span_id = self._new_span_id()
            if parent is None:
                trace_id = self._new_trace_id()
                sampled = self._sample()
            else:
                trace_id = parent.trace_id
                sampled = parent.sampled
        self._started.inc()
        span = Span(self, name, parent, trace_id, span_id, sampled, self.now())
        if sampled:
            for key, value in tags.items():
                span.tag(key, value)
        return span

    def propagated(self) -> None:
        """Count one trace context exported onto the wire."""
        self._propagated.inc()

    def _finished(self, span: Span) -> None:
        self._finished_count.inc()
        if not span.sampled:
            # Head-based sampling: the root's decision silences the
            # whole tree, here and on every downstream server.
            self._sampled_out.inc()
            return
        for sink in self._sinks:
            try:
                sink(span)
            except Exception:  # noqa: BLE001 - sinks must not break requests
                pass


class RingSink:
    """Keeps the last *capacity* finished spans for inspection.

    Eviction is counted (``trace.ring.dropped`` when wired to a
    registry, always on :attr:`dropped`) and occupancy is exposed as a
    live gauge (``trace.ring.size``) so a saturated ring is visible in
    ``cn=monitor`` instead of silently forgetting history.
    """

    def __init__(self, capacity: int = 512, metrics: Optional[MetricsRegistry] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._dropped = (
            metrics.counter("trace.ring.dropped") if metrics is not None else None
        )
        self._dropped_local = 0
        if metrics is not None:
            metrics.gauge_fn("trace.ring.size", lambda: len(self._spans))

    @property
    def dropped(self) -> int:
        return self._dropped_local

    def __call__(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            overflow = len(self._spans) - self.capacity
            if overflow > 0:
                del self._spans[:overflow]
                self._dropped_local += overflow
                if self._dropped is not None:
                    self._dropped.inc(overflow)

    def spans(self, name: Optional[str] = None) -> List[Span]:
        with self._lock:
            out = list(self._spans)
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def traces(self) -> Dict[str, List[Span]]:
        """Finished spans grouped by trace id, in finish order."""
        out: Dict[str, List[Span]] = {}
        for span in self.spans():
            out.setdefault(span.trace_id, []).append(span)
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


class JsonlSink:
    """Appends one JSON line per finished span to a file.

    The record shape is :func:`span_record` (schema-versioned, carries
    ``server_id``), so dumps from every server in a hierarchy can be
    concatenated and re-grouped by trace id — exactly what
    ``grid-info-trace`` does.
    """

    def __init__(self, path, server_id: str = ""):
        self.server_id = server_id
        self._lock = threading.Lock()
        if hasattr(path, "write"):
            self._file = path
            self._owns = False
            self.path = getattr(path, "name", "<stream>")
        else:
            self.path = str(path)
            self._file = open(self.path, "a", encoding="utf-8")
            self._owns = True

    def __call__(self, span: Span) -> None:
        line = json.dumps(
            span_record(span, self.server_id), sort_keys=True, default=str
        )
        with self._lock:
            if self._file is None:
                return
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns and self._file is not None:
                self._file.close()
            self._file = None


class SlowSpanLog:
    """Captures completed span *trees* whose root exceeded a threshold.

    Spans are buffered per trace as they finish; when a local root (no
    parent, or a remote parent — i.e. this server's topmost span for
    the trace) finishes, the whole buffered tree is either captured
    (root duration ≥ ``threshold_ms``) or discarded.  The last
    *capacity* slow trees are kept and published under
    ``cn=slow,cn=monitor`` by :class:`~repro.obs.monitor.MonitorBackend`.
    """

    def __init__(
        self,
        threshold_ms: float,
        capacity: int = 32,
        max_pending: int = 256,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        self.threshold_ms = float(threshold_ms)
        self.capacity = capacity
        self.max_pending = max_pending
        self._lock = threading.Lock()
        # trace_id -> finished spans seen so far (insertion-ordered so
        # the oldest pending trace is evicted first on overflow).
        self._pending: Dict[str, List[Span]] = {}
        self._slow: List[Tuple[Span, List[Span]]] = []
        self._captured = (
            metrics.counter("trace.slow.captured") if metrics is not None else None
        )

    def __call__(self, span: Span) -> None:
        with self._lock:
            bucket = self._pending.setdefault(span.trace_id, [])
            bucket.append(span)
            if not isinstance(span.parent, Span) or span.parent is None:
                # Local root finished: resolve the buffered tree.
                tree = self._pending.pop(span.trace_id)
                if span.duration * 1000.0 >= self.threshold_ms:
                    self._slow.append((span, tree))
                    if self._captured is not None:
                        self._captured.inc()
                    overflow = len(self._slow) - self.capacity
                    if overflow > 0:
                        del self._slow[:overflow]
                return
            # Roots that never finish (dropped responses) must not pin
            # their buffers forever.
            while len(self._pending) > self.max_pending:
                oldest = next(iter(self._pending))
                del self._pending[oldest]

    def slow_traces(self) -> List[Tuple[Span, List[Span]]]:
        """``(root, finished spans of that tree)``, oldest first."""
        with self._lock:
            return [(root, list(tree)) for root, tree in self._slow]

    def clear(self) -> None:
        with self._lock:
            self._pending.clear()
            self._slow.clear()
