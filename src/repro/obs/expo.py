"""Prometheus text-format (0.0.4) exposition for the metrics registry.

The ``cn=monitor`` subtree keeps the paper's promise that the service
is queryable through its own protocol; this module keeps the
operational one: any off-the-shelf scraper can watch the same numbers.
:func:`render_exposition` turns one consistent
:class:`~repro.obs.metrics.RegistrySnapshot` into the exposition text —
every sample on the page comes from the same
:meth:`~repro.obs.metrics.MetricsRegistry.collect` pass, so a scrape
never mixes instants — and :class:`MetricsHttpServer` serves it over a
tiny HTTP listener hosted on the service's own reactor loop
(``grid-info-server --metrics-port``).

Name mapping: dotted registry names become underscore families
(``ldap.requests`` → ``ldap_requests``), labels are carried through
with spec escaping, histograms emit the standard
``_bucket{le=...}``/``_sum``/``_count`` triplet from the same
cumulative buckets ``cn=monitor`` publishes.

:func:`parse_exposition` is the inverse used by ``grid-info-top``'s
HTTP mode, the benchmark scraper, and the CI smoke test — a strict
line-grammar reader that rejects malformed output instead of guessing.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .metrics import InstrumentSnapshot, MetricsRegistry, RegistrySnapshot

if TYPE_CHECKING:  # runtime import would close an obs<->net cycle
    from ..net.reactor import Reactor

__all__ = [
    "render_exposition",
    "parse_exposition",
    "MetricsHttpServer",
    "CONTENT_TYPE",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _family_name(name: str) -> str:
    out = _SANITIZE.sub("_", name)
    if not out or not _NAME_OK.match(out):
        out = "_" + out
    return out


def _label_name(name: str) -> str:
    out = _LABEL_SANITIZE.sub("_", name)
    if not out or not _LABEL_OK.match(out):
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(labels, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(_label_name(k), _escape_label(str(v))) for k, v in labels]
    if extra is not None:
        pairs.append((extra[0], _escape_label(extra[1])))
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _render_family(
    family: str, kind: str, snaps: List[InstrumentSnapshot]
) -> List[str]:
    lines = [
        f"# HELP {family} {_escape_help(snaps[0].name)}",
        f"# TYPE {family} {kind}",
    ]
    for snap in snaps:
        if kind == "histogram":
            data = snap.data
            for bound, cumulative in data["buckets"]:
                le = "+Inf" if bound == float("inf") else _fmt_value(float(bound))
                lines.append(
                    f"{family}_bucket{_label_str(snap.labels, ('le', le))}"
                    f" {_fmt_value(float(cumulative))}"
                )
            lines.append(
                f"{family}_sum{_label_str(snap.labels)}"
                f" {_fmt_value(float(data['sum']))}"
            )
            lines.append(
                f"{family}_count{_label_str(snap.labels)}"
                f" {_fmt_value(float(data['count']))}"
            )
        else:
            value = snap.data.get("value", 0.0)
            try:
                value = float(value)
            except (TypeError, ValueError):
                value = float("nan")
            lines.append(f"{family}{_label_str(snap.labels)} {_fmt_value(value)}")
    return lines


def render_exposition(snapshot: RegistrySnapshot) -> str:
    """One consistent snapshot as Prometheus text format 0.0.4."""
    families: Dict[Tuple[str, str], List[InstrumentSnapshot]] = {}
    for snap in snapshot:
        kind = "gauge" if snap.kind == "gauge" else snap.kind
        families.setdefault((_family_name(snap.name), kind), []).append(snap)
    lines: List[str] = []
    for (family, kind), snaps in sorted(families.items()):
        snaps.sort(key=lambda s: s.labels)
        lines.extend(_render_family(family, kind, snaps))
    return "\n".join(lines) + "\n" if lines else ""


def _parse_labels(text: Optional[str]) -> Dict[str, str]:
    if not text:
        return {}
    out: Dict[str, str] = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_PAIR.match(text, pos)
        if match is None:
            raise ValueError(f"bad label pair at {text[pos:]!r}")
        raw = match.group("value")
        out[match.group("key")] = (
            raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        pos = match.end()
        if pos < len(text):
            if text[pos] != ",":
                raise ValueError(f"expected ',' in labels at {text[pos:]!r}")
            pos += 1
    return out


def _parse_value(text: str) -> float:
    lowered = text.lower()
    if lowered == "nan":
        return float("nan")
    if lowered in ("+inf", "inf"):
        return float("inf")
    if lowered == "-inf":
        return float("-inf")
    return float(text)


def parse_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Strict reader for the 0.0.4 text format.

    Returns ``{family: {"type": kind, "samples": [(name, labels, value),
    ...]}}`` where *name* still carries histogram suffixes
    (``_bucket``/``_sum``/``_count``).  Raises ValueError on any line
    that does not match the grammar.
    """
    families: Dict[str, Dict[str, object]] = {}
    typed: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"bad TYPE line: {line!r}")
            typed[parts[2]] = parts[3]
            families.setdefault(
                parts[2], {"type": parts[3], "samples": []}
            )["type"] = parts[3]
            continue
        if line.startswith("# HELP "):
            if len(line.split(" ", 3)) != 4:
                raise ValueError(f"bad HELP line: {line!r}")
            continue
        if line.startswith("#"):
            continue  # plain comment
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"bad sample line: {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = _parse_value(match.group("value"))
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and typed.get(base) == "histogram":
                family = base
                break
        families.setdefault(
            family, {"type": typed.get(family, "untyped"), "samples": []}
        )["samples"].append((name, labels, value))
    return families


class MetricsHttpServer:
    """``/metrics`` (exposition) and ``/health`` (JSON rollup) over HTTP.

    Rides an existing :class:`Reactor` when the service runs the
    event-loop transport — metrics scrapes then share the loop with the
    LDAP traffic they describe — or spins up a private one for the
    thread-per-connection transport.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        host: str = "127.0.0.1",
        reactor: Optional["Reactor"] = None,
        health=None,
        clock_now=None,
    ):
        # Imported here, not at module top: obs loads before net.
        from ..net.httpd import HttpListener
        from ..net.reactor import Reactor

        self.metrics = metrics
        self.health = health
        self._clock_now = clock_now
        self._own_reactor = reactor is None
        self._reactor = (
            reactor if reactor is not None else Reactor(name="metrics-http")
        )
        self._listener = HttpListener(self._reactor, self._handle, host=host)
        self.bound_port: Optional[int] = None

    def start(self, port: int = 0) -> int:
        self.bound_port = self._listener.listen(port)
        return self.bound_port

    def _handle(self, path: str) -> Tuple[int, str, bytes]:
        if path in ("/metrics", "/"):
            now = self._clock_now() if self._clock_now is not None else 0.0
            body = render_exposition(self.metrics.collect(now))
            return 200, CONTENT_TYPE, body.encode("utf-8")
        if path == "/health" and self.health is not None:
            report = self.health.report()
            payload = report.to_json()
            payload["attrs"] = self.health.attrs()
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            status = 200 if report.ready else 503
            return status, "application/json", body
        return 404, "text/plain", b"try /metrics\n"

    def close(self) -> None:
        self._listener.close()
        if self._own_reactor:
            self._reactor.stop()
