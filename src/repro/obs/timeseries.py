"""Bounded in-process time series over a :class:`MetricsRegistry`.

The ``cn=monitor`` subtree answers "what are the counters *now*"; the
MDS performance studies ask questions about *movement* — queries per
second, latency percentiles over the last minute, cache churn while a
load wave passes.  :class:`TimeSeriesRecorder` closes that gap with no
external dependencies and fixed memory:

* on a fixed interval it takes one consistent
  :meth:`~repro.obs.metrics.MetricsRegistry.collect` snapshot and
  appends a compact row (counter/gauge scalars, histogram bucket
  vectors) to a ring buffer of bounded capacity;
* counter **rates** are derived from first/last samples inside a query
  window (monotonic deltas, clamped at zero across restarts);
* windowed histogram **percentiles** are derived from cumulative-bucket
  deltas — newest bucket vector minus the oldest in the window is the
  distribution of exactly the observations that arrived in between —
  fed through the same
  :func:`~repro.obs.metrics.quantile_from_buckets` estimator the
  ``cn=monitor`` attributes use.

Memory is ``capacity × live instruments`` small tuples; bucket bounds
are interned per series, not stored per row.  Sampling is driven by the
:class:`~repro.net.clock.Clock` abstraction, so tests run the recorder
on the deterministic simulator and production uses wall time.
"""

from __future__ import annotations

import collections
import threading
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..net.clock import Clock, TimerHandle
from .metrics import MetricsRegistry, RegistrySnapshot, quantile_from_buckets

__all__ = ["TimeSeriesRecorder"]

# Compact histogram row: (count, sum, per-bucket cumulative counts).
_HistRow = Tuple[int, float, Tuple[int, ...]]


class TimeSeriesRecorder:
    """Samples a registry on an interval into a bounded ring buffer."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        clock: Clock,
        interval: float = 1.0,
        capacity: int = 300,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if capacity < 2:
            raise ValueError("capacity must hold at least two samples")
        self.metrics = metrics
        self.clock = clock
        self.interval = interval
        self.capacity = capacity
        self._ring: Deque[Tuple[float, Dict[str, object]]] = collections.deque(
            maxlen=capacity
        )
        # Bucket upper bounds per histogram series (stable for the life
        # of an instrument): interned here so rows store only counts.
        self._bounds: Dict[str, Tuple[float, ...]] = {}
        self._lock = threading.Lock()
        self._running = False
        self._handle: Optional[TimerHandle] = None
        self.samples_taken = 0

    # -- sampling ------------------------------------------------------------

    def sample(self, snapshot: Optional[RegistrySnapshot] = None) -> None:
        """Append one row; callable directly (tests) or from the timer."""
        if snapshot is None:
            snapshot = self.metrics.collect(self.clock.now())
        row: Dict[str, object] = {}
        new_bounds: Dict[str, Tuple[float, ...]] = {}
        for snap in snapshot:
            name = snap.full_name
            if snap.kind == "histogram":
                buckets = snap.data["buckets"]
                if name not in self._bounds:
                    new_bounds[name] = tuple(b for b, _ in buckets)
                row[name] = (
                    snap.data["count"],
                    snap.data["sum"],
                    tuple(c for _, c in buckets),
                )
            else:
                try:
                    row[name] = float(snap.data["value"])
                except (TypeError, ValueError):
                    continue  # a dead callback gauge; skip the point
        with self._lock:
            self._bounds.update(new_bounds)
            self._ring.append((snapshot.taken_at, row))
            self.samples_taken += 1

    def start(self) -> None:
        """Begin interval sampling on the recorder's clock."""
        if self._running:
            return
        self._running = True
        self._handle = self.clock.call_later(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        try:
            self.sample()
        finally:
            if self._running:
                self._handle = self.clock.call_later(self.interval, self._tick)

    # -- reads ---------------------------------------------------------------

    def _rows(
        self, window: Optional[float]
    ) -> List[Tuple[float, Dict[str, object]]]:
        with self._lock:
            rows = list(self._ring)
        if not rows or window is None:
            return rows
        horizon = rows[-1][0] - window
        return [r for r in rows if r[0] >= horizon]

    def series(
        self, full_name: str, window: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """``(t, value)`` points for a counter/gauge; counts for a
        histogram series."""
        out: List[Tuple[float, float]] = []
        for t, row in self._rows(window):
            value = row.get(full_name)
            if value is None:
                continue
            if isinstance(value, tuple):
                value = float(value[0])  # histogram: the running count
            out.append((t, value))
        return out

    def rate(self, full_name: str, window: Optional[float] = None) -> float:
        """Per-second increase of a cumulative series over the window.

        Uses the first and last points inside the window.  Needs two
        samples; a decrease (instrument re-registered) clamps to 0.
        """
        points = self.series(full_name, window)
        if len(points) < 2:
            return 0.0
        (t0, v0), (t1, v1) = points[0], points[-1]
        if t1 <= t0:
            return 0.0
        return max(0.0, (v1 - v0) / (t1 - t0))

    def window_stats(
        self,
        full_name: str,
        window: Optional[float] = None,
        quantiles: Sequence[float] = (0.50, 0.95, 0.99),
    ) -> Optional[Dict[str, float]]:
        """Windowed distribution of one histogram series.

        The oldest-in-window bucket vector subtracted from the newest is
        the cumulative histogram of exactly the observations recorded in
        between; quantiles come from the shared interpolation estimator.
        Returns None when fewer than two samples cover the window or no
        observation landed inside it.
        """
        rows = self._rows(window)
        first = last = None
        for t, row in rows:
            value = row.get(full_name)
            if isinstance(value, tuple):
                if first is None:
                    first = (t, value)
                last = (t, value)
        if first is None or last is None or first is last:
            return None
        (t0, (count0, sum0, buckets0)) = first
        (t1, (count1, sum1, buckets1)) = last
        count = count1 - count0
        if count <= 0 or len(buckets0) != len(buckets1):
            return None
        with self._lock:
            bounds = self._bounds.get(full_name)
        if bounds is None:
            return None
        cumulative = [
            (bound, max(0, b1 - b0))
            for bound, b0, b1 in zip(bounds, buckets0, buckets1)
        ]
        out: Dict[str, float] = {
            "count": float(count),
            "rate": count / (t1 - t0) if t1 > t0 else 0.0,
            "mean": (sum1 - sum0) / count,
        }
        for q in quantiles:
            out[f"p{int(q * 100)}"] = quantile_from_buckets(cumulative, q)
        return out

    def names(self) -> List[str]:
        """Every series name seen in the newest sample."""
        with self._lock:
            if not self._ring:
                return []
            return sorted(self._ring[-1][1])

    def export(
        self, names: Optional[Sequence[str]] = None, window: Optional[float] = None
    ) -> Dict[str, object]:
        """JSON-able dump for benchmark reports: raw points per series."""
        selected = list(names) if names is not None else self.names()
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "samples": self.samples_taken,
            "series": {name: self.series(name, window) for name in selected},
        }
