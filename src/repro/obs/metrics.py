"""Counters, gauges, and latency histograms behind one registry.

MDS-2's pitch is that Grid services are discovered *and monitored*
through one GRIP-queryable surface (§2, §6) — which obliges the
information service to measure itself.  The two MDS2 performance
studies (Zhang & Schopf; Zhang, Freschl & Schopf) characterize exactly
the per-operation throughput/latency numbers a deployment needs:
queries per second, response latency distributions, cache hit rates,
and soft-state churn.  This module is the substrate those numbers live
on; :mod:`repro.obs.monitor` renders it as a ``cn=monitor`` subtree so
the numbers are queryable with plain GRIP.

Design constraints:

* **Hot-path cheap.**  ``Counter.inc`` is one lock acquire and one add;
  instrument sites hold direct object references, never re-resolving
  names per operation.
* **Labels.**  A metric name plus a sorted label tuple identifies one
  instrument (``ldap.requests{op=search}``), mirroring the usual
  time-series data model.
* **Fixed-bucket histograms.**  Latency distributions use cumulative
  fixed buckets so snapshots are mergeable and quantiles are
  approximable without storing samples.
* **Live gauges.**  ``gauge_fn`` registers a zero-argument callable
  evaluated at snapshot time, for values that already live elsewhere
  (active registrations, open subscriptions) — no write-path coupling.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
]

# Seconds.  Spans sub-millisecond in-process dispatch through multi-second
# chained fan-outs with timeouts (GIIS child_timeout defaults to 5s).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

Labels = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Dict[str, object]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Common identity plumbing for one named+labeled instrument."""

    __slots__ = ("name", "labels", "_lock")

    kind = "instrument"

    def __init__(self, name: str, labels: Labels):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def full_name(self) -> str:
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{inner}}}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.full_name!r})"


class Counter(_Instrument):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()):
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self._value}


class Gauge(_Instrument):
    """A value that goes up and down; optionally callback-backed."""

    __slots__ = ("_value", "_fn")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        fn: Optional[Callable[[], float]] = None,
    ):
        super().__init__(name, labels)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:  # noqa: BLE001 - a dead callback must not kill reads
                return float("nan")
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}


class Histogram(_Instrument):
    """Fixed-bucket cumulative histogram (for latency distributions)."""

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_min", "_max")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ):
        super().__init__(name, labels)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self._counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket bounds (upper-bound biased)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self._count == 0:
            return 0.0
        target = q * self._count
        for bound, cum in self.cumulative():
            if cum >= target:
                if bound == float("inf"):
                    return self._max if self._max is not None else self.buckets[-1]
                return bound
        return self._max if self._max is not None else self.buckets[-1]

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
            "buckets": self.cumulative(),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _TimerContext:
    """``with registry.timer(histogram):`` — observes elapsed seconds."""

    __slots__ = ("_histogram", "_clock", "_start")

    def __init__(self, histogram: Histogram, clock_now: Callable[[], float]):
        self._histogram = histogram
        self._clock = clock_now
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = self._clock()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(self._clock() - self._start)


class MetricsRegistry:
    """Get-or-create home for every instrument a process exports.

    Each component (server front end, GIIS, GRIS, registry, transport)
    accepts an optional registry; passing one shared instance — as
    ``grid-info-server --monitor`` does — produces a single process-wide
    surface that :class:`~repro.obs.monitor.MonitorBackend` serves under
    ``cn=monitor``.
    """

    def __init__(self, namespace: str = ""):
        self.namespace = namespace
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, Labels], _Instrument] = {}

    def _qualify(self, name: str) -> str:
        return f"{self.namespace}.{name}" if self.namespace else name

    def _get_or_create(self, cls, name: str, labels, factory):
        key = (self._qualify(name), _labels_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(key[0], key[1])
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {key[0]!r} already registered as "
                    f"{instrument.kind}, not {cls.kind}"
                )
        return instrument

    def counter(
        self, name: str, labels: Optional[Dict[str, object]] = None
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, Counter)

    def gauge(self, name: str, labels: Optional[Dict[str, object]] = None) -> Gauge:
        return self._get_or_create(Gauge, name, labels, Gauge)

    def gauge_fn(
        self,
        name: str,
        fn: Callable[[], float],
        labels: Optional[Dict[str, object]] = None,
    ) -> Gauge:
        """A gauge read live from *fn* at snapshot/serve time."""
        gauge = self._get_or_create(
            Gauge, name, labels, lambda n, l: Gauge(n, l, fn=fn)
        )
        gauge._fn = fn  # rebinding is idempotent and allows re-wiring
        return gauge

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, object]] = None,
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, lambda n, l: Histogram(n, l, buckets=buckets)
        )

    def timer(
        self,
        name: str,
        clock_now: Callable[[], float],
        labels: Optional[Dict[str, object]] = None,
    ) -> _TimerContext:
        return _TimerContext(self.histogram(name, labels), clock_now)

    def unregister(
        self, name: str, labels: Optional[Dict[str, object]] = None
    ) -> bool:
        """Remove one instrument; True if it existed.

        Needed when labels track dynamic objects (per-provider gauges):
        removing the object must remove its instrument, or snapshots and
        ``cn=monitor`` keep serving the ghost forever.
        """
        key = (self._qualify(name), _labels_key(labels))
        with self._lock:
            return self._instruments.pop(key, None) is not None

    # -- read side -----------------------------------------------------------

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def get(self, name: str, labels: Optional[Dict[str, object]] = None):
        """Lookup without creating; None when absent."""
        key = (self._qualify(name), _labels_key(labels))
        with self._lock:
            return self._instruments.get(key)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """One JSON-able dict of every instrument, keyed by full name.

        This is the API the benchmarks consume; the ``cn=monitor``
        subtree is the same data rendered as LDAP entries.
        """
        out: Dict[str, Dict[str, object]] = {}
        for instrument in self.instruments():
            out[instrument.full_name] = instrument.snapshot()
        return out
