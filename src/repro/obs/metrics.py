"""Counters, gauges, and latency histograms behind one registry.

MDS-2's pitch is that Grid services are discovered *and monitored*
through one GRIP-queryable surface (§2, §6) — which obliges the
information service to measure itself.  The two MDS2 performance
studies (Zhang & Schopf; Zhang, Freschl & Schopf) characterize exactly
the per-operation throughput/latency numbers a deployment needs:
queries per second, response latency distributions, cache hit rates,
and soft-state churn.  This module is the substrate those numbers live
on; :mod:`repro.obs.monitor` renders it as a ``cn=monitor`` subtree so
the numbers are queryable with plain GRIP.

Design constraints:

* **Hot-path cheap.**  ``Counter.inc`` is one lock acquire and one add;
  instrument sites hold direct object references, never re-resolving
  names per operation.
* **Labels.**  A metric name plus a sorted label tuple identifies one
  instrument (``ldap.requests{op=search}``), mirroring the usual
  time-series data model.
* **Fixed-bucket histograms.**  Latency distributions use cumulative
  fixed buckets so snapshots are mergeable and quantiles are
  approximable without storing samples.
* **Live gauges.**  ``gauge_fn`` registers a zero-argument callable
  evaluated at snapshot time, for values that already live elsewhere
  (active registrations, open subscriptions) — no write-path coupling.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentSnapshot",
    "MetricsRegistry",
    "RegistrySnapshot",
    "LATENCY_BUCKETS",
    "quantile_from_buckets",
]

# Seconds.  Spans sub-millisecond in-process dispatch through multi-second
# chained fan-outs with timeouts (GIIS child_timeout defaults to 5s).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

Labels = Tuple[Tuple[str, str], ...]


def quantile_from_buckets(
    cumulative: Sequence[Tuple[float, int]],
    q: float,
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> float:
    """Estimate a quantile from ``(upper_bound, cumulative_count)`` pairs.

    Linear interpolation within the containing bucket (the
    ``histogram_quantile`` estimator): the observations in a bucket are
    assumed uniformly spread between its lower and upper edge.  The
    overflow (+Inf) bucket has no finite upper edge, so it reports the
    observed *maximum* when known, else the last finite bound.  When the
    caller tracks observed ``minimum``/``maximum`` (a live
    :class:`Histogram` does; windowed bucket deltas do not) the estimate
    is clamped to that envelope.

    This one function backs the ``cn=monitor`` histogram attributes, the
    Prometheus exposition, and the time-series recorder's windowed
    percentiles, so every surface reports the same number for the same
    distribution.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    if not cumulative:
        return 0.0
    total = cumulative[-1][1]
    if total == 0:
        return 0.0
    rank = q * total
    prev_bound = 0.0
    prev_cum = 0
    estimate: Optional[float] = None
    for bound, cum in cumulative:
        if cum >= rank:
            if bound == float("inf"):
                estimate = maximum if maximum is not None else prev_bound
            elif cum == prev_cum:
                estimate = prev_bound  # rank <= 0: the lower edge
            else:
                fraction = (rank - prev_cum) / (cum - prev_cum)
                estimate = prev_bound + (bound - prev_bound) * fraction
            break
        prev_bound, prev_cum = bound, cum
    if estimate is None:  # malformed cumulative list; be defensive
        estimate = maximum if maximum is not None else prev_bound
    if maximum is not None and estimate > maximum:
        estimate = maximum
    if minimum is not None and estimate < minimum:
        estimate = minimum
    return estimate


class InstrumentSnapshot:
    """One instrument's state as captured by :meth:`MetricsRegistry.collect`.

    Immutable value object: ``data`` has the same shape the instrument's
    own ``snapshot()`` returns, but was read inside one registry-wide
    pass, so consumers rendering many instruments (``cn=monitor``, the
    Prometheus exposition, the time-series recorder) see one instant
    instead of one instant per instrument.
    """

    __slots__ = ("name", "labels", "kind", "data")

    def __init__(self, name: str, labels: Labels, kind: str, data: Dict[str, object]):
        self.name = name
        self.labels = labels
        self.kind = kind
        self.data = data

    @property
    def full_name(self) -> str:
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{inner}}}"

    @property
    def value(self):
        """Scalar value for counters/gauges; None for histograms."""
        return self.data.get("value")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstrumentSnapshot({self.full_name!r}, {self.kind})"


class RegistrySnapshot:
    """Every instrument, captured in one registry-wide pass."""

    __slots__ = ("taken_at", "_instruments", "_index")

    def __init__(self, taken_at: float, instruments: List[InstrumentSnapshot]):
        self.taken_at = taken_at
        self._instruments = instruments
        self._index = {(s.name, s.labels): s for s in instruments}

    def __iter__(self):
        return iter(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def get(
        self, name: str, labels: Optional[Dict[str, object]] = None
    ) -> Optional[InstrumentSnapshot]:
        return self._index.get((name, _labels_key(labels)))

    def value(
        self, name: str, labels: Optional[Dict[str, object]] = None, default=None
    ):
        snap = self.get(name, labels)
        return snap.value if snap is not None else default

    def matching(self, predicate) -> List[InstrumentSnapshot]:
        """All snapshots whose (name, labels) satisfy *predicate*."""
        return [s for s in self._instruments if predicate(s)]


def _labels_key(labels: Optional[Dict[str, object]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Common identity plumbing for one named+labeled instrument."""

    __slots__ = ("name", "labels", "_lock")

    kind = "instrument"

    def __init__(self, name: str, labels: Labels):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def full_name(self) -> str:
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{inner}}}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.full_name!r})"


class Counter(_Instrument):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()):
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"type": self.kind, "value": self._value}


class Gauge(_Instrument):
    """A value that goes up and down; optionally callback-backed."""

    __slots__ = ("_value", "_fn")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        fn: Optional[Callable[[], float]] = None,
    ):
        super().__init__(name, labels)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:  # noqa: BLE001 - a dead callback must not kill reads
                return float("nan")
        return self._value

    def snapshot(self) -> Dict[str, object]:
        if self._fn is not None:
            # Callback gauges read a live value owned elsewhere; they
            # take that component's locks, never this one.
            return {"type": self.kind, "value": self.value}
        with self._lock:
            return {"type": self.kind, "value": self._value}


class Histogram(_Instrument):
    """Fixed-bucket cumulative histogram (for latency distributions)."""

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_min", "_max")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ):
        super().__init__(name, labels)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def _cumulative_from(self, counts: Sequence[int]) -> List[Tuple[float, int]]:
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        return self._cumulative_from(counts)

    def quantile(self, q: float) -> float:
        """Estimated quantile: linear interpolation over the buckets."""
        with self._lock:
            counts = list(self._counts)
            mn, mx = self._min, self._max
        return quantile_from_buckets(
            self._cumulative_from(counts), q, minimum=mn, maximum=mx
        )

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            mn, mx = self._min, self._max
        cumulative = self._cumulative_from(counts)
        p50, p95, p99 = (
            quantile_from_buckets(cumulative, q, minimum=mn, maximum=mx)
            for q in (0.50, 0.95, 0.99)
        )
        return {
            "type": self.kind,
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": mn,
            "max": mx,
            "buckets": cumulative,
            "p50": p50,
            "p95": p95,
            "p99": p99,
        }


class _TimerContext:
    """``with registry.timer(histogram):`` — observes elapsed seconds."""

    __slots__ = ("_histogram", "_clock", "_start")

    def __init__(self, histogram: Histogram, clock_now: Callable[[], float]):
        self._histogram = histogram
        self._clock = clock_now
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = self._clock()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(self._clock() - self._start)


class MetricsRegistry:
    """Get-or-create home for every instrument a process exports.

    Each component (server front end, GIIS, GRIS, registry, transport)
    accepts an optional registry; passing one shared instance — as
    ``grid-info-server --monitor`` does — produces a single process-wide
    surface that :class:`~repro.obs.monitor.MonitorBackend` serves under
    ``cn=monitor``.
    """

    def __init__(self, namespace: str = ""):
        self.namespace = namespace
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, Labels], _Instrument] = {}

    def _qualify(self, name: str) -> str:
        return f"{self.namespace}.{name}" if self.namespace else name

    def _get_or_create(self, cls, name: str, labels, factory):
        key = (self._qualify(name), _labels_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(key[0], key[1])
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {key[0]!r} already registered as "
                    f"{instrument.kind}, not {cls.kind}"
                )
        return instrument

    def counter(
        self, name: str, labels: Optional[Dict[str, object]] = None
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, Counter)

    def gauge(self, name: str, labels: Optional[Dict[str, object]] = None) -> Gauge:
        return self._get_or_create(Gauge, name, labels, Gauge)

    def gauge_fn(
        self,
        name: str,
        fn: Callable[[], float],
        labels: Optional[Dict[str, object]] = None,
    ) -> Gauge:
        """A gauge read live from *fn* at snapshot/serve time."""
        gauge = self._get_or_create(
            Gauge, name, labels, lambda n, l: Gauge(n, l, fn=fn)
        )
        gauge._fn = fn  # rebinding is idempotent and allows re-wiring
        return gauge

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, object]] = None,
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, lambda n, l: Histogram(n, l, buckets=buckets)
        )

    def timer(
        self,
        name: str,
        clock_now: Callable[[], float],
        labels: Optional[Dict[str, object]] = None,
    ) -> _TimerContext:
        return _TimerContext(self.histogram(name, labels), clock_now)

    def unregister(
        self, name: str, labels: Optional[Dict[str, object]] = None
    ) -> bool:
        """Remove one instrument; True if it existed.

        Needed when labels track dynamic objects (per-provider gauges):
        removing the object must remove its instrument, or snapshots and
        ``cn=monitor`` keep serving the ghost forever.
        """
        key = (self._qualify(name), _labels_key(labels))
        with self._lock:
            return self._instruments.pop(key, None) is not None

    # -- read side -----------------------------------------------------------

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def get(self, name: str, labels: Optional[Dict[str, object]] = None):
        """Lookup without creating; None when absent."""
        key = (self._qualify(name), _labels_key(labels))
        with self._lock:
            return self._instruments.get(key)

    def collect(self, now: float = 0.0) -> RegistrySnapshot:
        """One registry-wide snapshot in a single pass under the registry
        lock.

        Every consumer that renders *many* instruments at once
        (``cn=monitor`` entries, Prometheus exposition, the time-series
        recorder) reads from one of these instead of re-reading live
        instruments one at a time: the raw values are all captured in
        one tight loop before any rendering work, so a burst of traffic
        between two reads can no longer produce cross-instrument
        impossibilities like ``cache.hits > cache.lookups``.

        Callback gauges are the exception: their callables take locks
        owned by other components, so they are evaluated immediately
        *after* the registry lock is released (holding it across a
        foreign callback invites lock-order inversions).  They are live
        reads of external state by design.
        """
        deferred: List[Tuple[int, _Instrument]] = []
        snaps: List[Optional[InstrumentSnapshot]] = []
        with self._lock:
            for instrument in self._instruments.values():
                if isinstance(instrument, Gauge) and instrument._fn is not None:
                    deferred.append((len(snaps), instrument))
                    snaps.append(None)
                else:
                    snaps.append(
                        InstrumentSnapshot(
                            instrument.name,
                            instrument.labels,
                            instrument.kind,
                            instrument.snapshot(),
                        )
                    )
        for index, instrument in deferred:
            snaps[index] = InstrumentSnapshot(
                instrument.name,
                instrument.labels,
                instrument.kind,
                instrument.snapshot(),
            )
        return RegistrySnapshot(now, snaps)  # type: ignore[arg-type]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """One JSON-able dict of every instrument, keyed by full name.

        This is the API the benchmarks consume; the ``cn=monitor``
        subtree is the same data rendered as LDAP entries.  Backed by
        :meth:`collect`, so it shares the single-pass consistency.
        """
        return {snap.full_name: snap.data for snap in self.collect()}
