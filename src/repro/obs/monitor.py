"""The ``cn=monitor`` subtree: a service's own health, served over GRIP.

MDS-2's central idea is one uniform query surface for *all* Grid
information — so the information service dogfoods GRIP to publish its
own operational state, exactly as OpenLDAP's ``back-monitor`` does for
slapd.  :class:`MonitorBackend` renders a live
:class:`~repro.obs.metrics.MetricsRegistry` as LDAP entries under
``cn=monitor``; :class:`MonitoredBackend` composes it with any data
backend (GRIS or GIIS) so one server answers both::

    # what resources exist?
    client.search("o=Grid", Scope.SUBTREE, "(objectclass=computer)")
    # and how is the server itself doing?
    client.search("cn=monitor", Scope.SUBTREE, "(mdsmetrictype=histogram)")

Entries regenerate from the registry on every search, so repeated
queries observe counters moving — the monitoring semantics of §6
applied to the service itself.  Standard filters, scopes, attribute
selection, and access control all apply: the front end treats monitor
entries like any others.

Naming: each instrument becomes ``mdsmetricname=<id>, cn=monitor``
where ``<id>`` is the metric name plus ``:key:value`` per label —
colon-separated because ``:`` needs no DN escaping, keeping the DNs
copy-pasteable into any LDAP client.  Labels are *also* exposed as
plain attributes, so ``(&(objectclass=mdsmetric)(op=search))`` works.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional

from ..ldap.backend import (
    Backend,
    ChangeCallback,
    ChangeType,
    RequestContext,
    SearchHandle,
    SearchOutcome,
    Subscription,
    _in_scope,
)
from ..ldap.executor import CancelToken
from ..ldap.dit import Scope
from ..ldap.filter import compile_filter
from ..ldap.dn import DN, RDN
from ..ldap.entry import Entry
from ..ldap.protocol import (
    AddRequest,
    LdapResult,
    ModifyRequest,
    ResultCode,
    SearchRequest,
)
from .metrics import InstrumentSnapshot, MetricsRegistry
from .trace import SlowSpanLog, span_record

__all__ = [
    "MONITOR_SUFFIX",
    "SLOW_SUFFIX",
    "HEALTH_SUFFIX",
    "MonitorBackend",
    "MonitoredBackend",
]

MONITOR_SUFFIX = DN.parse("cn=monitor")
SLOW_SUFFIX = DN.parse("cn=slow,cn=monitor")
HEALTH_SUFFIX = DN.parse("cn=health,cn=monitor")


def _fmt(value: object) -> str:
    """Render numbers without noise: integral floats lose the ``.0``."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.9g}"
    return str(value)


def _dn_id(instrument) -> str:
    parts = [instrument.name]
    for key, value in instrument.labels:
        parts.append(key)
        parts.append(value)
    return ":".join(parts)


class MonitorBackend(Backend):
    """Serves a metrics registry as the ``cn=monitor`` subtree."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        server_name: str = "",
        suffix: DN | str = MONITOR_SUFFIX,
        slow_log: Optional[SlowSpanLog] = None,
        health=None,
    ):
        self.metrics = metrics
        self.server_name = server_name
        self.suffix = DN.of(suffix)
        self.slow_log = slow_log
        # Optional HealthModel: adds a cn=health entry carrying the
        # Mds-Server-* rollup, so one subtree search answers both "what
        # are the numbers" and "is this server OK".
        self.health = health

    # -- entry generation ----------------------------------------------------

    def _root_entry(self, metric_count: int) -> Entry:
        entry = Entry(
            self.suffix,
            objectclass=["top", "mdsmonitor"],
            description="live operational metrics (GRIP-queryable)",
        )
        entry.put(self.suffix.rdn.attr, self.suffix.rdn.value)
        entry.put("mdsmetriccount", metric_count)
        if self.server_name:
            entry.put("servername", self.server_name)
        return entry

    def _metric_entry(self, snap: InstrumentSnapshot) -> Entry:
        dn = self.suffix.child(RDN.single("mdsmetricname", _dn_id(snap)))
        entry = Entry(
            dn,
            objectclass=["top", "mdsmetric"],
            mdsmetricname=_dn_id(snap),
            mdsmetric=snap.name,
            mdsmetrictype=snap.kind,
        )
        for key, value in snap.labels:
            entry.put(key, value)
        data = snap.data
        if snap.kind in ("counter", "gauge"):
            entry.put("mdsvalue", _fmt(data["value"]))
        elif snap.kind == "histogram":
            entry.put("mdscount", _fmt(data["count"]))
            entry.put("mdssum", _fmt(float(data["sum"])))
            entry.put("mdsmean", _fmt(float(data["mean"])))
            if data["min"] is not None:
                entry.put("mdsmin", _fmt(float(data["min"])))
                entry.put("mdsmax", _fmt(float(data["max"])))
            for q in ("p50", "p95", "p99"):
                entry.put(f"mds{q}", _fmt(float(data[q])))
            for bound, cumulative in data["buckets"]:
                entry.put(f"mdsbucket-{_fmt(bound)}", cumulative)
        return entry

    def _health_entry(self) -> Entry:
        dn = self.suffix.child(RDN.single("cn", "health"))
        entry = Entry(
            dn,
            objectclass=["top", "mdsserverstatus"],
            cn="health",
        )
        for attr, value in self.health.attrs().items():
            entry.put(attr, value)
        return entry

    # -- slow-query subtree --------------------------------------------------

    @property
    def slow_suffix(self) -> DN:
        return self.suffix.child(RDN.single("cn", "slow"))

    def _slow_entries(self) -> List[Entry]:
        """``cn=slow``: one entry per captured slow span tree."""
        traces = self.slow_log.slow_traces() if self.slow_log is not None else []
        root_entry = Entry(
            self.slow_suffix,
            objectclass=["top", "mdsslowlog"],
            cn="slow",
            description="span trees whose root exceeded the slow-query threshold",
        )
        root_entry.put("mdsslowthresholdms", _fmt(
            self.slow_log.threshold_ms if self.slow_log is not None else 0.0
        ))
        root_entry.put("mdsslowcount", len(traces))
        out = [root_entry]
        for root, tree in traces:
            dn = self.slow_suffix.child(RDN.single("mdstraceid", root.trace_id))
            entry = Entry(
                dn,
                objectclass=["top", "mdsslowtrace"],
                mdstraceid=root.trace_id,
                mdsrootname=root.name,
            )
            entry.put("mdsrootms", _fmt(root.duration * 1000.0))
            entry.put("mdsspancount", len(tree))
            # One JSON span record per value: grid-info-trace consumes
            # these exactly like JSONL lines read from disk.
            entry.put(
                "mdsspan",
                [
                    json.dumps(span_record(span), sort_keys=True, default=str)
                    for span in tree
                ],
            )
            out.append(entry)
        return out

    def entries(self) -> List[Entry]:
        """The full monitor view, regenerated from one registry snapshot.

        A single :meth:`~repro.obs.metrics.MetricsRegistry.collect` pass
        captures every instrument before any entry is rendered; reading
        instruments one at a time interleaved with entry construction
        used to let a traffic burst land between two reads, so a single
        ``cn=monitor`` search could report ``hits > lookups``.
        """
        snapshot = self.metrics.collect()
        out = [self._root_entry(len(snapshot))]
        for snap in sorted(snapshot, key=lambda s: s.full_name):
            out.append(self._metric_entry(snap))
        if self.health is not None:
            out.append(self._health_entry())
        if self.slow_log is not None:
            out.extend(self._slow_entries())
        return out

    # -- Backend interface ---------------------------------------------------

    def naming_contexts(self) -> List[str]:
        return [str(self.suffix)]

    def _search_impl(self, req: SearchRequest, ctx: RequestContext) -> SearchOutcome:
        try:
            base = req.base_dn()
        except Exception:
            return SearchOutcome(
                result=LdapResult(ResultCode.PROTOCOL_ERROR, message="bad base DN")
            )
        if not (base.is_within(self.suffix) or self.suffix.is_within(base)):
            return SearchOutcome(
                result=LdapResult(
                    ResultCode.NO_SUCH_OBJECT, matched_dn=str(self.suffix)
                )
            )
        match = compile_filter(req.filter)
        entries = [
            e
            for e in self.entries()
            if _in_scope(e.dn, base, req.scope) and match(e)
        ]
        if req.scope == Scope.BASE and not entries:
            return SearchOutcome(
                result=LdapResult(ResultCode.NO_SUCH_OBJECT, matched_dn=req.base)
            )
        return SearchOutcome(entries=entries)


class MonitoredBackend(Backend):
    """Any backend, plus a ``cn=monitor`` naming context alongside it.

    Reads under ``cn=monitor`` go to the monitor; everything else is
    delegated untouched (including writes, subscriptions, and async
    chaining).  A subtree search from the root sees both worlds merged.
    """

    def __init__(self, inner: Backend, monitor: MonitorBackend):
        self.inner = inner
        self.monitor = monitor

    def naming_contexts(self) -> List[str]:
        return list(self.inner.naming_contexts()) + self.monitor.naming_contexts()

    def _route(self, req: SearchRequest) -> str:
        try:
            base = req.base_dn()
        except Exception:
            return "inner"  # let the inner backend report the protocol error
        if base.is_within(self.monitor.suffix):
            return "monitor"
        if self.monitor.suffix.is_within(base) and req.scope != Scope.BASE:
            return "both"
        return "inner"

    def search(self, req: SearchRequest, ctx: RequestContext) -> SearchOutcome:
        """Synchronous shim: monitor reads complete inline; data reads
        delegate to the inner backend's own shim."""
        route = self._route(req)
        if route == "monitor":
            return self.monitor.search(req, ctx)
        outcome = self.inner.search(req, ctx)
        if route == "both":
            outcome = self._merged(req, ctx, outcome)
        return outcome

    def submit_search(
        self,
        req: SearchRequest,
        ctx: RequestContext,
        done: Callable[[SearchOutcome], None],
    ) -> SearchHandle:
        route = self._route(req)
        if route == "monitor":
            token = ctx.token if ctx.token is not None else CancelToken()
            done(self.monitor.search(req, ctx))
            return SearchHandle(token)
        if route == "both":
            return self.inner.submit_search(
                req, ctx, lambda outcome: done(self._merged(req, ctx, outcome))
            )
        return self.inner.submit_search(req, ctx, done)

    def submit_search_stream(
        self,
        req: SearchRequest,
        ctx: RequestContext,
        on_entry: Callable[[object], None],
        on_done: Callable[[SearchOutcome], None],
    ) -> SearchHandle:
        """Streaming pass-through.

        Data reads keep the inner backend's per-entry delivery — and
        with it the GIIS relay lane — untouched.  Monitor entries are
        generated inline: alone for ``cn=monitor`` reads, appended after
        the inner stream concludes for root subtree reads.
        """
        route = self._route(req)
        if route == "inner":
            return self.inner.submit_search_stream(req, ctx, on_entry, on_done)
        token = ctx.token if ctx.token is not None else CancelToken()
        if route == "monitor":
            outcome = self.monitor.search(req, ctx)
            for entry in outcome.entries:
                if token.cancelled:
                    return SearchHandle(token)
                on_entry(entry)
            if not token.cancelled:
                on_done(
                    SearchOutcome(
                        entries=[],
                        referrals=outcome.referrals,
                        result=outcome.result,
                    )
                )
            return SearchHandle(token)

        def merged_done(outcome: SearchOutcome) -> None:
            mon = self.monitor.search(req, ctx)
            if not mon.result.ok:
                on_done(outcome)
                return
            for entry in mon.entries:
                if token.cancelled:
                    return
                on_entry(entry)
            on_done(
                SearchOutcome(
                    entries=[],
                    referrals=list(outcome.referrals) + list(mon.referrals),
                    # Mirrors _merged: the monitor subtree still answers
                    # when the inner base had nothing (§2.2).
                    result=outcome.result if outcome.result.ok else mon.result,
                )
            )

        return self.inner.submit_search_stream(req, ctx, on_entry, merged_done)

    def _merged(
        self, req: SearchRequest, ctx: RequestContext, inner: SearchOutcome
    ) -> SearchOutcome:
        mon = self.monitor.search(req, ctx)
        if not mon.result.ok:
            return inner
        if not inner.result.ok:
            # The inner backend had nothing under this base; the monitor
            # subtree still answers (partial results, §2.2).
            return mon
        return SearchOutcome(
            entries=list(inner.entries) + list(mon.entries),
            referrals=list(inner.referrals) + list(mon.referrals),
            result=inner.result,
        )

    # -- pass-through --------------------------------------------------------

    def _targets_monitor(self, dn: str) -> bool:
        try:
            return DN.parse(dn).is_within(self.monitor.suffix)
        except Exception:
            return False

    def add(self, req: AddRequest, ctx: RequestContext) -> LdapResult:
        if self._targets_monitor(req.dn):
            return LdapResult(
                ResultCode.UNWILLING_TO_PERFORM, message="cn=monitor is read-only"
            )
        return self.inner.add(req, ctx)

    def modify(self, req: ModifyRequest, ctx: RequestContext) -> LdapResult:
        if self._targets_monitor(req.dn):
            return LdapResult(
                ResultCode.UNWILLING_TO_PERFORM, message="cn=monitor is read-only"
            )
        return self.inner.modify(req, ctx)

    def delete(self, dn: str, ctx: RequestContext) -> LdapResult:
        if self._targets_monitor(dn):
            return LdapResult(
                ResultCode.UNWILLING_TO_PERFORM, message="cn=monitor is read-only"
            )
        return self.inner.delete(dn, ctx)

    def subscribe(
        self,
        req: SearchRequest,
        ctx: RequestContext,
        push: ChangeCallback,
        change_types: int = ChangeType.ALL,
    ) -> Optional[Subscription]:
        if self._route(req) == "monitor":
            return None  # metrics have no change feed; poll instead
        return self.inner.subscribe(req, ctx, push, change_types)
