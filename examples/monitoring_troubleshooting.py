#!/usr/bin/env python3
"""Monitoring + troubleshooting scenario (paper §1, §6).

Subscribes to a fleet of machines with GRIP push mode (persistent
search), feeds the streams into the monitoring service, and runs the
troubleshooter's heuristics while the simulation injects two anomalies:
one machine develops sustained overload, and one crashes mid-run (its
GRRP heartbeats stop, the failure detector suspects it, and after a
grace period the troubleshooter reports an extended failure).

    python examples/monitoring_troubleshooting.py
"""

from repro.grip.failure import FailureDetector
from repro.services import MonitoringService, Troubleshooter, Watch
from repro.testbed import GridTestbed


def main() -> None:
    tb = GridTestbed(seed=99)
    giis = tb.add_giis("vo-giis", "o=Grid", vo_name="OpsVO")
    fleet = {}
    for host in ("web1", "web2", "db1", "batch1"):
        gris = tb.standard_gris(host, f"hn={host}, o=Grid", load_mean=0.5)
        tb.register(gris, giis, interval=10.0, ttl=30.0, name=host)
        fleet[host] = gris
    tb.run(1.0)

    # -- monitoring: push-mode subscriptions on every machine ---------------
    monitor = MonitoringService(
        tb.sim,
        on_alarm=lambda a: print(
            f"[{a.when:7.1f}s] ALARM  {a.kind}: {a.dn} {a.attr}={a.value:.2f}"
        ),
    )
    monitor.add_watch(Watch(attr="load5", threshold=4.0))
    for host, gris in fleet.items():
        monitor.attach(
            tb.client("noc", gris),
            f"hn={host}, o=Grid",
            "(objectclass=loadaverage)",
        )

    # -- failure detection from the GRRP streams the GIIS already sees ------
    detector = FailureDetector(tb.sim, timeout=25.0, check_interval=5.0)
    giis.backend.registry.on_register = (
        lambda reg, prev=giis.backend.registry.on_register: (
            prev and prev(reg),
            detector.heartbeat(reg.service_url),
        )
    )
    # heartbeats via refresh events too
    original_apply = giis.backend.registry.apply

    def counting_apply(message, identity=None):
        changed = original_apply(message, identity)
        if changed:
            detector.heartbeat(message.service_url)
        return changed

    giis.backend.registry.apply = counting_apply
    detector.start()

    troubleshooter = Troubleshooter(
        tb.sim,
        monitor,
        detector=detector,
        overload_threshold=4.0,
        overload_run=3,
        failure_grace=40.0,
        on_diagnosis=lambda d: print(
            f"[{d.when:7.1f}s] DIAGNOSIS {d.kind}: {d.subject} ({d.detail})"
        ),
    )

    def patrol():
        troubleshooter.poll()
        tb.sim.call_later(15.0, patrol)

    tb.sim.call_later(15.0, patrol)

    # -- the incident timeline ------------------------------------------------
    print("t=0      fleet healthy; watching load5 >= 4.0 and dead services\n")
    tb.run(60.0)

    print(f"[{tb.sim.now():7.1f}s] EVENT  db1's load regime jumps to 8.0")
    fleet["db1"].sensor.set_mean(8.0)
    tb.run(120.0)

    print(f"[{tb.sim.now():7.1f}s] EVENT  batch1 crashes (heartbeats stop)")
    tb.net.node("batch1").crash()
    for dep in tb.deployments.values():
        if dep.host == "batch1":
            dep.stop_registrations()
    tb.run(120.0)

    print("\n=== summary ===")
    print(f"monitor updates received: {monitor.updates_received}")
    print(f"alarms: {[a.kind for a in monitor.alarms]}")
    print(
        "diagnoses: "
        + ", ".join(f"{d.kind}({d.subject.split('/')[-1] or d.subject})" for d in troubleshooter.diagnoses)
    )
    assert any(d.kind == "sustained-overload" for d in troubleshooter.diagnoses)
    assert any(d.kind == "extended-failure" for d in troubleshooter.diagnoses)
    print("both injected anomalies were diagnosed.")


if __name__ == "__main__":
    main()
