#!/usr/bin/env python3
"""Superscheduler scenario (paper §1): brokering jobs across a VO.

Builds a simulated VO — one GIIS aggregate directory, six machines of
varying size and load running GRIS providers, GRRP registration streams
— then brokers a stream of jobs through it.  Each decision follows the
§4.1 discovery→enquiry pattern: search the directory for rough matches,
refresh the dynamic attributes at the authoritative providers, rank.

    python examples/superscheduler.py
"""

from repro.services import JobRequest, Superscheduler
from repro.testbed import GridTestbed


MACHINES = [
    # (host, cpus, typical load)
    ("alpha", 16, 0.5),
    ("beta", 8, 1.0),
    ("gamma", 8, 4.0),
    ("delta", 4, 0.3),
    ("epsilon", 2, 0.2),
    ("zeta", 4, 6.0),
]

JOBS = [
    JobRequest(min_cpus=8, max_load5=2.0),
    JobRequest(min_cpus=1, max_load5=1.0),
    JobRequest(min_cpus=4, max_load5=3.0, system="linux"),
    JobRequest(min_cpus=16, max_load5=8.0),
    JobRequest(min_cpus=2, max_load5=0.1),  # may find nothing
]


def main() -> None:
    tb = GridTestbed(seed=42)
    giis = tb.add_giis("vo-giis", "o=Grid", vo_name="ComputeVO")
    for host, cpus, load in MACHINES:
        gris = tb.standard_gris(
            host, f"hn={host}, o=Grid", cpu_count=cpus, load_mean=load
        )
        tb.register(gris, giis, interval=30.0, ttl=90.0, name=host)
    tb.run(1.0)  # registrations land
    print(f"VO assembled: {len(giis.backend.children())} machines registered\n")

    broker = Superscheduler(
        tb.client("broker", giis),
        "o=Grid",
        dial=lambda url: tb.client("broker", url),
    )

    for i, job in enumerate(JOBS, 1):
        tb.run(20.0)  # time passes between submissions; loads drift
        print(
            f"job {i}: needs >= {job.min_cpus} cpus, load5 <= {job.max_load5}"
            + (f", system ~ {job.system}" if job.system else "")
        )
        chosen = broker.select(job, refresh=True, top_k=3)
        if not chosen:
            print("   -> no machine currently satisfies the request\n")
            continue
        for rank, candidate in enumerate(chosen, 1):
            marker = "->" if rank == 1 else "  "
            print(
                f"   {marker} #{rank} {candidate.host}: "
                f"{candidate.cpus} cpus, load5={candidate.load5:.2f} "
                f"({'refreshed' if candidate.refreshed else 'directory view'})"
            )
        print()

    print(
        f"broker issued {broker.queries} directory queries and "
        f"{broker.refreshes} authoritative refreshes"
    )


if __name__ == "__main__":
    main()
