#!/usr/bin/env python3
"""Hierarchical discovery + specialized directories (paper Fig. 5, §5).

Builds the Figure 5 topology — two resource centers and one individual
contributing resources to a VO, with center directories registered to
the VO directory — then layers two specialized aggregate directories on
top of the same GRRP/GRIP machinery:

* a relational directory answering the paper's §5.3 join
  ("an idle computer connected to an idle network"), and
* a Condor-style matchmaker ranking machines for a job ClassAd.

    python examples/hierarchical_vo.py
"""

from repro.giis import ClassAd, MatchmakerDirectory, RelationalDirectory
from repro.gris import FunctionProvider
from repro.ldap.dn import DN
from repro.ldap.entry import Entry
from repro.testbed import GridTestbed

# (org, host, cpus, load, bandwidth to the VO hub)
RESOURCES = [
    ("O1", "o1-r1", 8, 0.3, 180.0),
    ("O1", "o1-r2", 4, 2.5, 200.0),
    ("O1", "o1-r3", 16, 0.4, 40.0),
    ("O2", "o2-r1", 8, 0.6, 150.0),
    ("O2", "o2-r2", 2, 5.0, 160.0),
]


def main() -> None:
    tb = GridTestbed(seed=5)

    vo = tb.add_giis("vo-dir", "o=Grid", vo_name="PhysicsVO")
    relational = RelationalDirectory()
    matchmaker = MatchmakerDirectory()
    vo.backend.add_index(relational)
    vo.backend.add_index(matchmaker)

    centers = {
        "O1": tb.add_giis("center-o1", "o=O1, o=Grid", vo_name="Center-O1"),
        "O2": tb.add_giis("center-o2", "o=O2, o=Grid", vo_name="Center-O2"),
    }
    for center in centers.values():
        tb.register(center, vo, interval=20.0, ttl=60.0, name=center.host)

    for org, host, cpus, load, bw in RESOURCES:
        gris = tb.standard_gris(
            host, f"hn={host}, o={org}, o=Grid", cpu_count=cpus, load_mean=load
        )
        gris.sensor.load1 = gris.sensor.load5 = gris.sensor.load15 = load
        gris.backend.add_provider(
            FunctionProvider(
                f"link-{host}",
                lambda host=host, bw=bw: [
                    Entry(
                        DN.parse(f"link={host}:hub, nw=links"),
                        objectclass="networklink",
                        src=host,
                        dst="hub",
                        bandwidth=f"{bw:.1f}",
                    )
                ],
            )
        )
        # Figure 5: resources register with their center; the centers
        # register with the VO directory (done above).
        tb.register(gris, centers[org], interval=20.0, ttl=60.0, name=host)
    tb.run(3.0)

    client = tb.client("physicist", vo)

    print("== hierarchical GRIP discovery ==")
    out = client.search("o=Grid", filter="(objectclass=computer)")
    print(f"root search ('without concern for scope'): {len(out.entries)} machines")
    out = client.search("o=O2, o=Grid", filter="(objectclass=computer)")
    print(f"scoped to O2:                               {len(out.entries)} machines")
    out = client.search("o=Grid", filter="(&(objectclass=computer)(cpucount>=8))")
    print(f"qualitative (cpus >= 8):                    {len(out.entries)} machines\n")

    print("== relational directory: the §5.3 join ==")
    table = relational.idle_computers_on_idle_networks(max_load=1.0, min_bandwidth=100.0)
    print("idle computers on idle networks (load5<=1.0, bw>=100):")
    for row in table.order_by("networklink.bandwidth", reverse=True):
        print(
            f"   {row['hn']:>6}: load5={row['load.load5']}, "
            f"bw={row['networklink.bandwidth']} MB/s"
        )

    print("\n== matchmaker directory: ClassAd ranking ==")
    job = ClassAd(
        requirements="target.cpucount >= 4 && target.load5 <= 1.0",
        rank="target.cpucount - target.load5",
        name="montecarlo-job",
    )
    print(f"job requirements: {job.requirements}")
    for ad, rank in matchmaker.match(job):
        print(
            f"   rank {rank:5.1f}: {ad.value('hn')} "
            f"({ad.value('cpucount'):.0f} cpus, load5={ad.value('load5'):.1f})"
        )


if __name__ == "__main__":
    main()
