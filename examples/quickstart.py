#!/usr/bin/env python3
"""Quickstart: run a real GRIS on this machine and query it over TCP.

Starts a Grid Resource Information Service publishing *this host's*
actual configuration, load average, and disk space, then talks to it
with the LDAP client exactly the way an MDS-2 user would::

    python examples/quickstart.py

Everything rides the real wire protocol over loopback TCP.
"""

import os
import platform

from repro.gris import (
    DynamicHostProvider,
    GrisBackend,
    HostConfig,
    StaticHostProvider,
    StorageProvider,
    real_filesystem_stat,
    real_load_sensor,
)
from repro.ldap.client import LdapClient
from repro.ldap.dit import Scope
from repro.ldap.ldif import format_ldif
from repro.ldap.server import LdapServer
from repro.net.clock import WallClock
from repro.net.tcp import TcpEndpoint


def main() -> None:
    hostname = platform.node() or "localhost"

    # -- 1. configure a GRIS for this machine --------------------------------
    # The suffix is the host's own entry; the static provider publishes it.
    suffix = f"hn={hostname}, o=Quickstart"
    gris = GrisBackend(suffix, clock=WallClock())
    gris.add_provider(
        StaticHostProvider(
            HostConfig(
                hostname,
                system=platform.system().lower(),
                os_version=platform.release(),
                cpu_type=platform.machine(),
                cpu_count=os.cpu_count() or 1,
            ),
            base="",
        )
    )
    gris.add_provider(
        DynamicHostProvider(hostname, real_load_sensor, cache_ttl=5.0, base="")
    )
    gris.add_provider(
        StorageProvider(hostname, "root", "/", real_filesystem_stat("/"), base="")
    )

    # -- 2. serve it over real TCP -------------------------------------------
    endpoint = TcpEndpoint()
    server = LdapServer(gris, name="quickstart-gris")
    port = endpoint.listen(0, server.handle_connection)
    print(f"GRIS for {hostname} listening on ldap://127.0.0.1:{port}/{suffix}\n")

    # -- 3. query it like any GRIP consumer ----------------------------------
    client = LdapClient(endpoint.connect(("127.0.0.1", port)))

    print("== full subtree ==")
    out = client.search(suffix, Scope.SUBTREE, "(objectclass=*)")
    print(format_ldif(out.entries))

    print("== just the load average, selected attributes ==")
    out = client.search(
        suffix, Scope.SUBTREE, "(objectclass=loadaverage)", attrs=["load1", "load5"]
    )
    for entry in out.entries:
        print(f"  {entry.dn}: load1={entry.first('load1')} load5={entry.first('load5')}")

    print("\n== a broker-style qualitative query ==")
    out = client.search(
        suffix, Scope.SUBTREE, f"(&(objectclass=computer)(cpucount>={os.cpu_count() or 1}))"
    )
    verdict = "would" if out.entries else "would NOT"
    print(f"  this machine {verdict} match a job needing {os.cpu_count()} CPUs")

    client.unbind()
    endpoint.close()
    print("\ndone.")


if __name__ == "__main__":
    main()
