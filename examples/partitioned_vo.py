#!/usr/bin/env python3
"""Partition tolerance walkthrough (paper Figure 1 and §2.2).

Two sites jointly operate VO-B with a replicated aggregate directory —
one replica per site.  A WAN failure splits the sites; each fragment of
the VO keeps operating with the resources it can reach, and the views
knit back together after the network heals.

    python examples/partitioned_vo.py
"""

from repro.testbed import GridTestbed


def show(tb, label, directory, user):
    client = tb.client(user, directory)
    out = client.search("o=Grid", filter="(objectclass=computer)", check=False)
    hosts = sorted(e.first("hn") for e in out.entries)
    print(f"  [{label}] {user} via {directory.host}: {len(hosts)} machines -> {hosts}")


def main() -> None:
    tb = GridTestbed(seed=1)
    tb.host("alice", site="chicago")
    tb.host("bob", site="geneva")

    dir_chi = tb.add_giis("dir-chicago", "o=Grid", site="chicago", vo_name="VO-B")
    dir_gva = tb.add_giis("dir-geneva", "o=Grid", site="geneva", vo_name="VO-B")

    for site, hosts in (("chicago", ["chi-a", "chi-b"]), ("geneva", ["gva-a", "gva-b", "gva-c"])):
        for host in hosts:
            gris = tb.standard_gris(host, f"hn={host}, o=Grid", site=site)
            # every resource registers with BOTH replicas (Figure 4)
            tb.register(gris, dir_chi, interval=10.0, ttl=30.0, name=host)
            tb.register(gris, dir_gva, interval=10.0, ttl=30.0, name=host)
    tb.run(2.0)

    print("phase 1: healthy network — both replicas agree")
    show(tb, "t=%3.0fs" % tb.sim.now(), dir_chi, "alice")
    show(tb, "t=%3.0fs" % tb.sim.now(), dir_gva, "bob")

    print("\nphase 2: the transatlantic link fails (network partition)")
    chicago = [h for h in tb.net.hosts() if tb.net.node(h).site == "chicago"]
    geneva = [h for h in tb.net.hosts() if tb.net.node(h).site == "geneva"]
    tb.net.partition(chicago, geneva)
    tb.run(60.0)  # soft state purges unreachable registrations
    print("  (60s later: registrations from the far side have expired)")
    show(tb, "t=%3.0fs" % tb.sim.now(), dir_chi, "alice")
    show(tb, "t=%3.0fs" % tb.sim.now(), dir_gva, "bob")
    print("  -> VO-B operates as two disjoint fragments; neither side is down.")

    print("\nphase 3: the link heals")
    tb.net.heal()
    tb.run(30.0)
    show(tb, "t=%3.0fs" % tb.sim.now(), dir_chi, "alice")
    show(tb, "t=%3.0fs" % tb.sim.now(), dir_gva, "bob")
    print("  -> refresh streams rebuilt the full membership automatically;")
    print("     no repair protocol, no operator action — just soft state.")


if __name__ == "__main__":
    main()
