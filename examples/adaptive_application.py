#!/usr/bin/env python3
"""Application adaptation scenario (paper §1, fourth example).

A long-running simulation publishes its own status through a GRIS
(applications are information sources too, §3).  Its adaptation agent
watches the host's load through the VO directory and reacts: when the
current machine gets busy it migrates the job via the superscheduler;
when the whole VO is saturated it degrades accuracy instead, restoring
it once conditions recover.

    python examples/adaptive_application.py
"""

from repro.services import AdaptationAgent, ManagedApplication, Superscheduler
from repro.testbed import GridTestbed


def main() -> None:
    tb = GridTestbed(seed=314)
    giis = tb.add_giis("vo-giis", "o=Grid", vo_name="SimVO")
    fleet = {}
    for host in ("node-a", "node-b", "node-c"):
        gris = tb.standard_gris(host, f"hn={host}, o=Grid", load_mean=0.4)
        tb.register(gris, giis, interval=15.0, ttl=45.0, name=host)
        fleet[host] = gris
    app = ManagedApplication("climate-sim", resource="node-a")
    app_gris = tb.add_gris("app-host", "o=Apps", [app.provider()])
    tb.run(1.0)

    broker = Superscheduler(tb.client("agent", giis), "o=Grid")

    def load_of(host):
        """The agent's view: query the VO directory for the host load."""
        out = broker.directory.search(
            f"hn={host}, o=Grid", filter="(objectclass=loadaverage)", check=False
        )
        for entry in out.entries:
            value = entry.first("load5")
            if value is not None:
                return float(value)
        return None

    agent = AdaptationAgent(
        tb.sim,
        app,
        broker,
        load_of=load_of,
        overload=4.0,
        comfortable=1.5,
        patience=2,
        on_action=lambda a: print(
            f"[{a.when:7.1f}s] AGENT  {a.kind}: {a.detail}"
        ),
    )

    def slam(host, mean):
        sensor = fleet[host].sensor
        sensor.set_mean(mean)
        sensor.load1 = sensor.load5 = sensor.load15 = mean

    print(f"t=0      {app.name} running on {app.resource}; agent polls every 20s\n")

    def patrol():
        agent.poll()
        app.progress = min(1.0, app.progress + 0.03)
        tb.sim.call_later(20.0, patrol)

    tb.sim.call_later(20.0, patrol)

    tb.run(60.0)
    print(f"[{tb.sim.now():7.1f}s] EVENT  {app.resource} becomes overloaded")
    slam(app.resource, 9.0)
    tb.run(120.0)

    print(f"[{tb.sim.now():7.1f}s] EVENT  the whole VO saturates")
    for host in fleet:
        slam(host, 9.0)
    tb.run(120.0)

    print(f"[{tb.sim.now():7.1f}s] EVENT  the VO recovers")
    for host in fleet:
        slam(host, 0.3)
    tb.run(120.0)

    print("\n=== outcome ===")
    print(f"final resource: {app.resource} (migrations: {app.migrations})")
    print(f"final accuracy: {app.accuracy:.2f}, progress {app.progress * 100:.0f}%")
    print("actions taken:")
    for action in agent.actions:
        print(f"  t={action.when:6.1f}s {action.kind}: {action.detail}")
    kinds = [a.kind for a in agent.actions]
    assert "migrate" in kinds
    assert "reduce-accuracy" in kinds
    assert "restore-accuracy" in kinds
    print("\nthe agent migrated, degraded, and recovered — the §1 scenario.")


if __name__ == "__main__":
    main()
