#!/usr/bin/env python3
"""Replica selection scenario (paper §1): picking the best file copy.

A data grid holds replicated files across three storage sites.  An NWS
forecaster bank learns bandwidth between each store and the consumer
from noisy measurements; the replica selector combines the catalog with
forecasts to pick the copy with the lowest predicted transfer time —
including a demonstration of the §4.1 non-enumerable namespace: the
bandwidth entries are generated lazily per queried endpoint pair.

    python examples/replica_selection.py
"""

import random

from repro.gris import NetworkPairsProvider, SeriesStore, pair_series
from repro.services import ReplicaCatalogProvider, ReplicaSelector
from repro.testbed import GridTestbed

GB = 1024**3

# (store host, true mean bandwidth to the consumer in MB/s, jitter)
STORES = [
    ("store-chicago", 80.0, 15.0),
    ("store-geneva", 12.0, 4.0),
    ("store-tokyo", 35.0, 10.0),
]

CATALOG = {
    "lfn://cms/higgs-candidates.dat": [
        ("store-chicago", 4 * GB),
        ("store-geneva", 4 * GB),
        ("store-tokyo", 4 * GB),
    ],
    "lfn://cms/calibration.db": [
        ("store-geneva", 1 * GB),
        ("store-tokyo", 1 * GB),
    ],
    "lfn://cms/rare-event.raw": [("store-geneva", 10 * GB)],
}


def main() -> None:
    tb = GridTestbed(seed=7)
    rng = random.Random(7)

    # NWS-style measurement streams: noisy bandwidth observations
    bandwidth = SeriesStore(min_samples=1)
    for store, mean, jitter in STORES:
        for _ in range(30):
            bandwidth.observe(
                pair_series(store, "consumer", "bw"),
                max(0.5, rng.gauss(mean, jitter)),
            )

    giis = tb.add_giis("data-giis", "o=DataGrid", vo_name="CMS-DataGrid")
    gris = tb.add_gris(
        "catalog-host",
        "o=DataGrid",
        [ReplicaCatalogProvider(CATALOG), NetworkPairsProvider(bandwidth)],
    )
    tb.register(gris, giis, interval=30.0, ttl=90.0, name="catalog")
    tb.run(1.0)

    selector = ReplicaSelector(
        tb.client("consumer", giis),
        base="o=DataGrid",
        network_base="nw=links, o=DataGrid",
        consumer_host="consumer",
    )

    print("forecasts learned by the NWS bank:")
    for store, mean, _ in STORES:
        forecast = bandwidth.forecast(pair_series(store, "consumer", "bw"))
        print(
            f"  {store:>14} -> consumer: {forecast.value:6.1f} MB/s "
            f"(method={forecast.method}, true mean {mean:.0f})"
        )
    print()

    for lfn in CATALOG:
        print(f"{lfn}:")
        for rank, choice in enumerate(selector.select(lfn), 1):
            marker = "->" if rank == 1 else "  "
            print(
                f"   {marker} {choice.store_host:>14}: "
                f"{choice.size / GB:.0f} GB @ {choice.bandwidth:6.1f} MB/s "
                f"=> ~{choice.predicted_seconds:6.1f}s"
            )
        print()


if __name__ == "__main__":
    main()
