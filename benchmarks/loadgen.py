"""MDS2-style load generator for GRIS/GIIS servers.

The MDS performance studies (Zhang, Freschl & Schopf; PAPERS.md) drove
directory servers with fleets of concurrent users issuing mixed search
workloads.  This module is the reusable core of that harness:

* :class:`Workload` — a named, seeded mix of filters and scopes over a
  search base; draws are deterministic per seed so baseline and
  optimized runs see the *same* request sequence;
* :func:`closed_loop` — N virtual users, each with its own connection,
  each keeping exactly one request in flight (think-time zero): the
  classic saturation workload.  Offered load adapts to service rate;
* :func:`open_loop` — a paced arrival process at a configured rate over
  a fixed connection pool: offered load is independent of service rate,
  so queueing delay shows up in the tail percentiles instead of being
  absorbed by backpressure;
* :class:`LoadStats` — completed/error counts plus client-observed
  latency percentiles (p50/p95/p99) and throughput;
* :func:`build_vo` — the measured topology: M GRIS (one DIT each)
  behind a GIIS front end chaining over pooled reactor connections,
  mirroring Figure 5's hierarchy.

Everything runs over real loopback sockets on the selector-reactor
transport; the client side keeps all virtual users on one event-loop
thread, so user counts in the hundreds cost file descriptors rather
than OS threads.
"""

import random
import threading
import time
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.giis.core import GiisBackend
from repro.grip.messages import GrrpMessage
from repro.ldap.backend import DitBackend
from repro.ldap.client import LdapClient
from repro.ldap.dit import DIT, Scope
from repro.ldap.entry import Entry
from repro.ldap.executor import RequestExecutor
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import SearchRequest
from repro.ldap.server import LdapServer
from repro.net import make_endpoint
from repro.net.clock import WallClock
from repro.obs import (
    HealthModel,
    MetricsHttpServer,
    MetricsRegistry,
    MonitorBackend,
    MonitoredBackend,
    TimeSeriesRecorder,
    parse_exposition,
)

__all__ = [
    "Workload",
    "LoadStats",
    "closed_loop",
    "open_loop",
    "build_vo",
    "VoTestbed",
    "populate_gris",
    "MetricsScraper",
]


# ---------------------------------------------------------------------------
# Workload definition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Workload:
    """A weighted request mix.  ``filters``/``scopes`` are (choice,
    weight) pairs; filters are LDAP filter strings, scopes are
    :class:`Scope` values.  The draw sequence is fixed by ``seed``."""

    name: str
    base: str = "o=Grid"
    filters: Tuple[Tuple[str, float], ...] = (("(objectclass=*)", 1.0),)
    scopes: Tuple[Tuple[int, float], ...] = ((Scope.SUBTREE, 1.0),)
    attrs: Tuple[str, ...] = ()
    seed: int = 2135  # the MDS port number; any fixed value works

    def request_source(self) -> Callable[[], SearchRequest]:
        """A zero-arg factory yielding the deterministic request mix.

        Not thread-safe: give each generator loop its own source.
        """
        rng = random.Random(self.seed)
        fchoices = [parse_filter(f) for f, _ in self.filters]
        fweights = [w for _, w in self.filters]
        schoices = [s for s, _ in self.scopes]
        sweights = [w for _, w in self.scopes]

        def next_request() -> SearchRequest:
            filt = rng.choices(fchoices, fweights)[0]
            scope = rng.choices(schoices, sweights)[0]
            return SearchRequest(
                base=self.base,
                scope=scope,
                filter=filt,
                attributes=self.attrs,
            )

        return next_request

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "base": self.base,
            "filters": [[f, w] for f, w in self.filters],
            "scopes": [[int(s), w] for s, w in self.scopes],
            "attrs": list(self.attrs),
            "seed": self.seed,
        }

    def reseeded(self, seed: int) -> "Workload":
        """The same mix with a different draw sequence (per-user stagger)."""
        return Workload(
            name=self.name,
            base=self.base,
            filters=self.filters,
            scopes=self.scopes,
            attrs=self.attrs,
            seed=seed,
        )


@dataclass
class LoadStats:
    """Client-observed outcome of one load run."""

    mode: str
    users: int
    completed: int = 0
    errors: int = 0
    duration_s: float = 0.0
    latencies: List[float] = field(default_factory=list)
    # Time-to-first-entry: issue -> first SearchResultEntry on the wire,
    # the latency a streaming consumer actually feels (benchmark E23).
    ttfes: List[float] = field(default_factory=list)
    offered_rps: Optional[float] = None  # open loop only

    @staticmethod
    def _quantiles(samples: List[float]) -> Dict[str, float]:
        if not samples:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
        s = sorted(samples)

        def q(p: float) -> float:
            return round(s[min(len(s) - 1, int(p * len(s)))] * 1000, 3)

        return {"p50_ms": q(0.50), "p95_ms": q(0.95), "p99_ms": q(0.99)}

    def percentiles(self) -> Dict[str, float]:
        return self._quantiles(self.latencies)

    def ttfe_percentiles(self) -> Dict[str, float]:
        return self._quantiles(self.ttfes)

    @property
    def throughput_rps(self) -> float:
        if not self.duration_s:
            return 0.0
        return round(self.completed / self.duration_s, 1)

    def summary(self) -> Dict[str, object]:
        out = {
            "mode": self.mode,
            "users": self.users,
            "completed": self.completed,
            "errors": self.errors,
            "duration_s": round(self.duration_s, 3),
            "throughput_rps": self.throughput_rps,
            "percentiles": self.percentiles(),
        }
        if self.ttfes:
            out["ttfe_percentiles"] = self.ttfe_percentiles()
        if self.offered_rps is not None:
            out["offered_rps"] = self.offered_rps
        return out


# ---------------------------------------------------------------------------
# Closed loop: N users, one request in flight each
# ---------------------------------------------------------------------------


class _VirtualUser:
    """One connection re-issuing the next request as each completes.

    The completion callback runs on the client reactor thread; issuing
    the next request from it keeps exactly one request in flight per
    user with zero think time.
    """

    __slots__ = ("client", "source", "remaining", "latencies", "ttfes",
                 "errors", "_t0", "_seen_entry", "_on_entry", "_harness")

    def __init__(self, client, source, requests, harness,
                 measure_ttfe: bool = False):
        self.client = client
        self.source = source
        self.remaining = requests
        self.latencies: List[float] = []
        self.ttfes: List[float] = []
        self.errors = 0
        self._t0 = 0.0
        self._seen_entry = False
        self._on_entry = self._first_entry if measure_ttfe else None
        self._harness = harness

    def start(self) -> None:
        self._fire()

    def _fire(self) -> None:
        self._t0 = time.perf_counter()
        self._seen_entry = False
        try:
            self.client.search_async(
                self.source(), self._on_done, on_entry=self._on_entry
            )
        except Exception:  # noqa: BLE001 - a dead user stops looping
            self.errors += 1
            self._harness.user_finished()

    def _first_entry(self, _item) -> None:
        if not self._seen_entry:
            self._seen_entry = True
            self.ttfes.append(time.perf_counter() - self._t0)

    def _on_done(self, result, error) -> None:
        self.latencies.append(time.perf_counter() - self._t0)
        if error is not None or not result.result.ok:
            self.errors += 1
        self.remaining -= 1
        if self.remaining > 0:
            self._fire()
        else:
            self._harness.user_finished()


class _Harness:
    def __init__(self, users: int):
        self._active = users
        self._lock = threading.Lock()
        self.done = threading.Event()

    def user_finished(self) -> None:
        with self._lock:
            self._active -= 1
            if self._active <= 0:
                self.done.set()


def closed_loop(
    connect: Callable[[], object],
    workload: Workload,
    users: int,
    requests_per_user: int,
    timeout_s: float = 300.0,
    measure_ttfe: bool = False,
) -> LoadStats:
    """Saturation load: ``users`` connections, one request in flight
    each, ``requests_per_user`` requests per connection.  With
    ``measure_ttfe`` each user also records issue-to-first-entry time
    via a per-entry streaming callback."""
    harness = _Harness(users)
    vusers = []
    for i in range(users):
        # stagger seeds so users do not issue identical request streams
        wl = workload.reseeded(workload.seed + i)
        vusers.append(
            _VirtualUser(
                LdapClient(connect()), wl.request_source(),
                requests_per_user, harness, measure_ttfe=measure_ttfe,
            )
        )
    started = time.perf_counter()
    for u in vusers:
        u.start()
    finished = harness.done.wait(timeout=timeout_s)
    duration = time.perf_counter() - started

    stats = LoadStats(mode="closed", users=users, duration_s=duration)
    for u in vusers:
        stats.latencies.extend(u.latencies)
        stats.ttfes.extend(u.ttfes)
        stats.errors += u.errors
        try:
            u.client.unbind()
        except Exception:  # noqa: BLE001 - teardown best-effort
            pass
    stats.completed = len(stats.latencies)
    if not finished:
        stats.errors += 1  # record the timeout itself
    return stats


# ---------------------------------------------------------------------------
# Open loop: paced arrivals over a fixed connection pool
# ---------------------------------------------------------------------------


def open_loop(
    connect: Callable[[], object],
    workload: Workload,
    rate_rps: float,
    duration_s: float,
    connections: int = 32,
    drain_timeout_s: float = 60.0,
) -> LoadStats:
    """Arrivals at ``rate_rps`` regardless of completions: offered load
    is independent of service rate, so saturation appears as tail
    latency growth rather than throughput clamping."""
    clients = [LdapClient(connect()) for _ in range(connections)]
    source = workload.request_source()
    lock = threading.Lock()
    latencies: List[float] = []
    errors = [0]
    inflight = [0]
    drained = threading.Event()

    def on_done_at(t0: float):
        def on_done(result, error):
            with lock:
                latencies.append(time.perf_counter() - t0)
                if error is not None or not result.result.ok:
                    errors[0] += 1
                inflight[0] -= 1
                if inflight[0] == 0 and stopped[0]:
                    drained.set()

        return on_done

    stopped = [False]
    interval = 1.0 / rate_rps
    started = time.perf_counter()
    deadline = started + duration_s
    i = 0
    while True:
        now = time.perf_counter()
        if now >= deadline:
            break
        target = started + i * interval
        if target > now:
            time.sleep(min(target - now, deadline - now))
            continue
        client = clients[i % connections]
        with lock:
            inflight[0] += 1
        try:
            client.search_async(source(), on_done_at(time.perf_counter()))
        except Exception:  # noqa: BLE001 - a failed send is an error
            with lock:
                errors[0] += 1
                inflight[0] -= 1
        i += 1
    with lock:
        stopped[0] = True
        if inflight[0] == 0:
            drained.set()
    drained.wait(timeout=drain_timeout_s)
    duration = time.perf_counter() - started

    stats = LoadStats(
        mode="open",
        users=connections,
        duration_s=duration,
        offered_rps=round(rate_rps, 1),
    )
    with lock:
        stats.latencies = list(latencies)
        stats.errors = errors[0]
    stats.completed = len(stats.latencies)
    for c in clients:
        try:
            c.unbind()
        except Exception:  # noqa: BLE001 - teardown best-effort
            pass
    return stats


# ---------------------------------------------------------------------------
# Topology: M GRIS behind a GIIS, and the standalone-GRIS data model
# ---------------------------------------------------------------------------


def populate_gris(
    dit: DIT,
    n_hosts: int,
    children_per_host: int = 20,
    first_host: int = 0,
) -> int:
    """The MDS2-shaped dataset: hosts under ``o=Grid``, each with
    per-device/per-queue children that repeat the host's ``hn`` so an
    indexed equality search returns the whole host group.

    ``first_host`` offsets the host numbering so several GRIS can hold
    disjoint slices of one VO (the chained-aggregate shape benchmark
    E23 measures) instead of identical replicas that de-duplicate away
    at the GIIS.
    """
    dit.add(Entry("o=Grid", objectclass="organization", o="Grid"))
    total = 1
    for h in range(first_host, first_host + n_hosts):
        hn = f"host{h}"
        dit.add(
            Entry(
                f"hn={hn}, o=Grid",
                objectclass="computer",
                hn=hn,
                system="linux",
                cpucount=str(4 + h % 4),
                load5=str((h % 50) / 10.0),
            )
        )
        total += 1
        for c in range(children_per_host):
            dit.add(
                Entry(
                    f"dev=d{c}, hn={hn}, o=Grid",
                    objectclass="device",
                    dev=f"d{c}",
                    hn=hn,
                    status="up" if c % 7 else "down",
                )
            )
            total += 1
    return total


class VoTestbed:
    """M GRIS (one DIT each) behind one GIIS, all on the reactor.

    With monitoring on, ``ldap_specs`` lists every server as
    ``host:port`` (for ``grid-info-top``'s GRIP mode) and
    ``metrics_urls`` lists the per-server HTTP exposition endpoints,
    GIIS first in both.
    """

    def __init__(self, giis_port: int, gris_ports: List[int], closers,
                 metrics_urls: Optional[List[str]] = None,
                 giis_backend: Optional[GiisBackend] = None):
        self.giis_port = giis_port
        self.gris_ports = gris_ports
        self._closers = closers
        self.metrics_urls = metrics_urls or []
        # The front-end backend itself, for counter assertions in the
        # benchmarks (giis.relay.entries etc.).
        self.giis_backend = giis_backend

    @property
    def ldap_specs(self) -> List[str]:
        return [
            f"127.0.0.1:{p}" for p in [self.giis_port] + self.gris_ports
        ]

    def close(self) -> None:
        for close in reversed(self._closers):
            try:
                close()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass


def _monitor_server(clock, closers, server_name: str, metrics_interval: float):
    """One server's self-monitoring bundle (pre-listen half)."""
    metrics = MetricsRegistry()
    recorder = TimeSeriesRecorder(metrics, clock, interval=metrics_interval)
    health = HealthModel(metrics, clock, recorder=recorder)
    backend_monitor = MonitorBackend(
        metrics, server_name=server_name, health=health
    )
    closers.append(recorder.stop)
    return metrics, recorder, health, backend_monitor


def _serve_metrics(metrics, health, endpoint, clock, closers) -> str:
    http = MetricsHttpServer(
        metrics, reactor=getattr(endpoint, "reactor", None),
        health=health, clock_now=clock.now,
    )
    port = http.start(0)
    closers.append(http.close)
    return f"http://127.0.0.1:{port}"


def build_vo(
    n_gris: int,
    hosts_per_gris: int,
    children_per_host: int = 20,
    transport: str = "reactor",
    workers: int = 4,
    encode_cache: bool = True,
    monitor: bool = False,
    metrics_interval: float = 0.5,
    relay: bool = True,
    disjoint_hosts: bool = False,
) -> VoTestbed:
    closers = []
    clock = WallClock()
    gris_ports = []
    metrics_urls: List[str] = []
    gris_metrics_urls: List[str] = []
    for g in range(n_gris):
        dit = DIT(index_attrs=["hn"])
        populate_gris(
            dit, hosts_per_gris, children_per_host,
            first_host=g * hosts_per_gris if disjoint_hosts else 0,
        )
        backend = DitBackend(dit)
        metrics = recorder = health = None
        if monitor:
            metrics, recorder, health, mon = _monitor_server(
                clock, closers, f"gris{g}", metrics_interval
            )
            backend = MonitoredBackend(backend, mon)
        executor = RequestExecutor(
            workers=workers, queue_limit=4096, metrics=metrics,
            clock=clock, name=f"gris{g}",
        )
        server = LdapServer(
            backend, clock=clock, executor=executor,
            encode_cache=encode_cache, metrics=metrics, name=f"gris{g}",
        )
        endpoint = make_endpoint(transport, metrics=metrics)
        port = endpoint.listen(0, server.handle_connection)
        if monitor:
            health.server_id = f"127.0.0.1:{port}"
            recorder.start()
            gris_metrics_urls.append(
                _serve_metrics(metrics, health, endpoint, clock, closers)
            )
        closers.append(executor.shutdown)
        closers.append(endpoint.close)
        gris_ports.append(port)

    front_metrics = front_recorder = front_health = None
    if monitor:
        front_metrics, front_recorder, front_health, front_mon = (
            _monitor_server(clock, closers, "giis", metrics_interval)
        )
    chain_endpoint = make_endpoint(transport, metrics=front_metrics)
    closers.append(chain_endpoint.close)
    giis = GiisBackend(
        "o=Grid",
        clock=clock,
        connector=lambda url: chain_endpoint.connect((url.host, url.port)),
        child_timeout=30.0,
        metrics=front_metrics,
        relay=relay,
    )
    closers.append(giis.shutdown)
    now = clock.now()
    for port in gris_ports:
        giis.apply_grrp(
            GrrpMessage(
                service_url=f"ldap://127.0.0.1:{port}/",
                timestamp=now,
                valid_until=now + 3600.0,
                metadata={"suffix": "o=Grid"},
            )
        )
    front_backend = giis
    if monitor:
        giis.enable_self_monitor(front_health)
        front_backend = MonitoredBackend(giis, front_mon)
    front_executor = RequestExecutor(
        workers=workers, queue_limit=4096, metrics=front_metrics,
        clock=clock, name="giis",
    )
    front = make_endpoint(transport, metrics=front_metrics)
    server = LdapServer(
        front_backend, clock=clock, executor=front_executor,
        metrics=front_metrics, name="giis",
    )
    giis_port = front.listen(0, server.handle_connection)
    if monitor:
        front_health.server_id = f"127.0.0.1:{giis_port}"
        front_recorder.start()
        metrics_urls.append(
            _serve_metrics(front_metrics, front_health, front, clock, closers)
        )
        metrics_urls.extend(gris_metrics_urls)
    closers.append(front_executor.shutdown)
    closers.append(front.close)
    return VoTestbed(
        giis_port, gris_ports, closers,
        metrics_urls=metrics_urls, giis_backend=giis,
    )


# ---------------------------------------------------------------------------
# Scraper: server-side time-series alongside client-observed latency
# ---------------------------------------------------------------------------


class MetricsScraper:
    """Polls ``/metrics`` endpoints on a thread and keeps small samples.

    Each poll reduces one exposition page to scalars: counters and
    gauges sum their samples per family; histograms keep the ``_count``
    and ``_sum`` totals.  ``export()`` hands the per-server series to
    the benchmark report so ``BENCH_E22.json`` carries the server-side
    view of the run next to the client-observed percentiles.
    """

    def __init__(self, urls: Sequence[str], interval: float = 1.0,
                 families: Optional[Sequence[str]] = None,
                 timeout: float = 5.0):
        self.urls = list(urls)
        self.interval = interval
        self.timeout = timeout
        self._families = tuple(families) if families else None
        self.samples: Dict[str, List[Tuple[float, Dict[str, float]]]] = {
            url: [] for url in self.urls
        }
        self.errors = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started = time.perf_counter()

    def _reduce(self, text: str) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for family, info in parse_exposition(text).items():
            if self._families and not any(
                family.startswith(p) for p in self._families
            ):
                continue
            if info["type"] == "histogram":
                for name, _labels, value in info["samples"]:
                    if name.endswith("_count"):
                        out[f"{family}_count"] = (
                            out.get(f"{family}_count", 0.0) + value
                        )
                    elif name.endswith("_sum"):
                        out[f"{family}_sum"] = (
                            out.get(f"{family}_sum", 0.0) + value
                        )
            else:
                for _name, _labels, value in info["samples"]:
                    out[family] = out.get(family, 0.0) + value
        return out

    def poll_once(self) -> None:
        t = round(time.perf_counter() - self._started, 3)
        for url in self.urls:
            try:
                with urllib.request.urlopen(
                    url.rstrip("/") + "/metrics", timeout=self.timeout
                ) as resp:
                    text = resp.read().decode("utf-8")
                self.samples[url].append((t, self._reduce(text)))
            except (OSError, ValueError):
                self.errors += 1

    def start(self) -> None:
        def run() -> None:
            while not self._stop.wait(self.interval):
                self.poll_once()

        self._thread = threading.Thread(
            target=run, name="metrics-scraper", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def export(self) -> Dict[str, object]:
        return {
            "interval_s": self.interval,
            "poll_errors": self.errors,
            "servers": {
                url: [
                    {"t": t, "values": values}
                    for t, values in series
                ]
                for url, series in self.samples.items()
            },
        }
