"""E9 — §11.1: MDS-1-style centralized directory vs MDS-2 distribution.

"The strategy of collecting all information into a database inevitably
limited scalability and reliability."  Compared on the same workload:

* **freshness** — the central store's answers age up to the push
  interval; MDS-2 chaining reads through to providers whose staleness
  is bounded by their (short) local cache TTL;
* **background traffic** — pushing streams all attributes of all
  resources whether or not anyone queries; MDS-2 moves bulk data only
  on demand (plus tiny GRRP heartbeats);
* **reliability** — the central store is a single point of failure,
  while MDS-2 queries degrade to partial results (§2.2).
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from repro.baselines import CentralDirectory, Mds1Pusher
from repro.ldap.client import LdapClient
from repro.ldap.url import LdapUrl
from repro.testbed import GridTestbed
from repro.testbed.metrics import Series, fmt_table


N_RESOURCES = 5
PUSH_INTERVAL = 60.0
GRIS_TTL = 5.0
OBSERVE = 600.0
QUERY_EVERY = 20.0


def build_both(seed=0):
    """The same resources served both ways: pushed centrally and via GIIS."""
    tb = GridTestbed(seed=seed)
    central = CentralDirectory(tb.sim)
    tb.host("central").listen(389, central.server.handle_connection)
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO")
    pushers = []
    for i in range(N_RESOURCES):
        host = f"r{i}"
        gris = tb.standard_gris(
            host, f"hn={host}, o=Grid", load_mean=1.0, load_ttl=GRIS_TTL
        )
        tb.register(gris, giis, interval=15.0, ttl=45.0, name=host)
        # the SAME provider objects feed an MDS-1 pusher
        conn = gris.node.connect(("central", 389))
        pusher = Mds1Pusher(
            tb.sim,
            LdapClient(conn),
            f"hn={host}, o=Grid",
            gris.backend.providers(),
            interval=PUSH_INTERVAL,
        )
        pusher.start()
        pushers.append(pusher)
    tb.run(1.0)
    return tb, central, giis, pushers


def run_comparison(seed=0):
    tb, central, giis, pushers = build_both(seed)
    central_client = tb.client("user", LdapUrl("central", 389))
    giis_client = tb.client("user", giis)
    central_staleness, giis_staleness = Series(), Series()
    m_quiet_start = tb.net.stats.messages

    next_query = QUERY_EVERY
    while tb.sim.now() < OBSERVE:
        tb.run(next_query - tb.sim.now())
        for client, series in (
            (central_client, central_staleness),
            (giis_client, giis_staleness),
        ):
            out = client.search(
                "o=Grid", filter="(objectclass=loadaverage)", check=False
            )
            for entry in out.entries:
                ts = entry.timestamp()
                if ts is not None:
                    series.add(tb.sim.now() - ts)
        next_query += QUERY_EVERY

    total_msgs = tb.net.stats.messages - m_quiet_start
    push_msgs = sum(p.entries_pushed for p in pushers)
    return central_staleness, giis_staleness, total_msgs, push_msgs, tb, central, giis


def test_freshness_and_traffic(benchmark, report):
    (
        central_staleness,
        giis_staleness,
        total_msgs,
        push_msgs,
        tb,
        central,
        giis,
    ) = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = [
        (
            "MDS-1 central push",
            round(central_staleness.mean, 1),
            round(central_staleness.maximum, 1),
            push_msgs,
        ),
        (
            "MDS-2 GIIS chaining",
            round(giis_staleness.mean, 1),
            round(giis_staleness.maximum, 1),
            "on demand",
        ),
    ]
    report(
        "E9_mds1_freshness",
        f"Freshness under identical load dynamics ({N_RESOURCES} resources,\n"
        f"push every {PUSH_INTERVAL:.0f}s vs provider cache TTL {GRIS_TTL:.0f}s, "
        f"queried every {QUERY_EVERY:.0f}s for {OBSERVE:.0f}s)\n"
        + fmt_table(
            ["architecture", "mean staleness (s)", "max staleness (s)", "pushed entries"],
            rows,
        )
        + "\n\nClaim check (§11.1): the central copy ages toward the push\n"
        "interval; reading through the distributed providers keeps\n"
        "staleness bounded by the short local TTL.",
    )
    assert giis_staleness.mean < central_staleness.mean / 3
    assert central_staleness.maximum > PUSH_INTERVAL * 0.5
    assert giis_staleness.maximum <= GRIS_TTL + 1.0


def test_single_point_of_failure(benchmark, report):
    def run():
        tb, central, giis, pushers = build_both(seed=3)
        central_client = tb.client("user", LdapUrl("central", 389))
        giis_client = tb.client("user", giis)
        # one resource crashes: MDS-2 degrades to partial results
        for key, dep in list(tb.deployments.items()):
            if dep.host == "r0":
                dep.node.crash()
        tb.run(60.0)
        partial = giis_client.search(
            "o=Grid", filter="(objectclass=computer)", check=False
        )
        # the central server crashes: the MDS-1 world goes dark
        tb.net.node("central").crash()
        central_ok = True
        try:
            fresh = tb.client("user2", LdapUrl("central", 389))
            fresh.search("o=Grid", check=False)
        except Exception:  # noqa: BLE001
            central_ok = False
        after = giis_client.search(
            "o=Grid", filter="(objectclass=computer)", check=False
        )
        return len(partial.entries), central_ok, len(after.entries)

    partial_count, central_ok, after_count = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert partial_count == N_RESOURCES - 1  # partial info, not failure (§2.2)
    assert not central_ok  # central architecture: total discovery outage
    assert after_count == N_RESOURCES - 1  # MDS-2 unaffected by that crash
    report(
        "E9_failure_modes",
        fmt_table(
            ["event", "MDS-1 central", "MDS-2 distributed"],
            [
                ("one resource down", "stale copy lingers", f"{partial_count}/{N_RESOURCES} served"),
                ("directory host down", "discovery outage", f"{after_count}/{N_RESOURCES} served"),
            ],
        )
        + "\n'The failure of any one component should not prevent obtaining\n"
        "information about other components' (§2.2).",
    )
