"""E19 — the event-loop transport at VO scale, and pooled GIIS chaining.

The MDS performance studies (Zhang, Freschl & Schopf; PAPERS.md) ran
directory servers against hundreds-to-thousands of concurrent users —
exactly where a thread-per-connection transport runs out of scheduler.
This bench measures, over real loopback sockets:

* **concurrency ladder** — N clients each open a connection and run one
  search, server on the selector reactor vs thread-per-connection; the
  reactor must sustain 5k concurrent clients on one event-loop thread;
* **pooled chaining** — a GIIS front end chaining to child servers over
  warm pooled connections vs dialing each child per query (the pre-pool
  behavior, emulated by clearing the pool between queries).

Set ``E19_QUICK=1`` (the CI smoke mode) for a small ladder and fewer
rounds.  Full runs write machine-readable results to ``BENCH_E19.json``
at the repo root.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import json
import os
import pathlib
import statistics
import threading
import time

from repro.giis.core import GiisBackend
from repro.grip.messages import GrrpMessage
from repro.ldap.backend import DitBackend
from repro.ldap.client import LdapClient
from repro.ldap.dit import DIT, Scope
from repro.ldap.entry import Entry
from repro.ldap.executor import RequestExecutor
from repro.ldap.protocol import SearchRequest
from repro.ldap.server import LdapServer
from repro.net import make_endpoint
from repro.net.clock import WallClock
from repro.net.transport import ConnectionClosed
from repro.testbed.metrics import fmt_table

QUICK = bool(os.environ.get("E19_QUICK"))
LADDER = [256] if QUICK else [1000, 5000]
TARGET = LADDER[-1]  # the ladder rung the reactor must fully sustain
POOL_ROUNDS = 20 if QUICK else 200
N_CHILDREN = 4
WAIT_S = 60.0 if QUICK else 240.0


def small_dit(extra=()):
    dit = DIT()
    dit.add(Entry("o=Grid", objectclass="organization", o="Grid"))
    for entry in extra:
        dit.add(entry)
    return dit


def serve(dit, transport, queue_limit=1024, workers=4):
    executor = RequestExecutor(workers=workers, queue_limit=queue_limit)
    server = LdapServer(DitBackend(dit), executor=executor)
    endpoint = make_endpoint(transport)
    port = endpoint.listen(0, server.handle_connection)
    return endpoint, port, executor


def dial(endpoint, port, attempts=3):
    for attempt in range(attempts):
        try:
            return endpoint.connect(("127.0.0.1", port))
        except ConnectionClosed:
            if attempt == attempts - 1:
                return None
            time.sleep(0.05 * (attempt + 1))


# -- part A: concurrency ladder ---------------------------------------------


def concurrency_run(transport, n_clients):
    """N live connections, one search each, all in flight at once.

    The client side always runs on the reactor (one loop thread for all
    N sockets) so the server transport is the only variable.
    """
    endpoint, port, executor = serve(
        small_dit(), transport, queue_limit=4 * n_clients
    )
    backend_endpoint = make_endpoint("reactor")  # client side
    row = {
        "transport": transport,
        "clients": n_clients,
        "dial_failures": 0,
        "completed": 0,
        "errors": 0,
    }
    clients = []
    try:
        started = time.perf_counter()
        for _ in range(n_clients):
            conn = dial(backend_endpoint, port)
            if conn is None:
                row["dial_failures"] += 1
                continue
            clients.append(LdapClient(conn))
        row["dial_s"] = round(time.perf_counter() - started, 3)

        done = threading.Event()
        lock = threading.Lock()
        outcomes = {"ok": 0, "bad": 0}

        def on_done(result, error):
            with lock:
                outcomes["ok" if error is None else "bad"] += 1
                if outcomes["ok"] + outcomes["bad"] == len(clients):
                    done.set()

        req = SearchRequest(base="o=Grid", scope=Scope.BASE)
        started = time.perf_counter()
        for client in clients:
            try:
                client.search_async(req, on_done)
            except Exception:  # noqa: BLE001 - counts as a failed client
                with lock:
                    outcomes["bad"] += 1
        finished = done.wait(timeout=WAIT_S)
        row["query_s"] = round(time.perf_counter() - started, 3)
        row["completed"] = outcomes["ok"]
        row["errors"] = outcomes["bad"] + row["dial_failures"]
        row["timed_out"] = not finished
    finally:
        backend_endpoint.close()
        endpoint.close()
        executor.shutdown()
    return row


# -- part B: pooled GIIS chaining -------------------------------------------


def chained_query_latencies(pooled):
    """Front GIIS chains a VO-wide search to N child servers over TCP.

    ``pooled=False`` emulates the pre-pool dial-per-query behavior by
    dropping every warm connection between queries.
    """
    clock = WallClock()
    child_endpoints = []
    executors = []
    try:
        child_ports = []
        for i in range(N_CHILDREN):
            entry = Entry(
                f"hn=r{i}, o=Grid", objectclass="computer", hn=f"r{i}"
            )
            ep, port, ex = serve(small_dit([entry]), "reactor", workers=2)
            child_endpoints.append(ep)
            executors.append(ex)
            child_ports.append(port)

        chain_endpoint = make_endpoint("reactor")
        child_endpoints.append(chain_endpoint)
        giis = GiisBackend(
            "o=Grid",
            clock=clock,
            connector=lambda url: chain_endpoint.connect((url.host, url.port)),
            child_timeout=10.0,
        )
        now = clock.now()
        for i, port in enumerate(child_ports):
            giis.apply_grrp(
                GrrpMessage(
                    service_url=f"ldap://127.0.0.1:{port}/",
                    timestamp=now,
                    valid_until=now + 3600.0,
                    metadata={"suffix": f"hn=r{i}, o=Grid"},
                )
            )

        front_executor = RequestExecutor(workers=4, queue_limit=256)
        executors.append(front_executor)
        front = make_endpoint("reactor")
        child_endpoints.append(front)
        server = LdapServer(giis, clock=clock, executor=front_executor)
        port = front.listen(0, server.handle_connection)
        client = LdapClient(front.connect(("127.0.0.1", port)))

        latencies = []
        for _ in range(POOL_ROUNDS):
            if not pooled:
                giis.pool.clear()
            started = time.perf_counter()
            out = client.search("o=Grid", filter="(objectclass=computer)")
            latencies.append(time.perf_counter() - started)
            assert len(out) == N_CHILDREN, out.result.describe()
        dials = giis.metrics.counter("pool.dials").value
        giis.shutdown()
        return latencies, dials
    finally:
        for ep in child_endpoints:
            ep.close()
        for ex in executors:
            ex.shutdown()


def pctl(samples, q):
    return sorted(samples)[min(len(samples) - 1, int(q * len(samples)))]


def test_reactor_scale(report):
    rows = []
    for transport in ("reactor", "threads"):
        for n in LADDER:
            rows.append(concurrency_run(transport, n))

    pooled_lat, pooled_dials = chained_query_latencies(pooled=True)
    dialed_lat, dialed_dials = chained_query_latencies(pooled=False)
    pool_rows = [
        (
            "pooled (warm)",
            round(statistics.median(pooled_lat) * 1000, 3),
            round(pctl(pooled_lat, 0.95) * 1000, 3),
            int(pooled_dials),
        ),
        (
            "dial-per-query",
            round(statistics.median(dialed_lat) * 1000, 3),
            round(pctl(dialed_lat, 0.95) * 1000, 3),
            int(dialed_dials),
        ),
    ]

    text = (
        f"concurrent clients over real loopback sockets "
        f"({'quick mode' if QUICK else 'full mode'})\n"
        + fmt_table(
            ["server transport", "clients", "completed", "errors",
             "dial s", "query s", "timed out"],
            [
                (
                    r["transport"], r["clients"], r["completed"],
                    r["errors"], r["dial_s"], r["query_s"], r["timed_out"],
                )
                for r in rows
            ],
        )
        + f"\n\nGIIS chained VO-wide query to {N_CHILDREN} children, "
        + f"{POOL_ROUNDS} rounds\n"
        + fmt_table(
            ["child connections", "p50 ms", "p95 ms", "dials"], pool_rows
        )
        + "\n\nThe reactor multiplexes every connection on one thread, so"
        "\nthe ladder costs file descriptors, not stacks; the pool turns"
        "\nper-query child dials into a constant number of warm sockets."
    )
    report("E19_reactor_scale", text)

    results = {
        "experiment": "E19",
        "quick": QUICK,
        "concurrency": rows,
        "giis_chaining": {
            "children": N_CHILDREN,
            "rounds": POOL_ROUNDS,
            "pooled": {
                "p50_ms": pool_rows[0][1],
                "p95_ms": pool_rows[0][2],
                "dials": pool_rows[0][3],
            },
            "dial_per_query": {
                "p50_ms": pool_rows[1][1],
                "p95_ms": pool_rows[1][2],
                "dials": pool_rows[1][3],
            },
        },
    }
    if not QUICK:
        out = pathlib.Path(__file__).parents[1] / "BENCH_E19.json"
        out.write_text(json.dumps(results, indent=2) + "\n")

    # The reactor sustains the full ladder: every client answered.
    for r in rows:
        if r["transport"] == "reactor":
            assert r["completed"] == r["clients"], r
            assert not r["timed_out"], r
    # Warm pooled chaining beats dialing every child per query.
    assert pool_rows[0][1] < pool_rows[1][1], pool_rows
    assert pooled_dials <= N_CHILDREN * 2  # bounded warm connections
    assert dialed_dials >= N_CHILDREN * (POOL_ROUNDS - 1)
