"""E17 — distributed tracing overhead and the stitched multi-server tree.

Two claims:

* **Overhead**: the trace hot path (hex-id generation from a seeded RNG,
  one sampling coin flip, slot-based spans, tags skipped when unsampled)
  must be invisible when unsampled — the per-search tracing work at
  ``sample_rate=0`` stays under 5% of the TCP search p50.  The claim is
  asserted on the *intrinsic* cost (the exact extra work a traced search
  performs, timed deterministically in-process) over the measured TCP
  baseline: an A/B comparison of whole TCP searches cannot resolve a 5%
  effect here — two *identical* untraced servers measured back-to-back
  differ by ~4% from scheduler/cache position alone — so the A/B table
  is reported as context, not asserted.
* **Stitching** (ISSUE 4 acceptance): one GIIS + two GRIS children under
  one traced query yield JSONL spans on every server sharing one trace
  id, rendered by the grid-info-trace machinery as a single tree.

Set ``E17_QUICK=1`` (the CI smoke mode) for fewer samples.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import io
import json
import os
import time
import timeit

from repro.gris.core import GrisBackend
from repro.gris.provider import FunctionProvider
from repro.ldap.client import LdapClient
from repro.ldap.dn import DN
from repro.ldap.entry import Entry
from repro.ldap.filter import parse
from repro.ldap.server import LdapServer
from repro.net.clock import WallClock
from repro.net.tcp import TcpEndpoint
from repro.obs import JsonlSink, Tracer
from repro.testbed import GridTestbed
from repro.testbed.metrics import fmt_table
from repro.tools.grid_info_trace import render_traces

QUICK = bool(os.environ.get("E17_QUICK"))
SAMPLES = 300 if QUICK else 2400  # per mode, spread over CHUNKS rounds
CHUNKS = 6 if QUICK else 12
WARMUP = 30 if QUICK else 100
INTRINSIC_ITERS = 2000 if QUICK else 20000
OVERHEAD_BOUND = 0.05


def percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class Mode:
    """One tracing configuration: its own GRIS + server + live client."""

    def __init__(self, name, tracer_factory, tmp_dir):
        self.name = name
        self.latencies = []
        self.round_p50s = []
        clock = WallClock()
        tracer = tracer_factory(clock, tmp_dir, name)
        backend = GrisBackend("hn=bench, o=Grid", clock=clock)
        backend.add_provider(
            FunctionProvider(
                "host",
                lambda: [Entry("hn=bench, o=Grid", objectclass="computer", hn="bench")],
                cache_ttl=3600.0,
            )
        )
        server = LdapServer(backend, clock=clock, tracer=tracer)
        self.endpoint = TcpEndpoint()
        self.client_ep = TcpEndpoint()
        port = self.endpoint.listen(0, server.handle_connection)
        self.client = LdapClient(self.client_ep.connect(("127.0.0.1", port)))

    def run_chunk(self, count, record=True):
        chunk = []
        for _ in range(count):
            started = time.perf_counter()
            out = self.client.search("hn=bench, o=Grid", filter="(objectclass=computer)")
            elapsed = time.perf_counter() - started
            assert len(out.entries) == 1
            chunk.append(elapsed)
        if record:
            self.latencies.extend(chunk)
            self.round_p50s.append(percentile(chunk, 0.50))

    def close(self):
        self.client.unbind()
        self.client_ep.close()
        self.endpoint.close()

    @property
    def p50(self):
        return percentile(self.latencies, 0.50)

    @property
    def p99(self):
        return percentile(self.latencies, 0.99)


def no_tracer(clock, tmp_dir, tag):
    return None


def unsampled_tracer(clock, tmp_dir, tag):
    tracer = Tracer(clock.now, seed=17, sample_rate=0.0, server_id=tag)
    tracer.add_sink(JsonlSink(tmp_dir / f"{tag}.jsonl", server_id=tag))
    return tracer


def sampled_tracer(clock, tmp_dir, tag):
    tracer = Tracer(clock.now, seed=17, sample_rate=1.0, server_id=tag)
    tracer.add_sink(JsonlSink(tmp_dir / f"{tag}.jsonl", server_id=tag))
    return tracer


def intrinsic_cost_us(sample_rate):
    """Seconds of pure tracing work one GRIS search adds, timed
    deterministically in-process: the root ``ldap.search`` span with its
    request tags, the ``gris.collect`` child, and both finishes —
    exactly what ``LdapServer._execute_search`` + ``GrisBackend.search``
    run when a tracer is configured (cache-warm, so no provider span)."""
    tracer = Tracer(WallClock().now, seed=17, sample_rate=sample_rate)
    base = DN.parse("hn=bench, o=Grid")
    query = parse("(objectclass=computer)")

    def traced_search_work():
        root = tracer.start(
            "ldap.search", base=base, scope=2, filter=str(query)
        )
        collect = root.child("gris.collect")
        collect.tag("entries", 1).finish()
        root.tag("entries", 1).tag("code", 0).finish()

    return (
        timeit.timeit(traced_search_work, number=INTRINSIC_ITERS)
        / INTRINSIC_ITERS
        * 1e6
    )


def measure_modes(tmp_dir):
    """p50/p99 per mode, interleaved round-robin so that slow clock/CPU
    drift over the run hits every mode equally instead of biasing
    whichever mode happened to run last."""
    modes = [
        Mode("off", no_tracer, tmp_dir),
        Mode("unsampled", unsampled_tracer, tmp_dir),
        Mode("sampled", sampled_tracer, tmp_dir),
    ]
    try:
        for mode in modes:
            mode.run_chunk(WARMUP, record=False)
        chunk = SAMPLES // CHUNKS
        for round_no in range(CHUNKS):
            # Rotate who goes first: back-to-back A/B runs are biased
            # toward whichever mode runs earlier in the round (cache
            # and scheduler warmth), measurably so even for two
            # *identical* modes — rotation makes the bias symmetric.
            order = modes[round_no % len(modes):] + modes[: round_no % len(modes)]
            for mode in order:
                mode.run_chunk(chunk)
        off, unsampled = modes[0], modes[1]
        # Overhead from per-round p50 deltas (each round's modes ran
        # back-to-back), then the median across rounds: immune to the
        # slow CPU-frequency/GC drift that a whole-run p50 picks up.
        deltas = sorted(
            (u - o) / o for o, u in zip(off.round_p50s, unsampled.round_p50s)
        )
        overhead = deltas[len(deltas) // 2]
        return {mode.name: (mode.p50, mode.p99) for mode in modes}, overhead
    finally:
        for mode in modes:
            mode.close()


def stitched_demo(tmp_dir):
    """One traced query across GIIS + 2 GRIS (simulator); returns the
    rendered tree and the count of distinct trace ids in the exports."""
    tb = GridTestbed(seed=17)
    logs = []
    tracers = {}
    for i, name in enumerate(("giis", "gris-a", "gris-b")):
        path = tmp_dir / f"demo-{name}.jsonl"
        tracer = Tracer(tb.sim.now, seed=400 + i, server_id=name)
        tracer.add_sink(JsonlSink(path, server_id=name))
        logs.append(path)
        tracers[name] = tracer
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO-A", tracer=tracers["giis"])
    for name, host in (("gris-a", "ra"), ("gris-b", "rb")):
        gris = tb.standard_gris(host, f"hn={host}, o=Grid", tracer=tracers[name])
        tb.register(gris, giis, interval=20.0, ttl=60.0, name=host)
    tb.run(1.0)
    client = tb.client("user", giis)
    out = client.search("o=Grid", filter="(objectclass=computer)")
    assert len(out.entries) == 2
    records = []
    for path in logs:
        for line in path.read_text().splitlines():
            records.append(json.loads(line))
    query = [r for r in records if r["name"] != "grrp.intake"]
    buf = io.StringIO()
    rendered = render_traces(query, buf)
    return buf.getvalue(), rendered, len({r["trace_id"] for r in query})


def test_trace_overhead(benchmark, report, tmp_path):
    def run():
        stats, ab_delta = measure_modes(tmp_path)
        unsampled_us = intrinsic_cost_us(0.0)
        sampled_us = intrinsic_cost_us(1.0)
        tree, rendered, trace_ids = stitched_demo(tmp_path)
        return stats, ab_delta, unsampled_us, sampled_us, tree, rendered, trace_ids

    stats, ab_delta, unsampled_us, sampled_us, tree, rendered, trace_ids = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    off, unsampled, sampled = stats["off"], stats["unsampled"], stats["sampled"]
    overhead = unsampled_us / (off[0] * 1e6)
    report(
        "E17_trace_overhead",
        f"{SAMPLES} searches per mode over loopback TCP"
        + ("  [quick mode]" if QUICK else "")
        + "\n"
        + fmt_table(
            ["tracing mode", "p50 (us)", "p99 (us)"],
            [
                ("off", round(off[0] * 1e6, 1), round(off[1] * 1e6, 1)),
                (
                    "on, unsampled (rate=0)",
                    round(unsampled[0] * 1e6, 1),
                    round(unsampled[1] * 1e6, 1),
                ),
                (
                    "fully sampled (rate=1)",
                    round(sampled[0] * 1e6, 1),
                    round(sampled[1] * 1e6, 1),
                ),
            ],
        )
        + f"\n\nintrinsic per-search tracing cost (timed in-process,"
        f" {INTRINSIC_ITERS} iters):"
        f"\n  unsampled: {unsampled_us:.1f} us = {overhead:.1%} of the"
        f" {off[0] * 1e6:.0f} us TCP p50  (claim: < {OVERHEAD_BOUND:.0%})"
        f"\n  sampled:   {sampled_us:.1f} us (before sink/serialization cost)"
        f"\n\nA/B p50 delta unsampled-vs-off over {CHUNKS} rotated rounds:"
        f" {ab_delta:+.1%} — context only; two IDENTICAL untraced servers"
        "\nmeasured back-to-back differ by ~4% here, so whole-search A/B"
        "\ncannot resolve a 5% effect and the claim is asserted on the"
        "\nintrinsic cost above."
        + "\n\nstitched multi-server trace (simulator, 1 GIIS + 2 GRIS):\n"
        + tree
        + "\nClaim check: an unsampled tracer draws ids and nothing else"
        "\n(tags skipped, sinks skipped, no wall entropy — a few us per"
        "\nsearch); the chained query exports spans on all three servers"
        "\nunder ONE trace id, rendered above as a single tree with"
        "\nper-hop times.",
    )
    # the acceptance criterion: one trace id across all three servers
    assert trace_ids == 1
    assert rendered == 1
    assert "(3 servers" in tree and "hop " in tree
    # unsampled tracing must be (close to) free
    assert overhead < OVERHEAD_BOUND
    # unsampled mode exported nothing; sampled mode exported every span
    assert not (tmp_path / "unsampled.jsonl").read_text()
    assert (tmp_path / "sampled.jsonl").read_text()
