"""E18 — indexed DIT storage engine vs. full-scan filter evaluation.

MDS-2 sits on OpenLDAP's indexed backends: "the GIIS backend maintains
indexes over registered information" so queries touch candidate entries,
not the whole tree.  The seed DIT evaluated every filter by walking all
entries.  This experiment measures what the equality/presence posting
lists buy: the same `(system=...)` query against the same tree, planned
through the index vs. linearly scanned, at growing tree sizes.

Set ``E18_QUICK=1`` (the CI smoke mode) for a smaller tree and fewer
repetitions; the ≥5x speedup claim is asserted at the 10k tree in full
mode only, but indexed-faster must hold in both.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import os
import statistics
import time

from repro.ldap.dit import DIT, Scope
from repro.ldap.entry import Entry
from repro.ldap.filter import parse as parse_filter
from repro.testbed.metrics import fmt_table

QUICK = bool(os.environ.get("E18_QUICK"))
SIZES = [1000] if QUICK else [1000, 10000, 50000]
ROUNDS = 5 if QUICK else 15  # timed repetitions per (size, mode)
N_SYSTEMS = 50  # distinct values: equality selects ~N/50 entries


def build_entries(n):
    entries = [Entry("o=Grid", objectclass="organization", o="Grid")]
    for site in range(max(1, n // 100)):
        entries.append(
            Entry(
                f"ou=s{site}, o=Grid",
                objectclass="organizationalUnit",
                ou=f"s{site}",
            )
        )
    for i in range(n):
        entries.append(
            Entry(
                f"hn=h{i}, ou=s{i % max(1, n // 100)}, o=Grid",
                objectclass="GridComputeResource",
                hn=f"h{i}",
                system=f"os{i % N_SYSTEMS}",
                cpucount=str(1 + i % 16),
            )
        )
    return entries


def median_search_s(dit, filt):
    times = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        out = dit.search("o=Grid", Scope.SUBTREE, filt)
        times.append(time.perf_counter() - started)
    return statistics.median(times), len(out)


def test_dit_index(benchmark, report):
    filt = parse_filter("(system=os7)")

    def run():
        rows = []
        for n in SIZES:
            entries = build_entries(n)
            indexed = DIT(index_attrs=("system",))
            indexed.load(entries)
            scan = DIT()
            scan.load(entries)
            scan_s, scan_n = median_search_s(scan, filt)
            idx_s, idx_n = median_search_s(indexed, filt)
            assert idx_n == scan_n == len(
                indexed.search("o=Grid", Scope.SUBTREE, filt)
            )
            assert indexed.stats_planned and scan.stats_scanned
            rows.append((n, idx_n, scan_s, idx_s, scan_s / idx_s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E18_dit_index",
        f"(system=os7) over subtree; median of {ROUNDS} runs"
        + ("  [quick mode]" if QUICK else "")
        + "\n"
        + fmt_table(
            ["entries", "matches", "scan (s)", "indexed (s)", "speedup"],
            [
                (n, hits, f"{s:.6f}", f"{i:.6f}", f"{x:.1f}x")
                for n, hits, s, i, x in rows
            ],
        )
        + "\n\nClaim check: posting-list planning touches only candidate"
        "\nentries, so indexed latency tracks the match count while scan"
        "\nlatency tracks the tree size; results are byte-identical"
        "\n(every candidate is re-verified against the filter).",
    )
    for n, _hits, scan_s, idx_s, speedup in rows:
        assert idx_s < scan_s, f"index slower than scan at n={n}"
        if n >= 10000:
            assert speedup >= 5.0, f"expected >=5x at n={n}, got {speedup:.1f}x"
