"""E6 — §4.3: failure-detection timeliness vs erroneous decisions.

"There is thus a tradeoff to be made, when choosing the criteria used
to decide that a producer has failed, between likelihood of an
erroneous decision and timeliness of failure detection."  The cited
Heartbeat Monitor study [33] found detectors "can operate effectively
despite often high packet loss rates".

The sweep: heartbeat streams over lossy datagram links, timeout as a
multiple of the heartbeat interval.  Measured per cell: false-suspicion
episodes per producer-hour (live producers wrongly suspected) and the
detection latency after a real crash.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from repro.giis.hierarchy import GRRP_DATAGRAM_PORT, DatagramGrrpSender, make_registrant
from repro.grip.failure import FailureDetector
from repro.grip.messages import GrrpMessage
from repro.net.links import LinkModel
from repro.testbed import GridTestbed
from repro.testbed.metrics import fmt_table

INTERVAL = 10.0
OBSERVE = 3600.0  # one producer-hour per cell


def run_cell(loss: float, timeout_factor: float, seed: int):
    tb = GridTestbed(seed=seed, default_link=LinkModel(latency=0.01, loss=loss))
    observer = tb.host("observer")
    detector = FailureDetector(
        tb.sim, timeout=INTERVAL * timeout_factor, check_interval=1.0
    )

    def on_datagram(source, payload):
        try:
            message = GrrpMessage.from_bytes(payload)
        except Exception:  # noqa: BLE001
            return
        detector.heartbeat(message.service_url)

    observer.on_datagram(GRRP_DATAGRAM_PORT, on_datagram)
    detector.start()

    producer = tb.host("producer")
    registrant = make_registrant(
        tb.sim,
        "ldap://producer:2135/",
        "hn=producer",
        DatagramGrrpSender(producer),
        interval=INTERVAL,
        ttl=INTERVAL * 3,
    )
    registrant.register_with("observer")

    # phase 1: producer alive for an hour; count false suspicions
    tb.run(OBSERVE)
    false_per_hour = detector.false_suspicions()

    # phase 2: real crash; measure detection latency
    crash_at = tb.sim.now()
    registrant.stop()
    tb.run(INTERVAL * timeout_factor + 30.0)
    detector.stop()
    latency = detector.detection_latency("ldap://producer:2135/", crash_at)
    return false_per_hour, latency


def run_sweep():
    rows = []
    for loss in (0.0, 0.1, 0.2, 0.4):
        for factor in (1.5, 2.0, 3.0, 5.0):
            false_count, latency = run_cell(loss, factor, seed=int(loss * 10) * 100 + int(factor * 10))
            rows.append(
                (
                    loss,
                    factor,
                    false_count,
                    round(latency, 1) if latency is not None else None,
                )
            )
    return rows


def test_failure_detection_tradeoff(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E6_failure_detector",
        "Failure detection: false suspicions/hour and detection latency\n"
        f"(heartbeat interval {INTERVAL:.0f}s; timeout = factor x interval)\n"
        + fmt_table(
            ["loss", "timeout factor", "false/hour", "detect latency (s)"], rows
        )
        + "\n\nClaim check (§4.3): shorter timeouts detect crashes faster but\n"
        "make more erroneous decisions as loss rises; longer timeouts are\n"
        "accurate even at 40% loss, at the price of detection delay —\n"
        "matching the Heartbeat Monitor study's conclusion [33].",
    )
    cells = {(l, f): (fp, lat) for l, f, fp, lat in rows}

    # every crash is eventually detected
    assert all(lat is not None for _, _, _, lat in rows)
    # no loss -> no erroneous decisions at any timeout
    assert all(cells[(0.0, f)][0] == 0 for f in (1.5, 2.0, 3.0, 5.0))
    # at heavy loss, the shortest timeout errs far more than the longest
    assert cells[(0.4, 1.5)][0] > cells[(0.4, 5.0)][0]
    assert cells[(0.4, 5.0)][0] <= 2
    # timeliness: latency grows with the timeout factor
    assert cells[(0.0, 1.5)][1] < cells[(0.0, 5.0)][1]


def test_detection_latency_bounds(benchmark, report):
    """Detection latency ~ timeout + check interval, independent of loss."""

    def run():
        rows = []
        for factor in (1.5, 3.0, 5.0):
            _, latency = run_cell(0.0, factor, seed=71)
            rows.append((factor, INTERVAL * factor, round(latency, 1)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for factor, timeout, latency in rows:
        # last heartbeat was up to INTERVAL before the crash
        assert timeout <= latency <= timeout + INTERVAL + 2.0
    report(
        "E6_latency_bounds",
        fmt_table(["timeout factor", "timeout (s)", "measured latency (s)"], rows)
        + "\nLatency is bounded by timeout + one heartbeat interval.",
    )
