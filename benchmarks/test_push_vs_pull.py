"""E13 — §6 ablation: pull vs push delivery for monitoring.

"In pull mode, a query-response exchange supports on-demand access to
information; in push mode, an initial subscription request [32]
requests subsequent asynchronous delivery."  Monitoring prefers push:
"we may prefer that the information is delivered asynchronously if and
when specified conditions are met: for example, when an information
value changes by a specified amount."

The scenario: a machine's load jumps at t=307 s; a monitor wants to
notice load5 crossing a threshold.  Strategies compared:

* **pull** at period P ∈ {5, 15, 60} s — message cost until detection
  scales as ~t/P and detection delay as ~P;
* **push** — one subscription whose *filter is the condition*
  (``load5 >= 4``): silence until the condition first holds, then an
  immediate notification.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from repro.ldap.backend import ChangeType
from repro.ldap.dit import Scope
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import SearchRequest
from repro.testbed import GridTestbed
from repro.testbed.metrics import fmt_table

THRESHOLD = 4.0
JUMP_AT = 307.0  # deliberately misaligned with every poll period
DURATION = 600.0


def build(seed):
    tb = GridTestbed(seed=seed)
    gris = tb.standard_gris("m0", "hn=m0, o=Grid", load_mean=0.3, load_ttl=2.0)
    gris.backend.poll_interval = 2.0

    def jump():
        gris.sensor.set_mean(9.0)
        gris.sensor.load1 = gris.sensor.load5 = gris.sensor.load15 = 9.0

    tb.sim.call_later(JUMP_AT, jump)
    return tb, gris


def run_pull(period, seed=21):
    tb, gris = build(seed)
    client = tb.client("monitor", gris)
    m0 = tb.net.stats.messages
    detected = {"at": None, "msgs": None}

    t = period
    while t <= DURATION and detected["at"] is None:
        tb.run(t - tb.sim.now())
        out = client.search(
            "hn=m0, o=Grid", Scope.SUBTREE, "(objectclass=loadaverage)"
        )
        value = float(out.entries[0].first("load5"))
        if value >= THRESHOLD:
            detected["at"] = tb.sim.now()
            detected["msgs"] = tb.net.stats.messages - m0
        t += period
    return detected["msgs"], detected["at"] - JUMP_AT


def run_push(seed=21):
    tb, gris = build(seed)
    client = tb.client("monitor", gris)
    m0 = tb.net.stats.messages
    detected = {"at": None, "msgs": None}

    def on_change(entry, change):
        if change == ChangeType.DELETE:
            return
        if detected["at"] is None:
            detected["at"] = tb.sim.now()
            detected["msgs"] = tb.net.stats.messages - m0

    # §6: "delivered ... if and when specified conditions are met" —
    # the subscription filter IS the condition.
    req = SearchRequest(
        base="hn=m0, o=Grid",
        scope=Scope.SUBTREE,
        filter=parse_filter(
            f"(&(objectclass=loadaverage)(load5>={THRESHOLD}))"
        ),
    )
    client.subscribe(req, on_change, changes_only=False)
    tb.run(DURATION)
    return detected["msgs"], detected["at"] - JUMP_AT


def test_push_vs_pull(benchmark, report):
    def run():
        rows = []
        for period in (5.0, 15.0, 60.0):
            msgs, delay = run_pull(period)
            rows.append((f"pull every {period:.0f}s", msgs, round(delay, 1)))
        msgs, delay = run_push()
        rows.append(("push (filtered psearch)", msgs, round(delay, 1)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E13_push_vs_pull",
        f"Detecting load5 >= {THRESHOLD} after a regime change at t={JUMP_AT:.0f}s\n"
        + fmt_table(
            ["strategy", "messages until detection", "detection delay (s)"], rows
        )
        + "\n\nClaim check (§6): pull trades message cost (~t/P) against delay\n"
        "(~P); a condition-filtered subscription detects as fast as the\n"
        "fastest pull while staying silent until the condition holds —\n"
        "why GRIP supports both delivery models and monitoring prefers\n"
        "asynchronous delivery.",
    )
    by = {r[0]: r for r in rows}
    fast_pull = by["pull every 5s"]
    slow_pull = by["pull every 60s"]
    push = by["push (filtered psearch)"]
    # pull tradeoff: more messages <-> less delay
    assert fast_pull[1] > slow_pull[1] * 5
    assert fast_pull[2] < slow_pull[2]
    # push: near-zero traffic until detection, delay comparable to the
    # fastest pull (bounded by sensor TTL + subscription poll interval)
    assert push[1] <= 5
    assert push[2] <= fast_pull[2] + 5.0
