"""E11 — §7: the four provider/directory security postures + signed GRRP.

The paper enumerates four information-provider policies; the harness
runs the same query population against each and reports exactly what an
anonymous user, a VO member, and a privileged user can see.  It also
exercises both GRRP authenticity mechanisms (§7: secure channel
identity vs. per-message signatures) and wall-clocks the crypto
operations.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import random

from repro.grip.messages import GrrpMessage
from repro.ldap.backend import DitBackend
from repro.ldap.dit import DIT
from repro.ldap.entry import Entry
from repro.ldap.server import LdapServer
from repro.net.sim import Simulator
from repro.net.simnet import SimNetwork
from repro.ldap.client import LdapClient
from repro.security import (
    CertificateAuthority,
    GsiAuthenticator,
    TrustStore,
    attribute_restricted_policy,
    authenticated_policy,
    existence_only_policy,
    make_token,
    open_policy,
    sign_message,
    verify_message,
)
from repro.testbed.metrics import fmt_table

RNG = random.Random(2024)
BITS = 256
CA = CertificateAuthority("CN=GridCA", rng=RNG, bits=BITS)
ALICE = CA.issue("CN=alice", rng=RNG, bits=BITS)  # privileged VO member
ROGUE_CA = CertificateAuthority("CN=RogueCA", rng=RNG, bits=BITS)
MALLORY = ROGUE_CA.issue("CN=alice", rng=RNG, bits=BITS)
TRUST = TrustStore([CA.certificate])


def host_entries():
    return [
        Entry(
            "hn=hostX, o=Grid",
            objectclass="computer",
            hn="hostX",
            system="linux redhat 6.2",
            load5="0.7",
        ),
        Entry(
            "hn=hostY, o=Grid",
            objectclass="computer",
            hn="hostY",
            system="mips irix",
            load5="3.4",
        ),
    ]


def serve(policy):
    sim = Simulator(seed=0)
    net = SimNetwork(sim)
    server_node = net.add_node("server")
    user_node = net.add_node("user")
    dit = DIT()
    for e in host_entries():
        dit.add(e)
    auth = GsiAuthenticator(TRUST, "ldap://server:389")
    server = LdapServer(
        DitBackend(dit), authenticator=auth, policy=policy, clock=sim
    )
    server_node.listen(389, server.handle_connection)

    def client(credential=None):
        c = LdapClient(user_node.connect(("server", 389)), driver=sim.step)
        if credential is not None:
            token = make_token(credential, "ldap://server:389", now=sim.now())
            c.bind(mechanism="GSI", credentials=token)
        return c

    return sim, client


def describe(search_result):
    if not search_result.entries:
        return "nothing"
    attrs = sorted({a.lower() for e in search_result.entries for a in e.attribute_names()})
    return f"{len(search_result.entries)} entries: {','.join(attrs)}"


def run_four_modes():
    """For each §7 mode: what does each principal see, and can load5
    be used as a search predicate?"""
    modes = [
        (
            "1 trusted directory / VO-common policy",
            authenticated_policy(),
        ),
        (
            "2 attribute-restricted (OS public, load private)",
            attribute_restricted_policy(
                public_attrs=["objectclass", "hn", "system"],
                restricted_attrs=["load5"],
                allowed_identities=["CN=alice"],
            ),
        ),
        ("3 existence only", existence_only_policy()),
        ("4 no restriction (anonymous ok)", open_policy()),
    ]
    rows = []
    for label, policy in modes:
        sim, client = serve(policy)
        anon = client()
        member = client(ALICE)
        anon_all = anon.search("o=Grid", filter="(objectclass=*)", check=False)
        anon_load = anon.search("o=Grid", filter="(load5<=99)", check=False)
        member_all = member.search("o=Grid", filter="(objectclass=*)", check=False)
        rows.append(
            (
                label,
                describe(anon_all),
                len(anon_load.entries),
                describe(member_all),
            )
        )
    return rows


def test_four_security_modes(benchmark, report):
    rows = benchmark.pedantic(run_four_modes, rounds=1, iterations=1)
    report(
        "E11_security_modes",
        "The four §7 provider policies, as seen over the wire\n"
        + fmt_table(
            ["mode", "anonymous sees", "anon (load5<=99) hits", "CN=alice sees"],
            rows,
        )
        + "\n\nClaim check: mode 2's load average is neither returned to nor\n"
        "searchable by anonymous users ('a query for machines running\n"
        "RedHat Linux 6.2 with a load of less than 1.0' needs the second,\n"
        "authenticated round); mode 3 only enumerates; mode 4 needs no auth.",
    )
    by_mode = {r[0][:1]: r for r in rows}
    assert by_mode["1"][1] == "nothing"
    assert "load5" not in by_mode["2"][1] and by_mode["2"][2] == 0
    assert "load5" in by_mode["2"][3]
    assert by_mode["3"][1].endswith("objectclass")
    assert by_mode["4"][1] == by_mode["4"][3]


def test_signed_grrp_registrations(benchmark, report):
    """§7: 'we can cryptographically sign each GRRP message with the
    credentials of the registering entity' — and the receiving
    directory can apply access control on the verified identity."""

    def run():
        message = GrrpMessage(
            service_url="ldap://gris1:2135/",
            timestamp=10.0,
            valid_until=40.0,
            metadata={"vo": "VO-A"},
        )
        signed = sign_message(ALICE, message.to_bytes())
        identity, payload = verify_message(signed, TRUST, now=12.0)
        ok = GrrpMessage.from_bytes(payload) == message and identity == "CN=alice"

        forged = sign_message(MALLORY, message.to_bytes())
        rejected = False
        try:
            verify_message(forged, TRUST, now=12.0)
        except Exception:  # noqa: BLE001
            rejected = True

        tampered = bytearray(signed)
        idx = tampered.find(b"gris1")
        tampered[idx : idx + 5] = b"evil1"
        tamper_rejected = False
        try:
            verify_message(bytes(tampered), TRUST, now=12.0)
        except Exception:  # noqa: BLE001
            tamper_rejected = True
        return ok, rejected, tamper_rejected, len(signed), len(message.to_bytes())

    ok, rejected, tamper_rejected, signed_size, plain_size = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert ok and rejected and tamper_rejected
    report(
        "E11_signed_grrp",
        fmt_table(
            ["case", "outcome"],
            [
                ("valid signature from trusted CA", "accepted as CN=alice"),
                ("same name, rogue CA", "rejected"),
                ("payload tampered in flight", "rejected"),
                ("envelope overhead", f"{plain_size} -> {signed_size} bytes"),
            ],
        ),
    )


def test_bench_token_verify(benchmark):
    token = make_token(ALICE, "svc", now=100.0)
    result = benchmark(
        lambda: __import__("repro.security", fromlist=["verify_token"]).verify_token(
            token, TRUST, "svc", now=101.0
        )
    )
    assert result == "CN=alice"


def test_bench_sign_message(benchmark):
    payload = b"x" * 256
    signed = benchmark(sign_message, ALICE, payload)
    assert verify_message(signed, TRUST, now=1.0)[1] == payload
