"""F2 — Figure 2: the architecture's three interactions.

Figure 2 shows users (a) querying aggregate directories to *discover*
entities (GRIP to the GIIS), (b) *looking up* individual entities
directly at their information providers (GRIP to a GRIS), while
(c) providers *register* with directories (GRRP).  This harness runs
all three flows on one VO and reports the virtual latency and message
cost of each, confirming the intended cost structure: discovery pays a
directory round-trip plus fan-out; direct lookup is a single
round-trip; registration is cheap background traffic.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from scenarios import flat_vo

from repro.ldap.dit import Scope
from repro.testbed.metrics import Series, fmt_table


def run_architecture_flows(n=6, queries=20):
    tb, giis, children = flat_vo(seed=2, n=n)
    user = "user"
    discovery = Series("discovery")
    lookup = Series("lookup")
    discovery_msgs = Series("dmsgs")
    lookup_msgs = Series("lmsgs")

    client = tb.client(user, giis)
    direct = {c.host: tb.client(user, c) for c in children}

    for i in range(queries):
        target = children[i % n].host
        # (a) discovery through the aggregate directory
        m0, t0 = tb.net.stats.messages, tb.sim.now()
        out = client.search(
            "o=Grid", Scope.SUBTREE, f"(&(objectclass=computer)(hn={target}))"
        )
        discovery.add(tb.sim.now() - t0)
        discovery_msgs.add(tb.net.stats.messages - m0)
        assert len(out) == 1

        # (b) direct lookup at the provider named by the discovery
        m0, t0 = tb.net.stats.messages, tb.sim.now()
        got = direct[target].search(
            f"hn={target}, o=Grid", Scope.BASE, "(objectclass=*)"
        )
        lookup.add(tb.sim.now() - t0)
        lookup_msgs.add(tb.net.stats.messages - m0)
        assert len(got) == 1

    # (c) registration traffic rate: run quietly and count GRRP adds
    m0, t0 = tb.net.stats.messages, tb.sim.now()
    tb.run(60.0)
    reg_msgs_per_min = tb.net.stats.messages - m0
    return discovery, lookup, discovery_msgs, lookup_msgs, reg_msgs_per_min, n


def test_fig2_flows(benchmark, report):
    (
        discovery,
        lookup,
        dmsgs,
        lmsgs,
        reg_rate,
        n,
    ) = benchmark.pedantic(run_architecture_flows, rounds=1, iterations=1)
    # discovery fans out to providers: costs more than a direct lookup
    assert discovery.mean > lookup.mean
    assert dmsgs.mean > lmsgs.mean
    rows = [
        ("discovery via GIIS (GRIP)", discovery.mean * 1000, dmsgs.mean),
        ("direct lookup at GRIS (GRIP)", lookup.mean * 1000, lmsgs.mean),
        ("registration (GRRP, msgs/min/VO)", "-", reg_rate),
    ]
    report(
        "F2_architecture",
        f"Figure 2 interaction costs ({n} providers in the VO)\n"
        + fmt_table(["interaction", "latency (ms, virtual)", "messages"], rows)
        + "\n\nClaim check: discovery pays the directory fan-out; refined\n"
        "lookups go straight to the authoritative provider for one RTT;\n"
        "GRRP registration is cheap, steady background traffic.",
    )


def test_fig2_discovery_then_lookup_pattern(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """§4.1's broker pattern: search roughly, then refine by enquiry."""
    tb, giis, children = flat_vo(seed=3, n=5)
    client = tb.client("broker", giis)
    rough = client.search(
        "o=Grid", Scope.SUBTREE, "(&(objectclass=computer)(cpucount>=4))"
    )
    assert len(rough) == 5
    # refine: direct enquiry for current load at each discovered host
    loads = {}
    for entry in rough:
        host = entry.first("hn")
        direct = tb.client("broker", next(c for c in children if c.host == host))
        got = direct.search(
            f"hn={host}, o=Grid", Scope.SUBTREE, "(objectclass=loadaverage)"
        )
        loads[host] = float(got.entries[0].first("load5"))
    assert len(loads) == 5
    best = min(loads, key=loads.get)
    report(
        "F2_discovery_refine",
        "discovery -> enquiry refinement (broker pattern, §4.1)\n"
        + "\n".join(f"  {h}: load5={v:.2f}" for h, v in sorted(loads.items()))
        + f"\n  selected: {best}",
    )
