"""E7 — §10.3: per-provider TTL caching.

"To control the intrusiveness of GRIS operation, improve response time,
and maximize deployment flexibility, each provider's results may be
cached for a configurable period of time to reduce the number of
provider invocations ... the appropriate value depends greatly on both
the dynamism of the modeled resource and the cost of the provider
mechanism."

The sweep: one GRIS with an expensive script-style provider, a Poisson
query stream, TTL ∈ {0, 1, 5, 15, 60} s.  Measured: provider
invocations (intrusiveness), total provider cost, mean staleness of
delivered data, and cache hit rate.  Also the module-vs-script
provider-style comparison §10.3 motivates.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import random

from repro.gris import GrisBackend, ScriptProvider
from repro.ldap.backend import RequestContext
from repro.ldap.dit import Scope
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import SearchRequest
from repro.net.sim import Simulator
from repro.testbed.metrics import Series, fmt_table
from repro.testbed.workload import poisson_arrivals

QUERY_RATE = 1.0  # queries/second
DURATION = 600.0
SCRIPT_COST = 0.5  # seconds of fork+exec per invocation


def run_ttl(ttl: float, seed: int):
    sim = Simulator(seed=seed)
    counter = {"n": 0}

    def script() -> str:
        counter["n"] += 1
        return (
            "dn: perf=load, hn=h\n"
            "objectclass: perf\n"
            "perf: load\n"
            f"load5: {counter['n'] % 40 / 10:.1f}\n"
        )

    provider = ScriptProvider("expensive", script, cache_ttl=ttl, cost=SCRIPT_COST)
    gris = GrisBackend("hn=h, o=Grid", clock=sim)
    gris.add_provider(provider)
    req = SearchRequest(
        base="hn=h, o=Grid",
        scope=Scope.SUBTREE,
        filter=parse_filter("(objectclass=perf)"),
    )
    staleness = Series()
    queries = {"n": 0}
    rng = random.Random(seed)

    def query():
        queries["n"] += 1
        outcome = gris.search(req, RequestContext(now=sim.now()))
        for entry in outcome.entries:
            ts = entry.timestamp()
            if ts is not None:
                staleness.add(sim.now() - ts)

    poisson_arrivals(sim, QUERY_RATE, query, rng, until=DURATION)
    sim.run_until(DURATION)
    return {
        "ttl": ttl,
        "queries": queries["n"],
        "invocations": provider.invocations,
        "cost": provider.total_cost,
        "staleness": staleness.mean,
        "hit_rate": gris.cache.stats.hit_rate,
    }


def test_cache_ttl_sweep(benchmark, report):
    def run():
        return [run_ttl(ttl, seed=int(ttl * 10) + 3) for ttl in (0.0, 1.0, 5.0, 15.0, 60.0)]

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            c["ttl"],
            c["queries"],
            c["invocations"],
            round(c["cost"], 1),
            round(c["staleness"], 2),
            round(c["hit_rate"], 3),
        )
        for c in cells
    ]
    report(
        "E7_gris_caching",
        f"GRIS per-provider cache TTL sweep ({QUERY_RATE:.0f} q/s for {DURATION:.0f}s,\n"
        f"script provider costing {SCRIPT_COST}s per invocation)\n"
        + fmt_table(
            ["ttl (s)", "queries", "invocations", "provider cost (s)", "mean staleness (s)", "hit rate"],
            rows,
        )
        + "\n\nClaim check: TTL trades intrusiveness (invocations, cost) against\n"
        "freshness (staleness grows ~TTL/2); TTL=0 invokes per query.",
    )
    by_ttl = {c["ttl"]: c for c in cells}
    # TTL=0: one invocation per query, zero staleness
    assert by_ttl[0.0]["invocations"] == by_ttl[0.0]["queries"]
    assert by_ttl[0.0]["staleness"] == 0.0
    # invocations fall monotonically with TTL; staleness rises
    ttls = [0.0, 1.0, 5.0, 15.0, 60.0]
    invs = [by_ttl[t]["invocations"] for t in ttls]
    assert invs == sorted(invs, reverse=True)
    stale = [by_ttl[t]["staleness"] for t in ttls]
    assert stale == sorted(stale)
    # a 60s TTL cuts provider cost by >95% at this query rate
    assert by_ttl[60.0]["cost"] < 0.05 * by_ttl[0.0]["cost"]


def test_module_vs_script_provider_cost(benchmark, report):
    """§10.3's two API variants: in-process modules avoid per-invocation
    process-creation overhead entirely."""
    from repro.gris import FunctionProvider
    from repro.ldap.entry import Entry

    def run():
        sim = Simulator(seed=4)
        module = FunctionProvider(
            "module", lambda: [Entry("perf=l", objectclass="perf", perf="l")], cache_ttl=0.0
        )
        script = ScriptProvider(
            "script",
            lambda: "dn: perf=l\nobjectclass: perf\nperf: l\n",
            cache_ttl=0.0,
            cost=SCRIPT_COST,
        )
        gris = GrisBackend("o=X", clock=sim)
        gris.add_provider(module)
        gris.add_provider(script)
        req = SearchRequest(base="o=X", scope=Scope.SUBTREE)
        for _ in range(100):
            gris.search(req, RequestContext())
        return module.invocations, script.invocations, script.total_cost

    module_inv, script_inv, script_cost = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert module_inv == script_inv == 100
    assert script_cost == 100 * SCRIPT_COST
    report(
        "E7_module_vs_script",
        fmt_table(
            ["provider style", "invocations", "process-creation cost (s)"],
            [("loadable module", module_inv, 0.0), ("shell script", script_inv, script_cost)],
        )
        + "\nModules 'execute without the overhead of server-side process\n"
        "creation' (§10.3); scripts pay it every cache miss.",
    )
