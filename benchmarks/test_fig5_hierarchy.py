"""F5 — Figure 5: hierarchical discovery.

"Two resource centers and one individual are contributing resources to
a VO.  The three aggregate directories that form the associated
hierarchical discovery service are organized in a way that matches this
logical structure.  Notice how resource names can be used to scope
searches to particular organizations, if this is desired;
alternatively, searches can be directed to the root directory without
concern for scope."

The harness builds exactly that topology (center dirs for O1 and O2, a
VO directory above them, plus one individually-registered resource) and
verifies both search modes, reporting their message costs — scoping is
what keeps discovery cheap as the grid grows.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from repro.testbed import GridTestbed
from repro.testbed.metrics import fmt_table


def build_figure5(tb: GridTestbed, o1_hosts=3, o2_hosts=2):
    vo = tb.add_giis("vo-dir", "o=Grid", vo_name="VO")
    center1 = tb.add_giis("center1", "o=O1, o=Grid", vo_name="Center-1")
    center2 = tb.add_giis("center2", "o=O2, o=Grid", vo_name="Center-2")
    tb.register(center1, vo, interval=15.0, ttl=45.0, name="center1")
    tb.register(center2, vo, interval=15.0, ttl=45.0, name="center2")
    for org, center, count in (("O1", center1, o1_hosts), ("O2", center2, o2_hosts)):
        for i in range(count):
            host = f"{org.lower()}-r{i + 1}"
            gris = tb.standard_gris(host, f"hn={host}, o={org}, o=Grid")
            tb.register(gris, center, interval=15.0, ttl=45.0, name=host)
    solo = tb.standard_gris("solo-r1", "hn=solo-r1, o=Grid")
    tb.register(solo, vo, interval=15.0, ttl=45.0, name="solo-r1")
    tb.run(1.0)
    return vo, center1, center2


def run_hierarchy(seed=5):
    tb = GridTestbed(seed=seed)
    vo, center1, center2 = build_figure5(tb)
    client = tb.client("user", vo)
    rows = []

    def measure(label, base, filt, via=client):
        m0, t0 = tb.net.stats.messages, tb.sim.now()
        out = via.search(base, filter=filt)
        rows.append(
            (
                label,
                base,
                len(out.entries),
                tb.net.stats.messages - m0,
                (tb.sim.now() - t0) * 1000,
            )
        )
        return out

    # root search, no concern for scope: all six resources
    out = measure("root, all resources", "o=Grid", "(objectclass=computer)")
    assert sorted(e.first("hn") for e in out) == [
        "o1-r1",
        "o1-r2",
        "o1-r3",
        "o2-r1",
        "o2-r2",
        "solo-r1",
    ]

    # name-scoped search: only O1's subtree is touched
    c2_before = center2.backend.stats_chained
    out = measure("scoped to O1", "o=O1, o=Grid", "(objectclass=computer)")
    assert len(out.entries) == 3
    assert center2.backend.stats_chained == c2_before  # O2 never consulted

    # going straight to a center directory works too
    direct = tb.client("user", center1)
    out = measure("direct at center1", "o=O1, o=Grid", "(objectclass=computer)", via=direct)
    assert len(out.entries) == 3

    # point query from the root resolves through two directory levels
    out = measure("point query from root", "o=Grid", "(hn=o2-r2)")
    assert len(out.entries) == 1
    assert str(out.entries[0].dn) == "hn=o2-r2, o=O2, o=Grid"
    return rows


def test_fig5_hierarchical_discovery(benchmark, report):
    rows = benchmark.pedantic(run_hierarchy, rounds=1, iterations=1)
    report(
        "F5_hierarchy",
        "Figure 5: hierarchical discovery (2 centers + 1 individual)\n"
        + fmt_table(
            ["query", "base", "entries", "messages", "latency (ms, virtual)"],
            [(a, b, c, d, round(e, 2)) for a, b, c, d, e in rows],
        )
        + "\n\nClaim check: root searches need no scope knowledge; name-scoped\n"
        "searches touch only the matching organization's directory.",
    )


def test_fig5_scoped_cost_independent_of_other_orgs(benchmark, report):
    """Scoped query cost stays flat as unrelated organizations grow."""

    def run():
        rows = []
        for extra_o2 in (2, 8, 16):
            tb = GridTestbed(seed=extra_o2)
            vo, center1, center2 = build_figure5(tb, o1_hosts=3, o2_hosts=extra_o2)
            client = tb.client("user", vo)
            m0 = tb.net.stats.messages
            out = client.search("o=O1, o=Grid", filter="(objectclass=computer)")
            assert len(out.entries) == 3
            rows.append((extra_o2, tb.net.stats.messages - m0))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    costs = [c for _, c in rows]
    assert max(costs) - min(costs) <= 2  # flat: scoping prunes the other org
    report(
        "F5_scoped_cost",
        "Scoped O1 query cost vs size of the *other* organization\n"
        + fmt_table(["O2 size (hosts)", "messages for O1 query"], rows)
        + "\n\nClaim check: 'scoping allows many independent VOs to co-exist\n"
        "without adversely affecting their individual discovery performance'.",
    )
