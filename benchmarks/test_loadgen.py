"""E21 — wire-path fast lanes under MDS2-style load.

The PR-8 fast lanes (zero-copy BER decode, interned DN parsing, cached
entry encoding) only matter if they move the numbers the MDS studies
cared about: search throughput and tail latency under hundreds of
concurrent users.  This bench drives the :mod:`loadgen` harness against

* a single GRIS at 1k/10k entries × 50/500 closed-loop users, fast
  lanes on vs off (off = ``encode_cache=False`` + DN intern cache
  drained — the pre-PR service path; the zero-copy decoder is active
  in both, its equivalence being covered by tests/test_fastpath.py);
* the same GRIS under a paced open-loop arrival process;
* M GRIS behind a GIIS front end, the Figure-5 hierarchy.

Client-observed percentiles are cross-checked against server-side
``ldap.search`` span durations (PR-4 tracing) and the server metrics
registry (PR-1): codec frame counts, encode-cache hit rates, DN-cache
hit rates all land in the report.

Set ``E21_QUICK=1`` for the CI smoke ladder.  Full runs write
machine-readable results to ``BENCH_E21.json`` at the repo root,
including the baseline numbers the ≥1.5x acceptance gate compares
against.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import json
import os
import pathlib
import subprocess
import time

from loadgen import Workload, build_vo, closed_loop, open_loop, populate_gris
from repro.ldap.backend import DitBackend
from repro.ldap.dit import DIT, Scope
from repro.ldap.dn import configure_intern_cache, intern_cache_stats
from repro.ldap.executor import RequestExecutor
from repro.ldap.server import LdapServer
from repro.net import make_endpoint
from repro.net.transport import ConnectionClosed
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RingSink, Tracer
from repro.testbed.metrics import fmt_table

QUICK = bool(os.environ.get("E21_QUICK"))

# (total entries, closed-loop users, requests per user)
GRID = (
    [(210, 10, 5)]
    if QUICK
    else [(1008, 50, 40), (1008, 500, 8), (10080, 50, 40), (10080, 500, 10)]
)
CHILDREN_PER_HOST = 20
OPEN_RATE = 50.0 if QUICK else 400.0
OPEN_SECONDS = 1.0 if QUICK else 4.0
TIMEOUT_S = 120.0 if QUICK else 600.0


def host_workload(n_hosts: int) -> Workload:
    """The MDS staple: "everything about host X" — indexed equality
    returning the host group, with a subtree/onelevel scope mix."""
    targets = [f"(hn=host{h})" for h in range(0, n_hosts, max(1, n_hosts // 24))]
    return Workload(
        name="host-group-lookup",
        base="o=Grid",
        filters=tuple((f, 1.0) for f in targets),
        scopes=((Scope.SUBTREE, 0.8), (Scope.ONELEVEL, 0.2)),
    )


class Gris:
    """One GRIS on the reactor with metrics + sampled tracing wired."""

    def __init__(self, n_hosts: int, fast: bool):
        self.dit = DIT(index_attrs=["hn"])
        self.entries = populate_gris(self.dit, n_hosts, CHILDREN_PER_HOST)
        self.metrics = MetricsRegistry()
        self.sink = RingSink(8192)
        self.tracer = Tracer(
            time.time, sinks=(self.sink,), seed=7, sample_rate=0.05
        )
        self.executor = RequestExecutor(workers=4, queue_limit=8192)
        self.server = LdapServer(
            DitBackend(self.dit),
            executor=self.executor,
            metrics=self.metrics,
            tracer=self.tracer,
            encode_cache=fast,
        )
        self.endpoint = make_endpoint("reactor")
        self.port = self.endpoint.listen(0, self.server.handle_connection)
        self.client_endpoint = make_endpoint("reactor")

    def connect(self):
        for attempt in range(3):
            try:
                return self.client_endpoint.connect(("127.0.0.1", self.port))
            except ConnectionClosed:
                if attempt == 2:
                    raise
                time.sleep(0.05 * (attempt + 1))

    def span_p50_ms(self) -> float:
        durations = sorted(s.duration for s in self.sink.spans("ldap.search"))
        if not durations:
            return 0.0
        return round(durations[len(durations) // 2] * 1000, 3)

    def metric_sample(self) -> dict:
        c = self.metrics.counter
        return {
            "codec_messages": c("ldap.codec.messages").value,
            "codec_bytes": c("ldap.codec.bytes").value,
            "encode_hits": c("ldap.encode.cache.hits").value,
            "encode_misses": c("ldap.encode.cache.misses").value,
            "encode_uncached": c("ldap.encode.cache.uncached").value,
            "dn_cache": dict(intern_cache_stats()),
        }

    def close(self):
        self.client_endpoint.close()
        self.endpoint.close()
        self.executor.shutdown()


def run_single_gris(entries: int, users: int, requests: int, fast: bool):
    """One closed-loop run; returns (stats summary + server-side view)."""
    n_hosts = entries // (CHILDREN_PER_HOST + 1)
    base_capacity = intern_cache_stats()["capacity"]
    configure_intern_cache(0)  # drain so runs never share warm state
    if fast:
        configure_intern_cache(base_capacity or 4096)
    gris = Gris(n_hosts, fast)
    try:
        workload = host_workload(n_hosts)
        stats = closed_loop(
            gris.connect, workload, users, requests, timeout_s=TIMEOUT_S
        )
        out = stats.summary()
        out["server_span_p50_ms"] = gris.span_p50_ms()
        out["server_metrics"] = gris.metric_sample()
        return workload, out
    finally:
        gris.close()
        configure_intern_cache(0)
        configure_intern_cache(base_capacity)


def git_describe() -> str:
    try:
        return subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=pathlib.Path(__file__).parents[1],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:  # noqa: BLE001 - describe is metadata, not a gate
        return "unknown"


def test_loadgen_fast_lanes(report):
    runs = []
    for entries, users, requests in GRID:
        workload, base = run_single_gris(entries, users, requests, fast=False)
        _, fastr = run_single_gris(entries, users, requests, fast=True)
        speedup = (
            round(fastr["throughput_rps"] / base["throughput_rps"], 2)
            if base["throughput_rps"]
            else 0.0
        )
        runs.append(
            {
                "workload": workload.describe(),
                "entries": entries,
                "users": users,
                "requests_per_user": requests,
                "baseline": base,
                "fastpath": fastr,
                "speedup": speedup,
            }
        )

    # open loop: paced arrivals against the fast-lane server
    n_hosts = GRID[-1][0] // (CHILDREN_PER_HOST + 1)
    gris = Gris(n_hosts, fast=True)
    try:
        open_stats = open_loop(
            gris.connect,
            host_workload(n_hosts),
            rate_rps=OPEN_RATE,
            duration_s=OPEN_SECONDS,
            connections=16 if QUICK else 64,
        )
    finally:
        gris.close()

    # the Figure-5 hierarchy: M GRIS behind one GIIS front end
    n_gris = 2 if QUICK else 4
    vo = build_vo(n_gris, hosts_per_gris=6, children_per_host=4)
    vo_endpoint = make_endpoint("reactor")
    try:
        giis_workload = Workload(
            name="vo-wide-host-lookup",
            base="o=Grid",
            filters=(("(hn=host2)", 1.0),),
            scopes=((Scope.SUBTREE, 1.0),),
        )
        vo_stats = closed_loop(
            lambda: vo_endpoint.connect(("127.0.0.1", vo.giis_port)),
            giis_workload,
            users=8 if QUICK else 32,
            requests_per_user=4,
            timeout_s=TIMEOUT_S,
        )
    finally:
        vo_endpoint.close()
        vo.close()

    rows = [
        (
            r["entries"],
            r["users"],
            label,
            side["throughput_rps"],
            side["percentiles"]["p50_ms"],
            side["percentiles"]["p95_ms"],
            side["percentiles"]["p99_ms"],
            side["errors"],
        )
        for r in runs
        for label, side in (("baseline", r["baseline"]), ("fast", r["fastpath"]))
    ]
    speed_rows = [
        (r["entries"], r["users"], f"{r['speedup']}x") for r in runs
    ]
    text = (
        f"closed-loop host-group searches, fast lanes off vs on "
        f"({'quick mode' if QUICK else 'full mode'})\n"
        + fmt_table(
            ["entries", "users", "lanes", "req/s", "p50 ms", "p95 ms",
             "p99 ms", "errors"],
            rows,
        )
        + "\n\nthroughput gain from the fast lanes\n"
        + fmt_table(["entries", "users", "speedup"], speed_rows)
        + "\n\nopen loop (paced arrivals, fast lanes on): "
        + f"offered {open_stats.offered_rps} req/s, served "
        + f"{open_stats.throughput_rps} req/s, "
        + f"p99 {open_stats.percentiles()['p99_ms']} ms\n"
        + f"GIIS front over {n_gris} GRIS: {vo_stats.throughput_rps} req/s, "
        + f"p95 {vo_stats.percentiles()['p95_ms']} ms, "
        + f"errors {vo_stats.errors}\n"
        + "\nThe cached-entry fast lane turns the per-user re-encode of"
        "\neach host group into one encode amortized across the fleet;"
        "\nthe DN intern cache does the same for the parse of every"
        "\nrepeated base/entry DN on the request path."
    )
    report("E21_loadgen_fast_lanes", text)

    results = {
        "experiment": "E21",
        "quick": QUICK,
        "git": git_describe(),
        "children_per_host": CHILDREN_PER_HOST,
        "runs": runs,
        "open_loop": open_stats.summary(),
        "giis_topology": {
            "gris": n_gris,
            **vo_stats.summary(),
        },
    }
    if not QUICK:
        out = pathlib.Path(__file__).parents[1] / "BENCH_E21.json"
        out.write_text(json.dumps(results, indent=2) + "\n")

    # Every virtual user completed its full request budget, error-free.
    for r in runs:
        for side in ("baseline", "fastpath"):
            assert r[side]["errors"] == 0, r
            assert r[side]["completed"] == r["users"] * r["requests_per_user"], r
    assert vo_stats.errors == 0
    assert open_stats.completed > 0 and open_stats.errors == 0

    # The fast lanes actually engaged: cache hits dominate on the fast
    # side, and the baseline side never touched the encode cache.
    for r in runs:
        fast_m = r["fastpath"]["server_metrics"]
        base_m = r["baseline"]["server_metrics"]
        assert fast_m["encode_hits"] > fast_m["encode_misses"], fast_m
        assert base_m["encode_hits"] == 0 and base_m["encode_misses"] == 0

    # Acceptance gate: ≥1.5x throughput on the big closed-loop rung.
    if not QUICK:
        big = [r for r in runs if r["entries"] >= 10000 and r["users"] >= 500]
        assert big and big[0]["speedup"] >= 1.5, [
            (r["entries"], r["users"], r["speedup"]) for r in runs
        ]
