"""Scenario builders shared by the experiment benchmarks."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net.links import LinkModel
from repro.testbed import Deployment, GridTestbed


def overlapping_vos(
    seed: int = 0,
    per_side: int = 3,
) -> Tuple[GridTestbed, Deployment, Deployment, Deployment, Dict[str, List[str]]]:
    """The Figure 1 scene: two VOs over partially overlapping resources.

    Side 1 and side 2 are network sites.  VO-A's directory lives on
    side 1 and aggregates resources from both sides.  VO-B's directory
    is replicated, one replica per side, and also spans both sides.
    Some resources belong to both VOs.
    """
    tb = GridTestbed(seed=seed, default_link=LinkModel(latency=0.005))
    # dispersed users, one per side (the stick figures of Figure 1)
    tb.host("user-s1", site="side1")
    tb.host("user-s2", site="side2")
    vo_a = tb.add_giis("giis-a", "o=Grid", site="side1", vo_name="VO-A")
    vo_b1 = tb.add_giis("giis-b1", "o=Grid", site="side1", vo_name="VO-B")
    vo_b2 = tb.add_giis("giis-b2", "o=Grid", site="side2", vo_name="VO-B")

    members: Dict[str, List[str]] = {"VO-A": [], "VO-B": []}
    for side in (1, 2):
        for i in range(per_side):
            host = f"s{side}r{i}"
            gris = tb.standard_gris(host, f"hn={host}, o=Grid", site=f"side{side}")
            # resources alternate: VO-A only, VO-B only, both
            in_a = i % 3 != 1
            in_b = i % 3 != 0
            if in_a:
                tb.register(gris, vo_a, interval=10.0, ttl=30.0, name=host)
                members["VO-A"].append(host)
            if in_b:
                tb.register(gris, vo_b1, interval=10.0, ttl=30.0, name=host)
                tb.register(gris, vo_b2, interval=10.0, ttl=30.0, name=host)
                members["VO-B"].append(host)
    tb.run(2.0)
    return tb, vo_a, vo_b1, vo_b2, members


def side_hosts(tb: GridTestbed, side: str) -> List[str]:
    return [h for h in tb.net.hosts() if tb.net.node(h).site == side]


def flat_vo(
    seed: int = 0, n: int = 8, **giis_kwargs
) -> Tuple[GridTestbed, Deployment, List[Deployment]]:
    """One GIIS with *n* standard GRIS children."""
    tb = GridTestbed(seed=seed)
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO", **giis_kwargs)
    children = []
    for i in range(n):
        host = f"r{i}"
        gris = tb.standard_gris(host, f"hn={host}, o=Grid", load_mean=0.3 + 0.5 * i)
        tb.register(gris, giis, interval=15.0, ttl=45.0, name=host)
        children.append(gris)
    tb.run(1.0)
    return tb, giis, children
