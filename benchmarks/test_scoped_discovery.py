"""E8 — §3: aggregate-directory scoping vs multicast discovery.

"Each aggregate directory defines a scope within which search
operations take place, allowing users and other services within a VO to
perform efficient discovery without resorting to searches that do not
scale well to large numbers of distributed information providers.  This
scoping allows many independent VOs to co-exist in a grid without
adversely affecting their individual discovery performance."

And §11.2 on the alternative: multicast-scoped discovery either fails
to cross organizational boundaries (site scope) or imposes every VO's
queries on every provider in the grid (global scope).

The sweep grows the number of co-existing VOs and measures, for one
VO's discovery query: messages sent, providers bothered, and resources
found — GIIS scoping vs site-scoped and global multicast.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from repro.baselines import MulticastDiscoveryClient, MulticastResponder
from repro.net.links import LinkModel
from repro.testbed import GridTestbed
from repro.testbed.metrics import fmt_table

PROVIDERS_PER_VO = 4
SITES = 2  # each VO's resources are spread over two physical sites


def build_grid(tb: GridTestbed, n_vos: int):
    """n_vos VOs, each with PROVIDERS_PER_VO providers spread over sites."""
    directories = []
    responders = []
    for v in range(n_vos):
        giis = tb.add_giis(
            f"giis-v{v}", f"o=VO{v}, o=Grid", site="site0", vo_name=f"VO{v}"
        )
        directories.append(giis)
        for i in range(PROVIDERS_PER_VO):
            host = f"v{v}r{i}"
            site = f"site{i % SITES}"
            gris = tb.standard_gris(host, f"hn={host}, o=VO{v}, o=Grid", site=site)
            tb.register(gris, giis, interval=15.0, ttl=45.0, name=host)
            # the same resources also answer multicast discovery
            backend = gris.backend
            responders.append(
                MulticastResponder(
                    gris.node,
                    lambda b=backend: [
                        e
                        for e in b.snapshot()
                        if e.is_a("computer")
                    ],
                )
            )
    tb.run(1.0)
    return directories, responders


def run_sweep():
    rows = []
    for n_vos in (1, 2, 4, 8):
        tb = GridTestbed(seed=n_vos, default_link=LinkModel(latency=0.005))
        user = tb.host("user", site="site0")
        directories, responders = build_grid(tb, n_vos)

        # -- GIIS scoped discovery for VO0
        client = tb.client("user", directories[0])
        m0 = tb.net.stats.messages
        out = client.search(f"o=VO0, o=Grid", filter="(objectclass=computer)")
        giis_found = len(out.entries)
        giis_msgs = tb.net.stats.messages - m0
        giis_bothered = sum(
            1 for r in responders  # GIIS never touches multicast responders
            if False
        ) + PROVIDERS_PER_VO  # exactly its own VO's providers

        # -- site-scoped multicast (deployable SLP config)
        mclient = MulticastDiscoveryClient(user, tb.sim)
        d0 = tb.net.stats.datagrams
        seen_before = [r.queries_seen for r in responders]
        _, results = mclient.discover(
            f"(&(objectclass=computer)(hn=v0*))", timeout=1.0, scope="site"
        )
        tb.run(2.0)
        site_found = len(results())
        site_msgs = tb.net.stats.datagrams - d0

        # -- global multicast (what crossing sites would require)
        d0 = tb.net.stats.datagrams
        _, results = mclient.discover(
            f"(&(objectclass=computer)(hn=v0*))", timeout=1.0, scope="global"
        )
        tb.run(2.0)
        global_found = len(results())
        global_msgs = tb.net.stats.datagrams - d0
        bothered = [
            r.queries_seen - b for r, b in zip(responders, seen_before)
        ]
        global_bothered = sum(1 for d in bothered if d >= 1)

        rows.append(
            (
                n_vos,
                n_vos * PROVIDERS_PER_VO,
                giis_found,
                giis_msgs,
                site_found,
                site_msgs,
                global_found,
                global_msgs,
                global_bothered,
            )
        )
    return rows


def test_scoped_discovery_vs_multicast(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E8_scoped_discovery",
        "Discovery of VO0's resources as the grid grows (4 providers/VO,\n"
        "spread over 2 sites; want = 4 resources)\n"
        + fmt_table(
            [
                "VOs",
                "providers",
                "GIIS found",
                "GIIS msgs",
                "site-mc found",
                "site-mc dgrams",
                "global-mc found",
                "global-mc dgrams",
                "providers bothered",
            ],
            rows,
        )
        + "\n\nClaim check: GIIS finds everything at flat cost regardless of\n"
        "grid size; site multicast misses the other site's resources\n"
        "(§11.2: 'virtual and physical organizational structures do not\n"
        "correspond'); global multicast finds everything but bothers every\n"
        "provider of every VO, growing linearly with the grid.",
    )
    for n_vos, providers, gf, gm, sf, sm, gg, ggm, bothered in rows:
        assert gf == PROVIDERS_PER_VO  # GIIS: complete
        assert sf < PROVIDERS_PER_VO  # site multicast: incomplete
        assert gg == PROVIDERS_PER_VO  # global multicast: complete but...
        assert bothered == providers  # ...bothers the whole grid
    giis_msgs = [r[3] for r in rows]
    assert max(giis_msgs) - min(giis_msgs) <= 2  # flat in grid size
    global_dgrams = [r[7] for r in rows]
    assert global_dgrams[-1] > global_dgrams[0] * 4  # linear growth
