"""E10 — §4.2/§5.3: specialized directories answer what plain GRIP can't.

"The LDAP query language ... cannot specify relational 'joins' ... A
join operation can be supported when needed via an optimized discovery
service."  And: "we can construct directories that employ the Condor
matchmaking algorithm as a query evaluation mechanism."

The harness poses the paper's own query — *an idle computer connected
to an idle network* — three ways:

1. plain GRIP: the client must fetch both relations and join by hand
   (many entries over the wire);
2. the relational directory: one local join over pre-pulled tables;
3. the matchmaker: a ClassAd request ranking eligible machines.

All three agree on the answer; the cost profile differs exactly as §5.2
predicts (pre-computed indices trade maintenance for query power).
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from repro.giis import ClassAd, MatchmakerDirectory, RelationalDirectory
from repro.gris import FunctionProvider
from repro.ldap.dn import DN
from repro.ldap.entry import Entry
from repro.testbed import GridTestbed
from repro.testbed.metrics import fmt_table

# (host, load regime, bandwidth to the hub): idle+fast only for h0, h3
HOSTS = [
    ("h0", 0.2, 200.0),
    ("h1", 0.2, 10.0),   # idle but badly connected
    ("h2", 5.0, 300.0),  # fast network but busy
    ("h3", 0.5, 150.0),
    ("h4", 6.0, 5.0),
]
MAX_LOAD = 1.0
MIN_BW = 100.0
EXPECTED = {"h0", "h3"}


def build(seed=10):
    tb = GridTestbed(seed=seed)
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO")
    relational = RelationalDirectory()
    matchmaker = MatchmakerDirectory()
    giis.backend.add_index(relational)
    giis.backend.add_index(matchmaker)
    for host, mean, bw in HOSTS:
        gris = tb.standard_gris(host, f"hn={host}, o=Grid", load_mean=mean)
        gris.sensor.load1 = gris.sensor.load5 = gris.sensor.load15 = mean
        gris.backend.add_provider(
            FunctionProvider(
                f"link-{host}",
                lambda host=host, bw=bw: [
                    Entry(
                        DN.parse(f"link={host}:hub, nw=links"),
                        objectclass="networklink",
                        src=host,
                        dst="hub",
                        bandwidth=f"{bw:.1f}",
                    )
                ],
            )
        )
        tb.register(gris, giis, interval=15.0, ttl=45.0, name=host)
    tb.run(2.0)  # registrations + index pulls complete
    return tb, giis, relational, matchmaker


def grip_client_side_join(tb, giis):
    """Plain GRIP: two subtree sweeps + a join in the client."""
    client = tb.client("user", giis)
    m0 = tb.net.stats.messages
    computers = client.search("o=Grid", filter="(objectclass=computer)")
    loads = client.search("o=Grid", filter="(objectclass=loadaverage)")
    links = client.search("o=Grid", filter="(objectclass=networklink)")
    wire_entries = len(computers.entries) + len(loads.entries) + len(links.entries)
    msgs = tb.net.stats.messages - m0

    load_by_host = {}
    for entry in loads.entries:
        host = next(
            (r.value for r in entry.dn.rdns if r.attr.lower() == "hn"), None
        )
        if host:
            load_by_host[host] = float(entry.first("load5", "inf"))
    bw_by_host = {e.first("src"): float(e.first("bandwidth", "0")) for e in links.entries}
    answer = {
        e.first("hn")
        for e in computers.entries
        if load_by_host.get(e.first("hn"), 99) <= MAX_LOAD
        and bw_by_host.get(e.first("hn"), 0) >= MIN_BW
    }
    return answer, wire_entries, msgs


def test_three_ways_to_the_paper_join(benchmark, report):
    def run():
        tb, giis, relational, matchmaker = build()
        grip_answer, grip_entries, grip_msgs = grip_client_side_join(tb, giis)

        m0 = tb.net.stats.messages
        table = relational.idle_computers_on_idle_networks(
            max_load=MAX_LOAD, min_bandwidth=MIN_BW
        )
        rel_answer = set(table.column("hn"))
        rel_msgs = tb.net.stats.messages - m0

        m0 = tb.net.stats.messages
        job = ClassAd(
            requirements=(
                f"target.load5 <= {MAX_LOAD} && target.bandwidth >= {MIN_BW}"
            ),
            rank="target.bandwidth",
        )
        ranked = matchmaker.match(job)
        mm_answer = {ad.value("hn") for ad, _ in ranked}
        mm_msgs = tb.net.stats.messages - m0
        mm_best = ranked[0][0].value("hn") if ranked else None
        return (
            grip_answer,
            grip_entries,
            grip_msgs,
            rel_answer,
            rel_msgs,
            mm_answer,
            mm_msgs,
            mm_best,
            relational.row_count(),
        )

    (
        grip_answer,
        grip_entries,
        grip_msgs,
        rel_answer,
        rel_msgs,
        mm_answer,
        mm_msgs,
        mm_best,
        rows_held,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    assert grip_answer == rel_answer == mm_answer == EXPECTED
    assert mm_best == "h0"  # highest-bandwidth eligible machine
    assert rel_msgs == 0 and mm_msgs == 0  # answered from pre-built indices
    assert grip_msgs > 0

    report(
        "E10_specialized_dirs",
        "'Find an idle computer connected to an idle network' (§5.3)\n"
        f"(load5 <= {MAX_LOAD}, bandwidth >= {MIN_BW}; truth = {sorted(EXPECTED)})\n"
        + fmt_table(
            ["approach", "answer", "wire msgs at query time", "notes"],
            [
                (
                    "plain GRIP + client join",
                    " ".join(sorted(grip_answer)),
                    grip_msgs,
                    f"{grip_entries} entries shipped",
                ),
                (
                    "relational directory",
                    " ".join(sorted(rel_answer)),
                    rel_msgs,
                    f"{rows_held} rows pre-pulled",
                ),
                (
                    "matchmaker directory",
                    " ".join(sorted(mm_answer)),
                    mm_msgs,
                    f"rank picked {mm_best}",
                ),
            ],
        )
        + "\n\nClaim check: GRIP alone cannot express the join — the client\n"
        "ships whole relations; specialized directories answer locally from\n"
        "indices maintained by follow-up GRIP pulls (§3's cost/power/\n"
        "freshness tradeoff).",
    )


def test_bench_relational_join_speed(benchmark):
    """Wall-clock speed of the in-memory join over a larger population."""
    from repro.giis.relational import Table

    computers = Table(
        "computer",
        [{"hn": f"h{i}", "cpucount": str(1 << (i % 5))} for i in range(500)],
    )
    links = Table(
        "networklink",
        [
            {"src": f"h{i}", "dst": "hub", "bandwidth": str((i * 37) % 300)}
            for i in range(500)
        ],
    )

    def run():
        joined = computers.join(links, on=[("hn", "src")])
        return len(joined.where_num("networklink.bandwidth", ">=", 150.0))

    expected = sum(1 for i in range(500) if (i * 37) % 300 >= 150)
    count = benchmark(run)
    assert count == expected


def test_bench_matchmaking_speed(benchmark):
    ads = [
        ClassAd({"hn": f"h{i}", "load5": (i % 50) / 10, "cpucount": 1 << (i % 5)})
        for i in range(500)
    ]
    job = ClassAd(requirements="target.load5 <= 1.0 && target.cpucount >= 4", rank="target.cpucount")

    from repro.giis import match

    ranked = benchmark(match, job, ads)
    assert ranked and all(ad.value("load5") <= 1.0 for ad, _ in ranked)
