"""E12 — §10.1: the protocol engine, timed end-to-end.

MDS-2.1's engine is "a standard protocol interpreter" handling
"authentication, data formatting, query interpretation, results
filtering, network connection management, and dispatch".  These benches
wall-clock the whole stack over real TCP loopback — search, bind, add —
and over the in-process path, separating wire cost from engine cost.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest

from repro.ldap.backend import DitBackend, RequestContext
from repro.ldap.client import LdapClient
from repro.ldap.dit import DIT, Scope
from repro.ldap.entry import Entry
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import SearchRequest
from repro.ldap.server import LdapServer
from repro.net.tcp import TcpEndpoint


def seed_dit(n=100):
    dit = DIT()
    dit.add(Entry("o=Grid", objectclass="organization", o="Grid"))
    for i in range(n):
        host = f"host{i:03d}"
        dit.add(
            Entry(
                f"hn={host}, o=Grid",
                objectclass="computer",
                hn=host,
                system="linux" if i % 2 else "mips irix",
                cpucount=1 << (i % 5),
                load5=f"{(i % 60) / 10:.1f}",
            )
        )
    return dit


@pytest.fixture(scope="module")
def tcp_stack():
    endpoint = TcpEndpoint()
    backend = DitBackend(seed_dit())
    server = LdapServer(backend)
    port = endpoint.listen(0, server.handle_connection)
    client = LdapClient(endpoint.connect(("127.0.0.1", port)))
    yield client, backend, server
    client.unbind()
    endpoint.close()


class TestOverTcp:
    def test_bench_search_selective(self, benchmark, tcp_stack):
        client, _, _ = tcp_stack
        out = benchmark(
            client.search,
            "o=Grid",
            Scope.SUBTREE,
            "(&(objectclass=computer)(load5<=1.0))",
        )
        assert len(out) > 0

    def test_bench_search_full_sweep(self, benchmark, tcp_stack):
        client, _, _ = tcp_stack
        out = benchmark(client.search, "o=Grid", Scope.SUBTREE, "(objectclass=computer)")
        assert len(out) == 100

    def test_bench_base_lookup(self, benchmark, tcp_stack):
        client, _, _ = tcp_stack
        out = benchmark(
            client.search, "hn=host007, o=Grid", Scope.BASE, "(objectclass=*)"
        )
        assert len(out) == 1

    def test_bench_bind(self, benchmark, tcp_stack):
        client, _, _ = tcp_stack
        result = benchmark(client.bind)
        assert result.ok

    def test_bench_add_delete_cycle(self, benchmark, tcp_stack):
        client, _, _ = tcp_stack
        entry = Entry("hn=bench, o=Grid", objectclass="computer", hn="bench")

        def cycle():
            client.add(entry)
            client.delete("hn=bench, o=Grid")

        benchmark(cycle)

    def test_bench_attribute_selection_saves_bytes(self, benchmark, tcp_stack, report):
        """§4.1: 'a subset of attributes ... reducing the amount of
        information that must be transmitted' — measured on the wire."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        client, _, _ = tcp_stack
        full = client.search("o=Grid", Scope.SUBTREE, "(objectclass=computer)")
        thin = client.search(
            "o=Grid", Scope.SUBTREE, "(objectclass=computer)", attrs=["hn"]
        )
        from repro.ldap.protocol import LdapMessage, SearchResultEntry, encode_message

        full_bytes = sum(
            len(encode_message(LdapMessage(1, SearchResultEntry.from_entry(e))))
            for e in full.entries
        )
        thin_bytes = sum(
            len(encode_message(LdapMessage(1, SearchResultEntry.from_entry(e))))
            for e in thin.entries
        )
        assert thin_bytes < full_bytes / 2
        report(
            "E12_attr_selection",
            f"full entries: {full_bytes} bytes on the wire\n"
            f"hn-only:      {thin_bytes} bytes on the wire\n"
            f"reduction:    {(1 - thin_bytes / full_bytes) * 100:.0f}%",
        )


class TestEngineOnly:
    """The same operations without sockets: engine cost in isolation."""

    @pytest.fixture(scope="class")
    def backend(self):
        return DitBackend(seed_dit())

    def test_bench_backend_search(self, benchmark, backend):
        req = SearchRequest(
            base="o=Grid",
            scope=Scope.SUBTREE,
            filter=parse_filter("(&(objectclass=computer)(load5<=1.0))"),
        )
        out = benchmark(backend.search, req, RequestContext())
        assert out.result.ok and len(out.entries) > 0


def test_report_throughput(tcp_stack, benchmark, report):
    """Sustained query throughput over one TCP connection."""
    import time

    client, _, server = tcp_stack

    def run():
        t0 = time.perf_counter()
        n = 200
        for i in range(n):
            client.search(
                f"hn=host{i % 100:03d}, o=Grid", Scope.BASE, "(objectclass=*)"
            )
        return n / (time.perf_counter() - t0)

    qps = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E12_throughput",
        f"sustained base-lookup throughput over TCP loopback: {qps:.0f} queries/s\n"
        f"(server stats: {server.stats.searches} searches, "
        f"{server.stats.entries_returned} entries returned)",
    )
    assert qps > 100  # sanity: the engine is not pathologically slow


def test_report_server_latency_histogram(benchmark, report):
    """Server-side per-operation latency via the metrics snapshot API.

    Drives a metrics-instrumented stack (the same wiring as
    ``grid-info-server --monitor``) and reads the registry snapshot —
    the data a cn=monitor GRIP search would return — instead of timing
    from the client, separating engine latency from client overhead.
    """
    from repro.obs import MetricsRegistry, MonitorBackend, MonitoredBackend

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    metrics = MetricsRegistry()
    endpoint = TcpEndpoint(metrics=metrics)
    backend = MonitoredBackend(
        DitBackend(seed_dit()), MonitorBackend(metrics, server_name="bench")
    )
    server = LdapServer(backend, metrics=metrics)
    port = endpoint.listen(0, server.handle_connection)
    client = LdapClient(endpoint.connect(("127.0.0.1", port)))
    try:
        for i in range(300):
            client.search(
                f"hn=host{i % 100:03d}, o=Grid", Scope.BASE, "(objectclass=*)"
            )
        snap = metrics.snapshot()
        hist = snap["ldap.request.seconds{op=search}"]
        frames = snap["tcp.frames.received"]["value"]
        # The same numbers, over the wire as cn=monitor entries:
        mon = client.search(
            "cn=monitor", Scope.SUBTREE, "(mdsmetrictype=histogram)"
        )
        assert any(
            e.first("mdsmetric") == "ldap.request.seconds" for e in mon.entries
        )
        report(
            "E12_server_latency",
            f"server-side search latency over {hist['count']} requests:\n"
            f"  mean {hist['mean'] * 1e6:.0f}us  p50 <= {hist['p50'] * 1e6:.0f}us  "
            f"p95 <= {hist['p95'] * 1e6:.0f}us  p99 <= {hist['p99'] * 1e6:.0f}us\n"
            f"  max {hist['max'] * 1e6:.0f}us  tcp frames in: {frames:.0f}",
        )
        assert hist["count"] >= 300
    finally:
        client.unbind()
        endpoint.close()
