"""E22 — the cost and coverage of watching the service watch itself.

PR-9 turns every GRIS/GIIS into its own information provider: a
time-series recorder samples the metrics registry on an interval, a
health model rolls thresholds into a verdict, ``cn=health,cn=monitor``
publishes it over GRIP, and an HTTP endpoint serves the Prometheus
exposition.  The paper's bet is that self-description through the
service's own protocol is cheap enough to leave on; this bench checks
that bet three ways:

* **overhead** — closed-loop throughput with the full monitoring stack
  (registry threaded through transport/executor/server, recorder at
  1s, health entry published) vs the bare server, same workload, same
  data; both servers stay up and the load alternates between them in
  short slices, each adjacent off/on pair yielding one paired
  regression in CPU time per request (= throughput on a saturated
  single-CPU runner, minus time stolen by neighbour tenants), so
  machine noise cannot masquerade as overhead.  The gate: trimmed-mean
  paired regression < 3% on the 10k-entry/500-user rung;
* **transparency** — the exact same deterministic request sequence
  against monitored and bare servers must serialize to byte-identical
  LDIF: observation must not change the answers;
* **coverage** — a 1-GIIS/4-GRIS VO under load, polled by
  ``grid-info-top --once`` over GRIP: every server must report
  healthy with non-zero req/s and a finite search p95, and the
  ``MetricsScraper`` embeds the per-server time-series in the report.

Set ``E22_QUICK=1`` for the CI smoke ladder.  Full runs write
``BENCH_E22.json`` at the repo root.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import gc
import io
import json
import math
import os
import pathlib
import time

from loadgen import (
    MetricsScraper,
    Workload,
    build_vo,
    closed_loop,
    populate_gris,
)
from repro.ldap.backend import DitBackend
from repro.ldap.client import LdapClient
from repro.ldap.dit import DIT, Scope
from repro.ldap.executor import RequestExecutor
from repro.ldap.ldif import format_ldif
from repro.ldap.server import LdapServer
from repro.net import make_endpoint
from repro.net.clock import WallClock
from repro.net.transport import ConnectionClosed
from repro.obs import (
    HealthModel,
    MetricsHttpServer,
    MetricsRegistry,
    MonitorBackend,
    MonitoredBackend,
    TimeSeriesRecorder,
)
from repro.testbed.metrics import fmt_table
from repro.tools.grid_info_top import main as top_main
from test_loadgen import git_describe

QUICK = bool(os.environ.get("E22_QUICK"))

# (total entries, closed-loop users, requests per user)
GRID = (
    [(210, 10, 5)]
    if QUICK
    else [(1008, 50, 40), (10080, 500, 10)]
)
CHILDREN_PER_HOST = 20
SLICES = 1 if QUICK else 9  # interleaved load slices per side, median wins
TIMEOUT_S = 120.0 if QUICK else 600.0
IDENTITY_REQUESTS = 30 if QUICK else 100


def host_workload(n_hosts: int) -> Workload:
    targets = [f"(hn=host{h})" for h in range(0, n_hosts, max(1, n_hosts // 24))]
    return Workload(
        name="host-group-lookup",
        base="o=Grid",
        filters=tuple((f, 1.0) for f in targets),
        scopes=((Scope.SUBTREE, 0.8), (Scope.ONELEVEL, 0.2)),
    )


class Gris:
    """One GRIS on the reactor, bare or with the full monitoring stack.

    "Monitored" means everything ``--metrics-port`` turns on: a shared
    registry threaded through transport/executor/server, the monitored
    backend serving ``cn=monitor``, the time-series recorder sampling
    at 1s, the health model publishing ``cn=health,cn=monitor``, and
    the HTTP exposition endpoint riding the same reactor.
    """

    def __init__(self, n_hosts: int, monitored: bool):
        self.clock = WallClock()
        self.dit = DIT(index_attrs=["hn"])
        self.entries = populate_gris(self.dit, n_hosts, CHILDREN_PER_HOST)
        backend = DitBackend(self.dit)
        self.metrics = self.recorder = self.health = self.http = None
        self.metrics_port = None
        if monitored:
            self.metrics = MetricsRegistry()
            self.recorder = TimeSeriesRecorder(
                self.metrics, self.clock, interval=1.0
            )
            self.health = HealthModel(
                self.metrics, self.clock, recorder=self.recorder
            )
            backend = MonitoredBackend(
                backend,
                MonitorBackend(
                    self.metrics, server_name="e22-gris", health=self.health
                ),
            )
        self.executor = RequestExecutor(
            workers=4, queue_limit=8192, metrics=self.metrics, clock=self.clock
        )
        self.server = LdapServer(
            backend,
            executor=self.executor,
            metrics=self.metrics,
            clock=self.clock,
        )
        self.endpoint = make_endpoint("reactor", metrics=self.metrics)
        self.port = self.endpoint.listen(0, self.server.handle_connection)
        if monitored:
            self.health.server_id = f"127.0.0.1:{self.port}"
            self.recorder.start()
            self.http = MetricsHttpServer(
                self.metrics,
                reactor=self.endpoint.reactor,
                health=self.health,
                clock_now=self.clock.now,
            )
            self.metrics_port = self.http.start(0)
        self.client_endpoint = make_endpoint("reactor")

    def connect(self):
        for attempt in range(3):
            try:
                return self.client_endpoint.connect(("127.0.0.1", self.port))
            except ConnectionClosed:
                if attempt == 2:
                    raise
                time.sleep(0.05 * (attempt + 1))

    def close(self):
        if self.recorder is not None:
            self.recorder.stop()
        if self.http is not None:
            self.http.close()
        self.client_endpoint.close()
        self.endpoint.close()
        self.executor.shutdown()


def _trimmed_mean(values):
    """Mean with the single best and worst dropped (when n >= 3)."""
    if not values:
        return 0.0
    ranked = sorted(values)
    if len(ranked) >= 3:
        ranked = ranked[1:-1]
    return round(sum(ranked) / len(ranked), 2)


def _median_slice(summaries):
    """The summary of the median-throughput slice, spread attached."""
    ranked = sorted(summaries, key=lambda s: s["throughput_rps"])
    out = dict(ranked[len(ranked) // 2])
    out["slice_rps"] = [s["throughput_rps"] for s in summaries]
    out["errors"] = sum(s["errors"] for s in summaries)
    out["completed"] = min(s["completed"] for s in summaries)
    return out


def run_rung(entries: int, users: int, requests: int):
    """Paired interleaved slices against two long-lived servers.

    Wall-clock throughput on a small shared box drifts by far more
    between runs (scheduler, CPU contention from neighbours, allocator
    state) than the off/on delta being measured; sequential
    best-of-N comparisons report that drift as fake regressions or
    fake speedups.  So both servers — bare and fully monitored — stay
    up for the whole rung and the closed-loop load alternates between
    them in short slices (order flipping every round).  Each round
    yields one *paired* regression from two adjacent-in-time slices,
    which cancels slow drift.  The rung's verdict is the trimmed mean
    of paired regressions in **CPU time per completed request**: on a
    saturated single-CPU runner that is the same quantity as
    throughput, but it excludes time stolen by neighbour tenants,
    which wall-clock pairs report as ±10% noise.  Wall-clock medians
    and both pair series are still recorded for the report.  The two
    populated DITs are ``gc.freeze``-d for the duration so major
    collections don't rescan ~20k live entries mid-slice.
    """
    n_hosts = entries // (CHILDREN_PER_HOST + 1)
    workload = host_workload(n_hosts)
    bare = Gris(n_hosts, monitored=False)
    watched = Gris(n_hosts, monitored=True)
    slices = {False: [], True: []}
    gc.collect()
    gc.freeze()
    try:
        for slice_no in range(SLICES):
            order = (False, True) if slice_no % 2 == 0 else (True, False)
            for monitored in order:
                gris = watched if monitored else bare
                cpu0 = time.process_time()
                stats = closed_loop(
                    gris.connect, workload, users, requests,
                    timeout_s=TIMEOUT_S,
                )
                cpu1 = time.process_time()
                summary = stats.summary()
                summary["cpu_us_per_request"] = round(
                    (cpu1 - cpu0) / max(summary["completed"], 1) * 1e6, 1
                )
                slices[monitored].append(summary)
        off = _median_slice(slices[False])
        on = _median_slice(slices[True])
        wall_pairs = [
            round(
                (o["throughput_rps"] - w["throughput_rps"])
                / o["throughput_rps"]
                * 100.0,
                2,
            )
            for o, w in zip(slices[False], slices[True])
            if o["throughput_rps"]
        ]
        cpu_pairs = [
            round(
                (w["cpu_us_per_request"] - o["cpu_us_per_request"])
                / o["cpu_us_per_request"]
                * 100.0,
                2,
            )
            for o, w in zip(slices[False], slices[True])
            if o["cpu_us_per_request"]
        ]
        on["wall_pair_regressions_pct"] = wall_pairs
        on["cpu_pair_regressions_pct"] = cpu_pairs
        # One explicit closing sample: quick-mode rungs finish inside
        # the 1s interval, and it captures the final counter state.
        watched.recorder.sample()
        on["recorder_samples"] = watched.recorder.samples_taken
    finally:
        gc.unfreeze()
        bare.close()
        watched.close()
    return workload, off, on, _trimmed_mean(cpu_pairs)


def serialized_answers(gris: Gris, n_hosts: int) -> str:
    """LDIF of one deterministic request sequence against *gris*."""
    source = host_workload(n_hosts).request_source()
    client = LdapClient(gris.connect())
    pages = []
    try:
        for _ in range(IDENTITY_REQUESTS):
            req = source()
            result = client.search(
                req.base, req.scope, req.filter, timeout=30.0, check=False
            )
            pages.append(format_ldif(result.entries))
    finally:
        client.unbind()
    return "\n".join(pages)


def test_selfmonitor_overhead_and_fleet(report):
    # -- transparency: observation must not change the answers ----------------
    n_hosts = GRID[0][0] // (CHILDREN_PER_HOST + 1)
    bare = Gris(n_hosts, monitored=False)
    watched = Gris(n_hosts, monitored=True)
    try:
        bare_pages = serialized_answers(bare, n_hosts)
        watched_pages = serialized_answers(watched, n_hosts)
    finally:
        bare.close()
        watched.close()
    identical = bare_pages.encode() == watched_pages.encode()

    # -- overhead: closed loop, monitoring off vs on --------------------------
    runs = []
    for entries, users, requests in GRID:
        workload, off, on, regression_pct = run_rung(entries, users, requests)
        runs.append(
            {
                "workload": workload.describe(),
                "entries": entries,
                "users": users,
                "requests_per_user": requests,
                "off": off,
                "on": on,
                "regression_pct": regression_pct,
            }
        )

    # -- coverage: a monitored VO polled by grid-info-top ---------------------
    n_gris = 4
    vo = build_vo(
        n_gris,
        hosts_per_gris=6,
        children_per_host=4,
        monitor=True,
        metrics_interval=0.5,
    )
    vo_endpoint = make_endpoint("reactor")
    scraper = MetricsScraper(
        vo.metrics_urls,
        interval=0.5,
        families=("ldap_requests", "ldap_request_seconds",
                  "giis_chain", "ldap_executor_queue"),
    )
    try:
        scraper.start()
        vo_stats = closed_loop(
            lambda: vo_endpoint.connect(("127.0.0.1", vo.giis_port)),
            Workload(
                name="vo-wide-host-lookup",
                base="o=Grid",
                filters=(("(hn=host2)", 1.0),),
            ),
            users=8 if QUICK else 32,
            requests_per_user=4 if QUICK else 8,
            timeout_s=TIMEOUT_S,
        )
        time.sleep(1.2)  # let every recorder take a post-load sample
        scraper.stop()
        top_out = io.StringIO()
        top_rc = top_main(["--once"] + vo.ldap_specs, out=top_out)
        fleet = json.loads(top_out.getvalue())
    finally:
        scraper.stop()
        vo_endpoint.close()
        vo.close()

    # -- report ---------------------------------------------------------------
    rows = [
        (
            r["entries"],
            r["users"],
            label,
            side["throughput_rps"],
            side["percentiles"]["p50_ms"],
            side["percentiles"]["p95_ms"],
            side["cpu_us_per_request"],
            side["errors"],
        )
        for r in runs
        for label, side in (("off", r["off"]), ("on", r["on"]))
    ]
    reg_rows = [
        (r["entries"], r["users"], f"{r['regression_pct']}%") for r in runs
    ]
    fleet_rows = [
        (
            row["server"],
            row["health"],
            row["rps"],
            row["p95_ms"],
            row["queue_depth"],
        )
        for row in fleet["servers"]
    ]
    text = (
        f"closed-loop host-group searches, self-monitoring off vs on "
        f"({'quick mode' if QUICK else 'full mode'}, "
        f"median of {SLICES} interleaved slices)\n"
        + fmt_table(
            ["entries", "users", "monitor", "req/s", "p50 ms", "p95 ms",
             "cpu µs/req", "errors"],
            rows,
        )
        + "\n\ncpu cost of the monitoring stack"
        + " (trimmed mean of paired slices)\n"
        + fmt_table(["entries", "users", "regression"], reg_rows)
        + "\n\nanswers byte-identical with monitoring on: "
        + ("yes" if identical else "NO")
        + f"\n\ngrid-info-top --once over 1 GIIS + {n_gris} GRIS "
        + f"(rc={top_rc}, {fleet['fleet']['healthy']}/"
        + f"{fleet['fleet']['size']} healthy)\n"
        + fmt_table(
            ["server", "health", "req/s", "p95 ms", "queue"], fleet_rows
        )
        + "\n\nEvery server above answered from its own cn=health entry"
        "\nover GRIP — the same chaining path the data takes, which is"
        "\nthe paper's pitch: the information service describes itself"
        "\nwith the same machinery it uses to describe the grid."
    )
    report("E22_selfmonitor", text)

    results = {
        "experiment": "E22",
        "quick": QUICK,
        "git": git_describe(),
        "children_per_host": CHILDREN_PER_HOST,
        "byte_identical": identical,
        "runs": runs,
        "fleet": fleet,
        "vo_load": vo_stats.summary(),
        "timeseries": scraper.export(),
    }
    if not QUICK:
        out = pathlib.Path(__file__).parents[1] / "BENCH_E22.json"
        out.write_text(json.dumps(results, indent=2) + "\n")

    # Transparency and clean completion on every rung.
    assert identical, "monitoring changed the serialized search answers"
    for r in runs:
        for side in ("off", "on"):
            assert r[side]["errors"] == 0, r
            assert r[side]["completed"] == r["users"] * r["requests_per_user"], r
        assert r["on"]["recorder_samples"] > 0, r
    assert vo_stats.errors == 0

    # The fleet dashboard saw every server healthy with live numbers.
    assert top_rc == 0, fleet
    assert fleet["fleet"]["size"] == n_gris + 1
    for row in fleet["servers"]:
        assert row["error"] is None, row
        assert row["health"] == "healthy", row
        assert row["rps"] is not None and row["rps"] > 0, row
        assert row["p95_ms"] is not None and math.isfinite(row["p95_ms"]), row

    # Acceptance gate: < 3% per-request cost on the big rung, measured
    # as CPU time per completed request over paired slices (the
    # noise-immune form of throughput on a saturated shared core).
    if not QUICK:
        big = [r for r in runs if r["entries"] >= 10000 and r["users"] >= 500]
        assert big and big[0]["regression_pct"] < 3.0, [
            (r["entries"], r["users"], r["regression_pct"]) for r in runs
        ]
