"""F3 — Figure 3: the LDAP data model, exercised and timed.

Figure 3 presents the hostX subtree: a hierarchically named set of
typed objects (computer, queue service, load average, filesystem).
This harness (a) reproduces the exact subtree and verifies every claim
the figure encodes — naming hierarchy, object class typing, attribute
bindings, schema validity — and (b) wall-clock-benchmarks the substrate
operations every GRIP exchange relies on: filter evaluation, scoped DIT
search, and message encode/decode.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest

from repro.ldap import DIT, DN, Entry, GRID_SCHEMA, Scope, parse_filter
from repro.ldap.protocol import (
    LdapMessage,
    SearchRequest,
    SearchResultEntry,
    decode_message,
    encode_message,
)
from repro.testbed.metrics import fmt_table


def figure3_subtree():
    return [
        Entry("hn=hostX", objectclass="computer", hn="hostX", system="mips irix"),
        Entry(
            "queue=default, hn=hostX",
            objectclass=["service", "queue"],
            queue="default",
            url="gram://hostX/default",
            dispatchtype="immediate",
        ),
        Entry(
            "perf=load5, hn=hostX",
            objectclass=["perf", "loadaverage"],
            perf="load5",
            period=10,
            load5="3.2",
        ),
        Entry(
            "store=scratch, hn=hostX",
            objectclass=["storage", "filesystem"],
            store="scratch",
            free="33515 MB",
            path="/disks/scratch1",
        ),
    ]


def test_fig3_model_claims(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    entries = figure3_subtree()
    dit = DIT()
    dit.load(entries)

    # hierarchical namespace: three children under the host
    kids = dit.children("hn=hostX")
    assert len(kids) == 3
    assert all(k.parent() == DN.parse("hn=hostX") for k in kids)

    # typed objects: each entry tagged with named types
    types = {str(e.dn): e.object_classes for e in entries}
    assert types["queue=default, hn=hostX"] == ["service", "queue"]

    # value bindings according to type, all schema-valid
    for e in entries:
        GRID_SCHEMA.validate(e)

    # the queries Figure 3's data supports
    assert len(dit.search(DN.root(), Scope.SUBTREE, parse_filter("(load5>=2)"))) == 1
    assert (
        len(dit.search(DN.root(), Scope.SUBTREE, parse_filter("(free>=30000 MB)")))
        == 1
    )
    report(
        "F3_datamodel",
        "Figure 3 subtree reproduced: 4 entries, hierarchy + typing verified\n"
        + fmt_table(
            ["dn", "objectclasses"],
            [(dn, " ".join(t)) for dn, t in sorted(types.items())],
        ),
    )


@pytest.fixture(scope="module")
def loaded_dit():
    dit = DIT()
    for i in range(200):
        host = f"host{i:03d}"
        dit.add(
            Entry(
                f"hn={host}",
                objectclass="computer",
                hn=host,
                system="linux" if i % 2 else "mips irix",
                cpucount=1 << (i % 5),
            )
        )
        dit.add(
            Entry(
                f"perf=load5, hn={host}",
                objectclass=["perf", "loadaverage"],
                perf="load5",
                period=10,
                load5=f"{(i % 80) / 10:.1f}",
            )
        )
    return dit


FILTER = parse_filter("(&(objectclass=computer)(|(system=*irix*)(cpucount>=8)))")


def test_bench_filter_evaluation(benchmark, loaded_dit):
    entries = loaded_dit.search(DN.root(), Scope.SUBTREE)

    def run():
        return sum(1 for e in entries if FILTER.matches(e))

    expected = sum(
        1
        for e in entries
        if e.is_a("computer")
        and ("irix" in e.first("system", "") or float(e.first("cpucount", "0")) >= 8)
    )
    matched = benchmark(run)
    assert matched == expected > 0


def test_bench_subtree_search(benchmark, loaded_dit):
    def run():
        return loaded_dit.search(
            DN.root(), Scope.SUBTREE, parse_filter("(load5<=2.0)")
        )

    out = benchmark(run)
    assert len(out) == 63  # hosts with (i % 80) / 10 <= 2.0


def test_bench_message_roundtrip(benchmark):
    entry = figure3_subtree()[0]
    msg = LdapMessage(7, SearchResultEntry.from_entry(entry))

    def run():
        return decode_message(encode_message(msg))

    back = benchmark(run)
    assert back == msg


def test_bench_search_request_codec(benchmark):
    req = SearchRequest(
        base="o=Grid",
        scope=Scope.SUBTREE,
        filter=parse_filter("(&(objectclass=computer)(load5<=2.0)(system=*linux*))"),
        attributes=("hn", "cpucount"),
    )
    msg = LdapMessage(3, req)

    def run():
        return decode_message(encode_message(msg))

    assert benchmark(run) == msg


def test_bench_filter_parse(benchmark):
    text = "(&(objectclass=computer)(|(system=*linux*)(system=*irix*))(!(load5>=4))(cpucount>=2))"
    f = benchmark(parse_filter, text)
    assert str(parse_filter(str(f))) == str(f)
