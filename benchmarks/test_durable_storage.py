"""E20 — durable DIT storage: WAL throughput and warm-restart latency.

The paper's GIIS relies on soft-state refresh to repopulate a restarted
directory (§6): every registrant re-announces within its TTL window, so
a restart leaves a window of minutes during which VO-wide searches see a
hollow directory.  PR 7's durable engines close that window by replaying
persisted state at boot.  This bench quantifies both sides of the trade:

* **append throughput** — single-op DIT writes through the memory, WAL
  (per fsync policy) and sqlite engines; durability's steady-state tax;
* **restart path** — snapshot write, snapshot+WAL replay, and a planned
  first search at directory scale (100k entries full, 5k quick), against
  the *cold* alternative: repopulating the same tree entry by entry the
  way soft-state refresh eventually would.

Set ``E20_QUICK=1`` (the CI smoke mode) for small trees and fewer ops.
Full runs write machine-readable results to ``BENCH_E20.json`` at the
repo root.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import json
import os
import pathlib
import shutil
import tempfile
import time

from repro.ldap.dit import DIT, Scope
from repro.ldap.entry import Entry
from repro.ldap.filter import parse as parse_filter
from repro.ldap.storage import MemoryEngine, SqliteEngine, WalEngine, make_storage
from repro.testbed.metrics import fmt_table

QUICK = bool(os.environ.get("E20_QUICK"))
APPEND_OPS = 500 if QUICK else 20000
RESTART_ENTRIES = 5000 if QUICK else 100000


def _entry(n):
    return Entry(
        f"hn=node{n}, o=Site{n % 50}, o=Grid",
        objectclass=["computer"],
        hn=[f"node{n}"],
        cpu=["x86" if n % 2 else "sparc"],
        ram=[str(256 * (1 + n % 8))],
    )


def _engine(kind, root):
    if kind == "memory":
        return MemoryEngine()
    if kind == "sqlite":
        return SqliteEngine(root / "store.sqlite")
    fsync = kind.split(":", 1)[1]
    return WalEngine(root / "wal", fsync=fsync, snapshot_every=0)


# -- part A: append throughput ------------------------------------------------


def append_run(kind):
    """Ops/s for single-entry adds through one engine-backed DIT."""
    root = pathlib.Path(tempfile.mkdtemp(prefix="e20-"))
    try:
        engine = _engine(kind, root)
        dit = DIT(storage=engine)
        started = time.perf_counter()
        for n in range(APPEND_OPS):
            dit.add(_entry(n))
        elapsed = time.perf_counter() - started
        wal_bytes = getattr(engine, "wal_size", 0)
        engine.close()
        return {
            "engine": kind,
            "ops": APPEND_OPS,
            "seconds": round(elapsed, 4),
            "ops_per_s": round(APPEND_OPS / elapsed),
            "wal_mib": round(wal_bytes / 2**20, 2),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


# -- part B: the restart path -------------------------------------------------


def restart_run():
    """Snapshot+replay warm restart vs cold entry-by-entry repopulation.

    The cold number is the *floor* of the soft-state alternative: it
    decodes each entry from its record (as a backend applying wire Adds
    must) and rebuilds the same indexed tree, but charges nothing for
    the minutes of waiting on registrants' refresh timers that a real
    soft-state restart also pays.
    """
    entries = [_entry(n) for n in range(RESTART_ENTRIES)]
    root = pathlib.Path(tempfile.mkdtemp(prefix="e20-"))
    try:
        engine = WalEngine(root / "wal", fsync="never", snapshot_every=0)
        dit = DIT(index_attrs=("cpu",), storage=engine)
        dit.load(entries)

        started = time.perf_counter()
        written = engine.snapshot()
        snapshot_s = time.perf_counter() - started
        assert written == len(dit)
        # Dirty the log again so replay exercises snapshot + WAL tail.
        for n in range(RESTART_ENTRIES, RESTART_ENTRIES + RESTART_ENTRIES // 10):
            dit.add(_entry(n))
        tail_ops = engine.ops_since_snapshot
        engine.close()

        started = time.perf_counter()
        warm = DIT(
            index_attrs=("cpu",),
            storage=WalEngine(root / "wal", fsync="never", snapshot_every=0),
        )
        replay_s = time.perf_counter() - started
        assert warm.replayed_ops == tail_ops
        started = time.perf_counter()
        hits = warm.search(
            "o=Grid", Scope.SUBTREE, parse_filter("(cpu=sparc)")
        )
        first_search_s = time.perf_counter() - started
        assert warm.stats_planned == 1
        warm.storage.close()

        from repro.ldap.storage import entry_from_record, entry_to_record

        tail = [
            _entry(n)
            for n in range(RESTART_ENTRIES, RESTART_ENTRIES + RESTART_ENTRIES // 10)
        ]
        records = [entry_to_record(e) for e in entries + tail]
        started = time.perf_counter()
        cold = DIT(index_attrs=("cpu",))
        cold.load(entry_from_record(r) for r in records)
        cold_s = time.perf_counter() - started
        assert len(cold) == len(warm)

        return {
            "entries": len(warm),
            "tail_ops": tail_ops,
            "snapshot_s": round(snapshot_s, 3),
            "warm_restart_s": round(replay_s, 3),
            "first_search_s": round(first_search_s, 4),
            "first_search_hits": len(hits),
            "cold_repopulate_s": round(cold_s, 3),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_durable_storage(report):
    kinds = ["memory", "wal:never", "wal:batch", "sqlite"]
    if not QUICK:
        kinds.insert(3, "wal:always")
    append_rows = [append_run(kind) for kind in kinds]
    restart = restart_run()

    text = (
        f"single-op DIT adds through each engine "
        f"({'quick mode' if QUICK else 'full mode'}, {APPEND_OPS} ops)\n"
        + fmt_table(
            ["engine", "ops/s", "seconds", "wal MiB"],
            [
                (r["engine"], r["ops_per_s"], r["seconds"], r["wal_mib"])
                for r in append_rows
            ],
        )
        + f"\n\nrestart path at {restart['entries']} entries "
        + f"(snapshot + {restart['tail_ops']}-op WAL tail)\n"
        + fmt_table(
            ["phase", "seconds"],
            [
                ("snapshot write", restart["snapshot_s"]),
                ("warm restart (replay)", restart["warm_restart_s"]),
                ("first planned search", restart["first_search_s"]),
                ("cold repopulation (floor)", restart["cold_repopulate_s"]),
            ],
        )
        + "\n\nThe WAL batches fsyncs so durable appends stay within an"
        "\norder of magnitude of memory; the warm restart replays the"
        "\nsnapshot plus a short log tail, where soft-state recovery"
        "\nwould rebuild the tree and still wait out refresh timers."
    )
    report("E20_durable_storage", text)

    results = {
        "experiment": "E20",
        "quick": QUICK,
        "append": append_rows,
        "restart": restart,
    }
    if not QUICK:
        out = pathlib.Path(__file__).parents[1] / "BENCH_E20.json"
        out.write_text(json.dumps(results, indent=2) + "\n")

    by_kind = {r["engine"]: r for r in append_rows}
    # Durability must not cost more than ~50x memory throughput even
    # with batched fsyncs (generous bound; typical is well under 10x).
    assert by_kind["wal:batch"]["ops_per_s"] * 50 > by_kind["memory"]["ops_per_s"]
    # The warm restart must beat even the floor of cold repopulation.
    assert restart["warm_restart_s"] < restart["cold_repopulate_s"], restart
    assert restart["first_search_hits"] > 0


def test_factory_smoke(tmp_path):
    """make_storage wires the same engines the benches use directly."""
    for backend in ("memory", "wal", "sqlite"):
        engine = make_storage(backend, tmp_path / backend)
        assert engine.backend_name == backend
        engine.close()
