"""E14 — §3/§5.2 extension: GIIS query cost vs VO size, and what
caching/index strategies buy back.

The paper's scalability argument is qualitative: directories scope
searches, "there will inevitably be tradeoffs between the power of an
index, the cost associated with maintaining it, and its freshness" (§3).
This sweep quantifies the directory-side knobs on one axis (number of
registered providers):

* **chain** — fan out to every relevant provider per query (fresh,
  cost grows with VO size);
* **chain + query cache** — repeated queries amortize the fan-out;
* **relational index** — pre-pulled rows answer locally at flat cost,
  paying maintenance traffic instead (the §5.2 specialized directory).
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from repro.giis import RelationalDirectory
from repro.testbed import GridTestbed
from repro.testbed.metrics import fmt_table

SIZES = (2, 8, 24)


def build(n, cache_ttl=0.0, with_index=False, seed=1):
    tb = GridTestbed(seed=seed + n)
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO", cache_ttl=cache_ttl)
    index = None
    if with_index:
        index = RelationalDirectory()
        giis.backend.add_index(index)
    for i in range(n):
        gris = tb.standard_gris(f"r{i}", f"hn=r{i}, o=Grid", load_mean=0.5)
        tb.register(gris, giis, interval=30.0, ttl=90.0, name=f"r{i}")
    tb.run(2.0)
    return tb, giis, index


def measure_chain(n, cache_ttl=0.0, repeats=5):
    tb, giis, _ = build(n, cache_ttl=cache_ttl)
    client = tb.client("user", giis)
    m0, t0 = tb.net.stats.messages, tb.sim.now()
    for _ in range(repeats):
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert len(out) == n
    msgs = (tb.net.stats.messages - m0) / repeats
    latency = (tb.sim.now() - t0) / repeats
    return msgs, latency * 1000


def measure_index(n):
    tb, giis, index = build(n, with_index=True)
    maintenance = tb.net.stats.messages  # registration + pull traffic so far
    rows = index.table("computer")
    assert len(rows) == n
    m0 = tb.net.stats.messages
    result = rows.where_num("cpucount", ">=", 1)  # answered locally
    assert len(result) == n
    return tb.net.stats.messages - m0, maintenance


def test_giis_scaling(benchmark, report):
    def run():
        rows = []
        for n in SIZES:
            chain_msgs, chain_ms = measure_chain(n)
            cached_msgs, cached_ms = measure_chain(n, cache_ttl=300.0)
            index_msgs, maintenance = measure_index(n)
            rows.append(
                (
                    n,
                    chain_msgs,
                    round(chain_ms, 2),
                    cached_msgs,
                    round(cached_ms, 2),
                    index_msgs,
                    maintenance,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E14_giis_scaling",
        "VO-wide inventory query cost vs VO size (5 repeated queries)\n"
        + fmt_table(
            [
                "providers",
                "chain msgs/q",
                "chain ms/q",
                "cached msgs/q",
                "cached ms/q",
                "index msgs/q",
                "index upkeep msgs",
            ],
            rows,
        )
        + "\n\nClaim check (§3): chaining cost grows with VO size; a query\n"
        "cache amortizes repeats; a specialized index answers at zero\n"
        "query-time network cost but pays maintenance traffic up front —\n"
        "'tradeoffs between the power of an index, the cost associated\n"
        "with maintaining it, and its freshness'.",
    )
    by_n = {r[0]: r for r in rows}
    # chaining grows roughly linearly with providers
    assert by_n[24][1] > by_n[2][1] * 6
    # the cache removes the fan-out from repeated queries; what remains
    # is mostly the irreducible result delivery to the client (~n msgs)
    assert by_n[24][3] < by_n[24][1] / 2
    # the index answers locally...
    assert all(r[5] == 0 for r in rows)
    # ...but its maintenance traffic grows with VO size
    assert by_n[24][6] > by_n[2][6]
